//! Lowering as a first-class pipeline stage (paper §VI, driven by the
//! unified pass manager).
//!
//! A pipeline spec may contain the pseudo-pass `lower`: everything before
//! it is a MEMOIR pipeline, everything after it is a low-level IR (`lir`)
//! pipeline, and the `lower` step itself runs `memoir-lower` through a
//! [`passman::LowerStage`] — under the same fault policy, budgets, fault
//! injection, and [`RunReport`] profiling as ordinary passes, with its
//! output checked by `lir::verifier` *and* a cross-IR translation
//! validation oracle ([`memoir_lower::validate::cross_validate`]:
//! interpreter agreement between `memoir-interp` and `LirMachine` on
//! generated probes).
//!
//! ```text
//! ssa-construct,…,ssa-destruct , lower<max-ms=50> , mem2reg,constfold,dce
//! \────────── MEMOIR ─────────/  \── LowerStage ─/  \────── lir ───────/
//! ```
//!
//! The three phases share one merged [`RunReport`], so `--report` shows
//! lowering (and the lir passes) in the same table as the MEMOIR passes.
//! If the stage or a lir pass degrades under a recovering fault policy,
//! the MEMOIR module (already optimized) is the pipeline's final result
//! and [`LoweredOutcome::lowered`] is `None` / partially optimized.

use crate::pipeline::{compile_spec_with, threads_from_env, PipelineReport};
use memoir_ir::Module;
use memoir_lower::{cross_validate, lower_module_opts, placement_report, LowerOptions};
use memoir_lower::{LowerStats, PlacementReport, DEFAULT_PROBES};
use passman::{
    Budgets, FaultPlan, FaultPolicy, LowerStage, PassManager, PassOptions, PipelineSpec, RunError,
    RunReport, SpecStep, StageOutcome,
};

/// The spec name of the lowering stage.
pub const LOWER_STAGE: &str = "lower";

/// A full pipeline spec split at its `lower` step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredPipeline {
    /// The MEMOIR phase (steps before `lower`).
    pub memoir: PipelineSpec,
    /// Options on the `lower` call itself (`max-ms`, `no-cross-check`).
    pub lower_opts: PassOptions,
    /// The low-level IR phase (steps after `lower`; may be empty).
    pub lir: PipelineSpec,
}

/// Splits a spec containing a `lower` step into its phases.
///
/// Returns `Ok(None)` when the spec has no `lower` step (it is a plain
/// MEMOIR pipeline). Errors when `lower` appears more than once or
/// inside `fixpoint(...)` — lowering is not iterable or repeatable.
pub fn split_lowered_spec(spec: &PipelineSpec) -> Result<Option<LoweredPipeline>, String> {
    for step in &spec.steps {
        if let SpecStep::Fixpoint { body, .. } = step {
            if body.iter().any(|call| call.name == LOWER_STAGE) {
                return Err("`lower` cannot appear inside fixpoint(...)".into());
            }
        }
    }
    let mut split = None;
    for (i, step) in spec.steps.iter().enumerate() {
        if let SpecStep::Pass(call) = step {
            if call.name == LOWER_STAGE {
                if split.is_some() {
                    return Err("`lower` may appear at most once in a pipeline".into());
                }
                split = Some((i, call.opts.clone()));
            }
        }
    }
    let Some((at, lower_opts)) = split else {
        return Ok(None);
    };
    let unknown = lower_opts.unknown_keys(&["max-ms", "no-cross-check", "adaptive"]);
    if !unknown.is_empty() {
        return Err(format!("unknown `lower` option(s): {}", unknown.join(", ")));
    }
    Ok(Some(LoweredPipeline {
        memoir: PipelineSpec::new(spec.steps[..at].to_vec()),
        lower_opts,
        lir: PipelineSpec::new(spec.steps[at + 1..].to_vec()),
    }))
}

/// Configuration shared by all three phases of a lowered pipeline.
#[derive(Clone, Debug)]
pub struct LowerConfig {
    /// Fault policy (applied to MEMOIR passes, the stage, and lir passes).
    pub policy: FaultPolicy,
    /// Budgets (the stage honors `pass-ms`; growth budgets do not apply
    /// across IRs).
    pub budgets: Budgets,
    /// Between-pass verification override (`None` = build-type default).
    pub verify: Option<bool>,
    /// Deterministic fault injection (`panic@lower`, `verify@lower`, …).
    pub inject: Option<FaultPlan>,
    /// Worker threads for the sharded executors.
    pub threads: usize,
    /// Whether the stage runs the cross-IR interpreter-agreement check
    /// (`lir::verifier` always runs).
    pub cross_check: bool,
    /// Use whole-module clone snapshots instead of the copy-on-write
    /// default in both pass phases (the recovery baseline, kept for
    /// comparison — see `bench --bin compile_time`).
    pub full_clone_snapshots: bool,
    /// Cross-job compile cache shared by all three phases: fingerprint-
    /// keyed per-function pass outputs (MEMOIR and lir) and lowered
    /// function bodies. `None` = no caching (every run is cold).
    pub cache: Option<passman::CompileCache>,
    /// Adaptive representation selection in the lowering stage (dense
    /// direct-indexed assocs, attributed inline sequences — DESIGN §16).
    /// Also enabled per-spec with `lower<adaptive>`.
    pub adaptive: bool,
}

impl Default for LowerConfig {
    fn default() -> Self {
        LowerConfig {
            policy: FaultPolicy::Abort,
            budgets: Budgets::default(),
            verify: None,
            inject: None,
            threads: threads_from_env(),
            cross_check: true,
            full_clone_snapshots: false,
            cache: None,
            adaptive: false,
        }
    }
}

impl LowerConfig {
    fn apply<M: passman::IrUnit + Clone + 'static>(
        &self,
        mut pm: PassManager<M>,
    ) -> PassManager<M> {
        pm = pm
            .on_fault(self.policy)
            .with_budgets(self.budgets)
            .with_threads(self.threads);
        if let Some(v) = self.verify {
            pm = pm.verify_between_passes(v);
        }
        if let Some(plan) = &self.inject {
            pm = pm.with_fault_injection(plan.clone());
        }
        if self.full_clone_snapshots {
            pm = pm.with_full_clone_snapshots();
        }
        if let Some(cache) = &self.cache {
            pm = pm.with_compile_cache(cache.clone());
        }
        pm
    }
}

/// The result of a lowered pipeline run.
#[derive(Debug)]
pub struct LoweredOutcome {
    /// The MEMOIR phase report, with the lowering stage and the lir
    /// passes merged into `report.run` (and `pass_times`/`total`).
    pub report: PipelineReport,
    /// The lowered (and lir-optimized) module, `None` when the stage
    /// degraded or the MEMOIR phase stopped early.
    pub lowered: Option<lir::Module>,
    /// Lowering statistics, when the stage ran.
    pub lower_stats: Option<LowerStats>,
    /// Heap/stack placement decisions, when the stage ran.
    pub placement: Option<PlacementReport>,
}

/// Runs a full `MEMOIR → lower → lir` pipeline over `m`.
///
/// `m` ends as the post-MEMOIR-phase module (lowering never mutates its
/// input; on a contained stage fault it is rolled back bit-for-bit).
pub fn compile_lowered_with(
    m: &mut Module,
    pipeline: &LoweredPipeline,
    cfg: &LowerConfig,
) -> Result<LoweredOutcome, RunError> {
    // --- phase 1: MEMOIR ------------------------------------------------
    let report = compile_spec_with(m, &pipeline.memoir, |pm| cfg.apply(pm))?;
    let mut out = LoweredOutcome {
        report,
        lowered: None,
        lower_stats: None,
        placement: None,
    };
    if out.report.run.stopped_early {
        return Ok(out);
    }

    // --- phase 2: the lowering stage ------------------------------------
    let max_ms = pipeline
        .lower_opts
        .get_parsed::<u64>("max-ms")
        .map_err(|message| RunError::InvalidOptions {
            pass: LOWER_STAGE.to_string(),
            message,
        })?;
    let mut stage_budgets = cfg.budgets;
    if max_ms.is_some() {
        stage_budgets.max_pass_millis = max_ms;
    }
    let mut stage = LowerStage::<Module, lir::Module>::new()
        .on_fault(cfg.policy)
        .with_budgets(stage_budgets)
        .with_output_verifier(|lm: &lir::Module| {
            let errs = lir::verifier::verify_module(lm);
            if errs.is_empty() {
                Ok(())
            } else {
                Err(errs.join("; "))
            }
        });
    if let Some(v) = cfg.verify {
        stage = stage.verify_output(v);
    }
    if cfg.cross_check && !pipeline.lower_opts.flag("no-cross-check") {
        stage = stage.with_cross_check(|a: &Module, b: &lir::Module| {
            cross_validate(a, b, DEFAULT_PROBES)
                .map(|_| ())
                .map_err(|e| e.to_string())
        });
    }
    if let Some(plan) = &cfg.inject {
        stage = stage.with_fault_injection(plan.clone());
    }

    let invocation = out.report.run.passes.len();
    let mut captured: Option<(LowerStats, PlacementReport, passman::CompileCacheStats)> = None;
    let captured_ref = &mut captured;
    let lower_opts = LowerOptions {
        threads: cfg.threads,
        cache: cfg.cache.clone(),
        adaptive: cfg.adaptive || pipeline.lower_opts.flag("adaptive"),
    };
    let stage_result = stage.run(m, &mut out.report.run, invocation, |mm: &mut Module| {
        let run = lower_module_opts(mm, &lower_opts).map_err(|e| e.to_string())?;
        let (lm, stats) = (run.module, run.stats);
        let placement = placement_report(mm);
        let mut flat = vec![
            ("stack_seqs", stats.stack_seqs as i64),
            ("heap_seqs", stats.heap_seqs as i64),
            ("stack_sites", placement.stack_sites as i64),
            ("heap_sites", placement.heap_sites as i64),
            ("lir_insts", lm.inst_count() as i64),
        ];
        if lower_opts.adaptive {
            flat.push(("dense_assocs", stats.dense_assocs as i64));
            flat.push(("inline_seqs", stats.inline_seqs as i64));
        }
        if run.cache.lookups() > 0 {
            flat.push(("cache_hits", run.cache.hits as i64));
            flat.push(("cache_misses", run.cache.misses as i64));
        }
        *captured_ref = Some((stats, placement, run.cache));
        Ok((lm, flat))
    })?;
    let stage_run_time = out
        .report
        .run
        .passes
        .last()
        .map(|p| p.time)
        .unwrap_or_default();
    out.report.run.total += stage_run_time;
    out.report.total = out.report.run.total;
    out.report.pass_times = out.report.run.pass_times();
    let mut lm = match stage_result {
        StageOutcome::Lowered(lm) => lm,
        StageOutcome::Degraded { .. } => return Ok(out),
    };
    if let Some((stats, placement, cache)) = captured {
        out.lower_stats = Some(stats);
        out.placement = Some(placement);
        out.report.run.compile_cache.merge(cache);
    }

    // --- phase 3: lir ----------------------------------------------------
    if !pipeline.lir.steps.is_empty() {
        let lir_run = cfg
            .apply(lir::passes::pass_manager())
            .run(&mut lm, &pipeline.lir)?;
        merge_run(&mut out.report.run, lir_run, invocation + 1);
        out.report.total = out.report.run.total;
        out.report.pass_times = out.report.run.pass_times();
    }
    out.lowered = Some(lm);
    Ok(out)
}

/// Folds a later phase's [`RunReport`] into the merged report, offsetting
/// degradation invocation indices so the combined sequence stays ordered.
fn merge_run(into: &mut RunReport, from: RunReport, invocation_offset: usize) {
    into.passes.extend(from.passes);
    into.total += from.total;
    for (name, c) in from.cache {
        match into.cache.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => {
                existing.hits += c.hits;
                existing.misses += c.misses;
                existing.max_computes_between_invalidations = existing
                    .max_computes_between_invalidations
                    .max(c.max_computes_between_invalidations);
            }
            None => into.cache.push((name, c)),
        }
    }
    into.invalidation_events += from.invalidation_events;
    for mut d in from.degradations {
        d.invocation += invocation_offset;
        into.degradations.push(d);
    }
    into.compile_cache.merge(from.compile_cache);
    into.fingerprints.merge(from.fingerprints);
    into.stopped_early |= from.stopped_early;
    into.threads = into.threads.max(from.threads);
    let s = from.snapshots;
    into.snapshots.captures += s.captures;
    into.snapshots.full_clones += s.full_clones;
    into.snapshots.funcs_cloned += s.funcs_cloned;
    into.snapshots.funcs_reused += s.funcs_reused;
    into.snapshots.units_cloned += s.units_cloned;
    into.snapshots.restores += s.restores;
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{BinOp, Form, ModuleBuilder, Type};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let four = b.index(4);
            let s = b.new_seq(i64t, four);
            let zero = b.index(0);
            let x = b.i64(21);
            let two = b.i64(2);
            let y = b.bin(BinOp::Mul, x, two);
            b.mut_write(s, zero, y);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
            let _ = idxt;
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("main");
        m
    }

    fn full_spec(extra: &str) -> PipelineSpec {
        PipelineSpec::parse(&format!(
            "ssa-construct,constprop,dce,ssa-destruct,lower{extra}"
        ))
        .unwrap()
    }

    #[test]
    fn split_finds_the_stage_and_phases() {
        let spec = PipelineSpec::parse("ssa-construct,ssa-destruct,lower,mem2reg,dce").unwrap();
        let lp = split_lowered_spec(&spec).unwrap().unwrap();
        assert_eq!(
            lp.memoir.pass_names(),
            vec!["ssa-construct", "ssa-destruct"]
        );
        assert_eq!(lp.lir.pass_names(), vec!["mem2reg", "dce"]);
    }

    #[test]
    fn split_passes_through_plain_specs() {
        let spec = PipelineSpec::parse("ssa-construct,ssa-destruct").unwrap();
        assert!(split_lowered_spec(&spec).unwrap().is_none());
    }

    #[test]
    fn split_rejects_duplicate_and_fixpoint_lower() {
        let dup = PipelineSpec::parse("lower,mem2reg,lower").unwrap();
        assert!(split_lowered_spec(&dup)
            .unwrap_err()
            .contains("at most once"));
        let fix = PipelineSpec::parse("fixpoint(lower,dce)").unwrap();
        assert!(split_lowered_spec(&fix).unwrap_err().contains("fixpoint"));
    }

    #[test]
    fn split_rejects_unknown_lower_options() {
        let spec = PipelineSpec::parse("ssa-construct,lower<speed=11>").unwrap();
        assert!(split_lowered_spec(&spec)
            .unwrap_err()
            .contains("unknown `lower` option"));
    }

    #[test]
    fn lowered_pipeline_runs_end_to_end() {
        let mut m = sample();
        let spec = PipelineSpec::parse(
            "ssa-construct,constprop,dce,ssa-destruct,lower,mem2reg,constfold,dce",
        )
        .unwrap();
        let lp = split_lowered_spec(&spec).unwrap().unwrap();
        let out = compile_lowered_with(&mut m, &lp, &LowerConfig::default()).unwrap();
        let lm = out.lowered.expect("pipeline completes");
        lir::verifier::assert_valid(&lm);
        let r = lir::LirMachine::new(&lm)
            .run_by_name("main", vec![])
            .unwrap();
        assert_eq!(r, vec![42]);
        // One merged report: memoir passes + the stage + lir passes.
        let names = out
            .report
            .run
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>();
        assert!(names.contains(&"ssa-construct"));
        assert!(names.contains(&"lower"));
        assert!(names.contains(&"mem2reg"));
        assert!(out.lower_stats.is_some());
        assert!(out.placement.is_some());
        let lower_run = out.report.run.last_run("lower").unwrap();
        assert!(lower_run.stat("lir_insts").unwrap() > 0);
    }

    #[test]
    fn degraded_stage_keeps_the_memoir_module() {
        let mut m = sample();
        let lp = split_lowered_spec(&full_spec("")).unwrap().unwrap();
        let cfg = LowerConfig {
            policy: FaultPolicy::SkipPass,
            inject: Some("panic@lower".parse().unwrap()),
            ..LowerConfig::default()
        };
        let before = memoir_ir::printer::print_module(&{
            let mut c = m.clone();
            let plain = split_lowered_spec(&full_spec("")).unwrap().unwrap();
            compile_lowered_with(&mut c, &plain, &LowerConfig::default()).unwrap();
            c
        });
        let out = compile_lowered_with(&mut m, &lp, &cfg).unwrap();
        assert!(out.lowered.is_none());
        assert!(out.report.run.is_degraded());
        assert!(out.report.run.stopped_early);
        assert_eq!(
            memoir_ir::printer::print_module(&m),
            before,
            "stage fault leaves the optimized MEMOIR module intact"
        );
    }

    #[test]
    fn abort_policy_surfaces_injected_verify_failure() {
        let mut m = sample();
        let lp = split_lowered_spec(&full_spec("")).unwrap().unwrap();
        let cfg = LowerConfig {
            inject: Some("verify@lower".parse().unwrap()),
            ..LowerConfig::default()
        };
        let err = compile_lowered_with(&mut m, &lp, &cfg).unwrap_err();
        assert!(matches!(err, RunError::VerifyFailed { ref pass, .. } if pass == "lower"));
    }

    #[test]
    fn stage_stat_lir_insts_matches_direct_lowering() {
        let mut m = sample();
        let lp = split_lowered_spec(&full_spec("")).unwrap().unwrap();
        let out = compile_lowered_with(&mut m, &lp, &LowerConfig::default()).unwrap();
        let direct = memoir_lower::lower_module(&m).unwrap();
        assert_eq!(
            out.lowered.unwrap().inst_count(),
            direct.inst_count(),
            "stage output is the same module lower_module produces"
        );
    }
}
