//! The materialization function `M(e, p)` (paper Def. 7).
//!
//! Given an expression tree and a program point, `M` constructs the
//! side-effect-free operations computing the expression and returns the
//! resulting value — or is undefined when some leaf does not dominate the
//! point. This implementation materializes at a *block-entry-like*
//! position (a block and an instruction index), checking operand dominance
//! against the dominator tree, and reuses existing values where the leaf
//! is already a value (`M(e,p) = e` for constants, parameters, and
//! dominating variables).

use memoir_analysis::exprtree::{Expr, Term};
use memoir_analysis::DomTree;
use memoir_ir::{BinOp, BlockId, Constant, Function, InstKind, Type, TypeId, ValueDef, ValueId};

/// A program point: instructions are inserted into `block` starting at
/// `index` (subsequent insertions shift the index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point {
    /// The block to insert into.
    pub block: BlockId,
    /// The instruction index within the block.
    pub index: usize,
}

/// Materializes expressions into a function at a point.
#[derive(Debug)]
pub struct Materializer<'a> {
    /// The function being edited.
    pub f: &'a mut Function,
    dt: DomTree,
    index_ty: TypeId,
    /// Value of the symbolic `end` (the relevant sequence's size), if the
    /// expression may mention it.
    pub end_value: Option<ValueId>,
    /// Values for the caller-context bounds `%a` / `%b` (the specialized
    /// function's extra parameters).
    pub caller_bounds: Option<(ValueId, ValueId)>,
}

impl<'a> Materializer<'a> {
    /// Creates a materializer for a function. `index_ty` must be the
    /// interned `index` type id.
    pub fn new(f: &'a mut Function, index_ty: TypeId) -> Self {
        let dt = DomTree::compute(f);
        Materializer {
            f,
            dt,
            index_ty,
            end_value: None,
            caller_bounds: None,
        }
    }

    /// Refreshes the dominator tree after CFG edits.
    pub fn refresh(&mut self) {
        self.dt = DomTree::compute(self.f);
    }

    /// `M(e, p)`: materializes `e` immediately before `point`, returning
    /// the value and the number of instructions inserted, or `None` if a
    /// leaf does not dominate the point.
    pub fn materialize(&mut self, e: &Expr, point: Point) -> Option<(ValueId, usize)> {
        // First check that every referenced value dominates the point.
        for v in e.values() {
            if !self.dominates_point(v, point) {
                return None;
            }
        }
        if e.mentions_caller() && self.caller_bounds.is_none() {
            return None;
        }
        let mut inserted = 0;
        let v = self.emit(e, point, &mut inserted)?;
        Some((v, inserted))
    }

    fn dominates_point(&self, v: ValueId, point: Point) -> bool {
        match &self.f.values[v].def {
            ValueDef::Param(_) | ValueDef::Const(_) => true,
            ValueDef::Inst(iid, _) => {
                // Find the defining block/position.
                for (b, block) in self.f.blocks.iter() {
                    if let Some(pos) = block.insts.iter().position(|i| i == iid) {
                        return if b == point.block {
                            pos < point.index
                        } else {
                            self.dt.dominates(b, point.block)
                        };
                    }
                }
                false
            }
        }
    }

    fn konst(&mut self, c: i64) -> ValueId {
        self.f.constant(Constant::index(c as u64), self.index_ty)
    }

    fn insert(&mut self, point: Point, offset: &mut usize, kind: InstKind) -> ValueId {
        let (_, res) =
            self.f
                .insert_inst_at(point.block, point.index + *offset, kind, &[self.index_ty]);
        *offset += 1;
        res[0]
    }

    fn emit(&mut self, e: &Expr, point: Point, offset: &mut usize) -> Option<ValueId> {
        match e {
            Expr::Affine(a) => {
                // Sum terms left to right: konst + Σ coeff·term.
                let mut acc: Option<ValueId> = if a.konst != 0 || a.terms.is_empty() {
                    Some(self.konst(a.konst))
                } else {
                    None
                };
                for (&t, &coeff) in &a.terms {
                    let base = match t {
                        Term::Value(v) => v,
                        Term::End => self.end_value?,
                        Term::CallerLo => self.caller_bounds?.0,
                        Term::CallerHi => self.caller_bounds?.1,
                    };
                    let scaled = match coeff {
                        1 => base,
                        -1 => {
                            let zero = self.konst(0);
                            self.insert(
                                point,
                                offset,
                                InstKind::Bin {
                                    op: BinOp::Sub,
                                    lhs: zero,
                                    rhs: base,
                                },
                            )
                        }
                        c => {
                            let k = self.konst(c);
                            self.insert(
                                point,
                                offset,
                                InstKind::Bin {
                                    op: BinOp::Mul,
                                    lhs: base,
                                    rhs: k,
                                },
                            )
                        }
                    };
                    acc = Some(match acc {
                        None => scaled,
                        Some(prev) => self.insert(
                            point,
                            offset,
                            InstKind::Bin {
                                op: BinOp::Add,
                                lhs: prev,
                                rhs: scaled,
                            },
                        ),
                    });
                }
                acc
            }
            Expr::Min(es) | Expr::Max(es) => {
                let op = if matches!(e, Expr::Min(_)) {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                let mut acc: Option<ValueId> = None;
                for sub in es {
                    let v = self.emit(sub, point, offset)?;
                    acc = Some(match acc {
                        None => v,
                        Some(prev) => self.insert(
                            point,
                            offset,
                            InstKind::Bin {
                                op,
                                lhs: prev,
                                rhs: v,
                            },
                        ),
                    });
                }
                acc
            }
            Expr::Unknown => None,
        }
    }
}

/// Convenience: interns the index type on a module.
pub fn index_ty(types: &mut memoir_ir::TypeTable) -> TypeId {
    types.intern(Type::Index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_analysis::exprtree::Expr;
    use memoir_ir::{Form, ModuleBuilder};

    #[test]
    fn materializes_affine_over_params() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            probe = Some(n);
            b.returns(&[t]);
            b.ret(vec![n]);
        });
        let mut m = mb.finish();
        let idx_ty = index_ty(&mut m.types);
        let fid = m.func_by_name("f").unwrap();
        let f = &mut m.funcs[fid];
        let n = probe.unwrap();
        let e = Expr::value(n).offset(3);
        let entry = f.entry;
        let mut mat = Materializer::new(f, idx_ty);
        let (v, count) = mat
            .materialize(
                &e,
                Point {
                    block: entry,
                    index: 0,
                },
            )
            .expect("materializable");
        assert_eq!(count, 1, "one add");
        // Replace the return with the materialized value and run.
        let fr = &mut m.funcs[fid];
        for (_, i) in fr.inst_ids_in_order() {
            if let InstKind::Ret { values } = &mut fr.insts[i].kind {
                values[0] = v;
            }
        }
        memoir_ir::verifier::assert_valid(&m);
        let mut interp = memoir_interp::Interp::new(&m);
        let r = interp
            .run_by_name("f", vec![memoir_interp::Value::Int(Type::Index, 4)])
            .unwrap();
        assert_eq!(r, vec![memoir_interp::Value::Int(Type::Index, 7)]);
    }

    #[test]
    fn materializes_min_of_values() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let x = b.param("x", t);
            let y = b.param("y", t);
            probe = Some((x, y));
            b.returns(&[t]);
            b.ret(vec![x]);
        });
        let mut m = mb.finish();
        let idx_ty = index_ty(&mut m.types);
        let fid = m.func_by_name("f").unwrap();
        let (x, y) = probe.unwrap();
        let e = Expr::min2(Expr::value(x), Expr::value(y).offset(1));
        let f = &mut m.funcs[fid];
        let entry = f.entry;
        let mut mat = Materializer::new(f, idx_ty);
        let (v, _) = mat
            .materialize(
                &e,
                Point {
                    block: entry,
                    index: 0,
                },
            )
            .unwrap();
        let fr = &mut m.funcs[fid];
        for (_, i) in fr.inst_ids_in_order() {
            if let InstKind::Ret { values } = &mut fr.insts[i].kind {
                values[0] = v;
            }
        }
        memoir_ir::verifier::assert_valid(&m);
        let mut interp = memoir_interp::Interp::new(&m);
        let r = interp
            .run_by_name(
                "f",
                vec![
                    memoir_interp::Value::Int(Type::Index, 9),
                    memoir_interp::Value::Int(Type::Index, 4),
                ],
            )
            .unwrap();
        assert_eq!(r, vec![memoir_interp::Value::Int(Type::Index, 5)]);
    }

    #[test]
    fn caller_bounds_required() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let idx_ty = index_ty(&mut m.types);
        let fid = m.func_by_name("f").unwrap();
        let f = &mut m.funcs[fid];
        let e = Expr::caller_lo();
        let entry = f.entry;
        let mut mat = Materializer::new(f, idx_ty);
        assert!(mat
            .materialize(
                &e,
                Point {
                    block: entry,
                    index: 0
                }
            )
            .is_none());
    }

    #[test]
    fn unknown_is_not_materializable() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let idx_ty = index_ty(&mut m.types);
        let fid = m.func_by_name("f").unwrap();
        let f = &mut m.funcs[fid];
        let entry = f.entry;
        let mut mat = Materializer::new(f, idx_ty);
        assert!(mat
            .materialize(
                &Expr::Unknown,
                Point {
                    block: entry,
                    index: 0
                }
            )
            .is_none());
    }
}
