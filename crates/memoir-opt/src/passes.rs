//! [`passman::Pass`] adapters for every MEMOIR transformation, and the
//! name → constructor [`registry`] that pipeline specs resolve against.
//!
//! Each adapter translates a pass's native statistics struct into the
//! flat `(key, value)` form of [`PassOutcome`] and declares what it
//! invalidates: most passes declare [`Mutation::All`] on change, while
//! the iterative passes that already maintain the
//! [`AnalysisManager`](passman::AnalysisManager)
//! themselves ([`sink_with`](crate::sink::sink_with),
//! [`dee_strict_with`](crate::dee::dee_strict_with)) declare
//! [`Mutation::Handled`] so their still-fresh analyses survive the run.

use crate::dee::DeeStats;
use crate::pipeline::FE_AFFINITY_THRESHOLD;
use crate::{constprop, dce, dee, dfe, field_elision, fusion, key_fold, rie, simplify, sink};
use crate::{construct_ssa, construct_use_phis, destruct_ssa, destruct_use_phis};
use memoir_ir::{FuncId, Function, Module};
use passman::{
    FnPass, FuncOutcome, FuncPass, FuncPassAdapter, Mutation, Pass, PassOutcome, PassRegistry,
};

fn dee_stats(s: &DeeStats) -> Vec<(&'static str, i64)> {
    vec![
        ("writes_guarded", s.writes_guarded as i64),
        ("inserts_guarded", s.inserts_guarded as i64),
        ("swaps_guarded", s.swaps_guarded as i64),
        ("ops_dropped", s.ops_dropped as i64),
        ("functions_specialized", s.functions_specialized as i64),
        ("calls_specialized", s.calls_specialized as i64),
        ("recursive_calls_pruned", s.recursive_calls_pruned as i64),
    ]
}

/// CFG simplification as a function-sharded pass: it rewrites one
/// function at a time and never touches the module shell, so it runs
/// per function (potentially on worker threads) behind
/// [`FuncPassAdapter`] and declares exactly the changed functions.
struct SimplifyPass;
impl FuncPass<Module> for SimplifyPass {
    fn name(&self) -> &'static str {
        "simplify"
    }
    fn run_on(
        &self,
        _shell: &Module,
        _key: FuncId,
        f: &mut Function,
        _ctx: Option<&(dyn std::any::Any + Send + Sync)>,
    ) -> FuncOutcome {
        let s = simplify::simplify_function(f);
        FuncOutcome {
            changed: s != Default::default(),
            stats: vec![
                ("phis_removed", s.phis_removed as i64),
                ("branches_to_jumps", s.branches_to_jumps as i64),
                ("blocks_threaded", s.blocks_threaded as i64),
            ],
        }
    }
}

/// Collection-op fusion as a function-sharded pass: it rewrites one
/// SSA-form function at a time (read-modify-write fusion, query folds,
/// dominance CSE of redundant queries) and needs only the module shell's
/// type table, so it runs per function behind [`FuncPassAdapter`].
struct FusionPass;
impl FuncPass<Module> for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }
    fn run_on(
        &self,
        shell: &Module,
        _key: FuncId,
        f: &mut Function,
        _ctx: Option<&(dyn std::any::Any + Send + Sync)>,
    ) -> FuncOutcome {
        let s = fusion::fuse_function(&shell.types, f);
        FuncOutcome {
            changed: s != Default::default(),
            stats: vec![
                ("rmws_fused", s.rmws_fused as i64),
                ("queries_folded", s.queries_folded as i64),
                ("queries_merged", s.queries_merged as i64),
            ],
        }
    }
}

/// The registry of all MEMOIR passes, by spec name:
///
/// | name | pass |
/// |------|------|
/// | `ssa-construct` | [`construct_ssa`] (Fig. 5) |
/// | `ssa-destruct` | [`destruct_ssa`] (Alg. 3) |
/// | `constprop` | [`constprop::constprop`] |
/// | `simplify` | [`simplify::simplify_function`] (function-sharded) |
/// | `fusion` | [`fusion::fuse_function`] (function-sharded) |
/// | `dce` | [`dce::dce`] |
/// | `sink` | [`sink::sink_with`] |
/// | `dee-strict` | [`dee::dee_strict_with`] |
/// | `dee-specialize` | [`dee::dee_specialize_calls`] |
/// | `dee` | strict + call-specialization DEE combined |
/// | `field-elision` | [`field_elision::auto_field_elision`] |
/// | `rie` | [`rie::rie`] |
/// | `key-fold` | [`key_fold::key_fold`] |
/// | `dfe` | [`dfe::dfe`] |
/// | `use-phi-construct` | [`construct_use_phis`] |
/// | `use-phi-destruct` | [`destruct_use_phis`] |
pub fn registry() -> PassRegistry<Module> {
    let mut r = PassRegistry::new();

    r.register("ssa-construct", || {
        Box::new(FnPass::new("ssa-construct", |m: &mut Module, _am| {
            construct_ssa(m).map_err(|e| passman::PassError::with_payload(e.to_string(), e))?;
            Ok(PassOutcome::from_stats(vec![]).with_changed(true))
        }))
    });
    r.register("ssa-destruct", || {
        Box::new(FnPass::infallible("ssa-destruct", |m: &mut Module, _am| {
            let s = destruct_ssa(m);
            PassOutcome::from_stats(vec![
                ("copies_inserted", s.copies_inserted as i64),
                ("byref_params_restored", s.byref_params_restored as i64),
            ])
            .with_changed(true)
        }))
    });
    r.register("constprop", || {
        Box::new(FnPass::infallible("constprop", |m: &mut Module, am| {
            let s = constprop::constprop_with(m, am);
            PassOutcome::from_stats(vec![
                ("scalars_folded", s.scalars_folded as i64),
                ("element_reads_forwarded", s.element_reads_forwarded as i64),
                ("sizes_folded", s.sizes_folded as i64),
                ("branches_folded", s.branches_folded as i64),
            ])
        }))
    });
    r.register("simplify", || Box::new(FuncPassAdapter::new(SimplifyPass)));
    r.register("fusion", || Box::new(FuncPassAdapter::new(FusionPass)));
    r.register("dce", || {
        Box::new(FnPass::infallible("dce", |m: &mut Module, am| {
            let s = dce::dce_with(m, am);
            PassOutcome::from_stats(vec![
                ("insts_removed", s.insts_removed as i64),
                ("blocks_removed", s.blocks_removed as i64),
                ("calls_removed", s.calls_removed as i64),
            ])
        }))
    });
    r.register("sink", || {
        Box::new(FnPass::infallible("sink", |m: &mut Module, am| {
            let s = sink::sink_with(m, am);
            PassOutcome::from_stats(vec![("sunk", s.sunk as i64)]).with_mutated(Mutation::Handled)
        }))
    });
    r.register("dee-strict", || {
        Box::new(FnPass::infallible("dee-strict", |m: &mut Module, am| {
            let s = dee::dee_strict_with(m, am);
            PassOutcome::from_stats(dee_stats(&s)).with_mutated(Mutation::Handled)
        }))
    });
    r.register("dee-specialize", || {
        Box::new(FnPass::infallible(
            "dee-specialize",
            |m: &mut Module, _am| {
                let s = dee::dee_specialize_calls(m);
                PassOutcome::from_stats(dee_stats(&s))
            },
        ))
    });
    // The paper's combined DEE step (legacy pipeline name "dee"): strict
    // intra-function DEE followed by call specialization.
    r.register("dee", || {
        Box::new(FnPass::infallible("dee", |m: &mut Module, am| {
            let strict = dee::dee_strict_with(m, am);
            let spec = dee::dee_specialize_calls(m);
            let spec_changed = spec != DeeStats::default();
            let mut stats = dee_stats(&strict);
            for (i, (_, v)) in dee_stats(&spec).into_iter().enumerate() {
                stats[i].1 += v;
            }
            let out = PassOutcome::from_stats(stats);
            if spec_changed {
                // Specialization clones functions: cached analyses for
                // the whole module are stale.
                out.with_mutated(Mutation::All)
            } else {
                out.with_mutated(Mutation::Handled)
            }
        }))
    });
    r.register("field-elision", || {
        Box::new(FnPass::infallible("field-elision", |m: &mut Module, am| {
            // Elision requires mut form and an entry function; like the
            // legacy pipeline, quietly skip when preconditions fail.
            // The pass invalidates `am` itself after each rewrite (and
            // re-derives affinity through it), so declare Handled to
            // keep the final — still fresh — affinity cached.
            match field_elision::auto_field_elision_with(m, FE_AFFINITY_THRESHOLD, am) {
                Ok(s) => PassOutcome::from_stats(vec![
                    ("fields_elided", s.fields_elided.len() as i64),
                    ("functions_threaded", s.functions_threaded as i64),
                    ("accesses_rewritten", s.accesses_rewritten as i64),
                ])
                .with_mutated(Mutation::Handled),
                Err(_) => PassOutcome::unchanged(),
            }
        }))
    });
    r.register("rie", || {
        Box::new(FnPass::infallible("rie", |m: &mut Module, am| {
            let s = rie::rie_with(m, am);
            PassOutcome::from_stats(vec![
                ("assocs_retyped", s.assocs_retyped as i64),
                ("accesses_rewritten", s.accesses_rewritten as i64),
            ])
        }))
    });
    r.register("key-fold", || {
        Box::new(FnPass::infallible("key-fold", |m: &mut Module, _am| {
            let s = key_fold::key_fold(m);
            PassOutcome::from_stats(vec![
                ("assocs_folded", s.assocs_folded as i64),
                ("casts_removed", s.casts_removed as i64),
            ])
        }))
    });
    r.register("dfe", || {
        Box::new(FnPass::infallible("dfe", |m: &mut Module, am| {
            let s = dfe::dfe_with(m, am);
            PassOutcome::from_stats(vec![
                ("fields_eliminated", s.fields_eliminated.len() as i64),
                ("writes_removed", s.writes_removed as i64),
            ])
        }))
    });
    r.register("use-phi-construct", || {
        Box::new(FnPass::infallible(
            "use-phi-construct",
            |m: &mut Module, _am| {
                let n = construct_use_phis(m);
                PassOutcome::from_stats(vec![("use_phis_constructed", n as i64)])
            },
        ))
    });
    r.register("use-phi-destruct", || {
        Box::new(FnPass::infallible(
            "use-phi-destruct",
            |m: &mut Module, _am| {
                let n = destruct_use_phis(m);
                PassOutcome::from_stats(vec![("use_phis_folded", n as i64)])
            },
        ))
    });

    r
}

/// Instantiates a single registered pass by name (for drivers running
/// passes outside a spec).
pub fn create(name: &str) -> Option<Box<dyn Pass<Module>>> {
    registry().create(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_memoir_passes() {
        let r = registry();
        for name in [
            "ssa-construct",
            "ssa-destruct",
            "constprop",
            "simplify",
            "fusion",
            "dce",
            "sink",
            "dee",
            "dee-strict",
            "dee-specialize",
            "field-elision",
            "rie",
            "key-fold",
            "dfe",
            "use-phi-construct",
            "use-phi-destruct",
        ] {
            assert!(r.contains(name), "missing pass `{name}`");
        }
        assert_eq!(r.names().len(), 16);
    }

    #[test]
    fn created_passes_report_their_registered_name() {
        let r = registry();
        for name in r.names() {
            let p = r.create(name).unwrap();
            assert_eq!(p.name(), name);
        }
    }
}
