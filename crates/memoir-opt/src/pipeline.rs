//! The MEMOIR compilation pipeline (paper Fig. 4).
//!
//! `MUT form → SSA construction → MEMOIR optimizations → SSA destruction
//! → (layout optimizations) → lowering-ready mut form`, with per-pass
//! timing for Table III and per-optimization toggles for the Figs. 8/9
//! breakdown.
//!
//! The pipeline is spec-driven: [`compile`] builds the default
//! [`PipelineSpec`] for an [`OptLevel`] (see [`default_spec`]) and hands
//! it to the generic `passman` [`PassManager`] over the pass
//! [`registry`](crate::passes::registry). Arbitrary pipelines can be run
//! from an LLVM-style `-passes=` string with [`compile_spec`]:
//!
//! ```
//! use memoir_ir::{Form, ModuleBuilder, Type};
//! let mut mb = ModuleBuilder::new("m");
//! mb.func("f", Form::Mut, |b| {
//!     let i64t = b.ty(Type::I64);
//!     let x = b.param("x", i64t);
//!     b.returns(&[i64t]);
//!     b.ret(vec![x]);
//! });
//! let mut m = mb.finish();
//! let spec = "ssa-construct,constprop,fixpoint(simplify,sink,dce),ssa-destruct"
//!     .parse()
//!     .unwrap();
//! let report = memoir_opt::pipeline::compile_spec(&mut m, &spec).unwrap();
//! assert!(report.run.passes.iter().any(|p| p.name == "constprop"));
//! ```

use crate::{
    constprop, construct_ssa, dce, dee, destruct_ssa, dfe, field_elision, key_fold, rie, simplify,
    sink, ConstructError,
};
use memoir_ir::{CollectionCensus, Module};
use passman::{PassManager, PipelineSpec, RunError, RunReport};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Which MEMOIR optimizations to run (the Figs. 8/9 configuration axes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptConfig {
    /// Dead element elimination (strict intra-function + call
    /// specialization).
    pub dee: bool,
    /// Field elision (with the affinity threshold below).
    pub fe: bool,
    /// Redundant indirection elimination.
    pub rie: bool,
    /// Dead field elimination.
    pub dfe: bool,
    /// Key folding.
    pub key_fold: bool,
}

impl OptConfig {
    /// Everything on (the paper's ALL configuration).
    pub fn all() -> Self {
        OptConfig {
            dee: true,
            fe: true,
            rie: true,
            dfe: true,
            key_fold: true,
        }
    }

    /// Everything off (O0: pure construction/destruction).
    pub fn none() -> Self {
        OptConfig::default()
    }

    /// Only DEE.
    pub fn dee_only() -> Self {
        OptConfig {
            dee: true,
            ..OptConfig::none()
        }
    }
}

/// Affinity threshold used by automatic field elision under `fe`.
pub const FE_AFFINITY_THRESHOLD: f64 = 0.5;

/// Optimization level (Table III columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// SSA construction + destruction only.
    O0,
    /// Full scalar pipeline plus the configured MEMOIR optimizations.
    O3(OptConfig),
}

/// Per-pass timing and outcome report.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// `(pass name, wall time)` in execution order.
    pub pass_times: Vec<(String, Duration)>,
    /// Total pipeline wall time.
    pub total: Duration,
    /// Copies inserted by SSA destruction (must be 0 for linear chains).
    pub destruct_copies: usize,
    /// Collection census after construction (Table III's "SSA" column).
    pub ssa_census: memoir_ir::CollectionCensus,
    /// Collection census after the full pipeline ("Binary" column).
    pub final_census: memoir_ir::CollectionCensus,
    /// The full pass-manager report: per-pass stats, fixpoint iteration
    /// tags, analysis-cache counters, invalidation events.
    pub run: RunReport,
}

impl PipelineReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }
}

/// The default pipeline spec for an optimization level — the Fig. 4
/// sequence as a parsable, printable [`PipelineSpec`]:
///
/// * `O0` → `ssa-construct,ssa-destruct`
/// * `O3(all)` → `ssa-construct,constprop,fusion,dee,fixpoint(constprop,simplify,sink,dce),fusion,sink,dce,ssa-destruct,field-elision,rie,key-fold,dfe`
///
/// with the DEE step and each layout pass gated by its [`OptConfig`]
/// toggle. The `fixpoint(...)` group is the paper's DEE cleanup (fold
/// the guards, simplify the regions, sink computation into them, drop
/// dead code), iterated to convergence.
pub fn default_spec(level: OptLevel) -> PipelineSpec {
    let mut s = String::from("ssa-construct");
    if let OptLevel::O3(cfg) = level {
        s.push_str(",constprop,fusion");
        if cfg.dee {
            s.push_str(",dee,fixpoint(constprop,simplify,sink,dce)");
        }
        s.push_str(",fusion,sink,dce");
    }
    s.push_str(",ssa-destruct");
    if let OptLevel::O3(cfg) = level {
        if cfg.fe {
            s.push_str(",field-elision");
        }
        if cfg.rie {
            s.push_str(",rie");
        }
        if cfg.key_fold {
            s.push_str(",key-fold");
        }
        if cfg.dfe {
            s.push_str(",dfe");
        }
    }
    PipelineSpec::parse(&s).expect("default spec is well-formed")
}

/// A [`PassManager`] over the full MEMOIR registry with the IR verifier
/// installed (inter-pass verification runs in debug builds by default),
/// the symbolic equivalence oracle behind the `verify-sym` spec option,
/// per-function copy-on-write snapshots for recovering fault policies,
/// and the worker-thread count taken from `MEMOIR_THREADS` (default
/// serial; function-sharded passes like `simplify` use the workers).
pub fn pass_manager() -> PassManager<Module> {
    let mut pm = PassManager::new(crate::passes::registry())
        .with_verifier(|m: &Module| {
            let errs = memoir_ir::verifier::verify_module(m);
            if errs.is_empty() {
                Ok(())
            } else {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                Err(msgs.join("; "))
            }
        })
        .with_sym_verifier(|m: &Module| m.clone(), prove_pass_equiv)
        .with_cow_snapshots()
        .with_threads(threads_from_env());
    if let Some(cache) = cache_from_env() {
        pm = pm.with_compile_cache(cache);
    }
    pm
}

/// The `verify-sym` checker wired into [`pass_manager`]: proves every
/// function of `before` equivalent to its namesake in `after` with the
/// bounded symbolic oracle (`symexec`). `budget` is the per-function
/// path cap (`0` = [`symexec::Budget::default`], currently 64 paths).
///
/// Only a *confirmed* divergence witness fails the pass — inconclusive
/// verdicts (budget exhausted, unsupported ops, non-scalar signatures)
/// pass, because a peephole verifier that rejects everything it cannot
/// prove would reject most real pipelines. Functions added or removed
/// by the pass (e.g. DEE call specialization) are skipped: equivalence
/// is only defined for name-matched pairs.
pub fn prove_pass_equiv(before: &Module, after: &Module, budget: u64) -> Result<(), String> {
    let b = if budget == 0 {
        symexec::Budget::default()
    } else {
        symexec::Budget {
            max_paths: budget as usize,
            ..symexec::Budget::default()
        }
    };
    for (_, f) in after.funcs.iter() {
        if before.func_by_name(&f.name).is_none() {
            continue;
        }
        if let symexec::FnVerdict::Diverged { args, detail } =
            symexec::prove_memoir_equiv(before, after, &f.name, &b)
        {
            return Err(format!(
                "function `{}` diverges on args {args:?}: {detail}",
                f.name
            ));
        }
    }
    Ok(())
}

/// The process-global compile cache enabled by `MEMOIR_CACHE=1` (or
/// `true`): every pass manager built by [`pass_manager`] shares one
/// [`passman::CompileCache`], so repeated compiles of unchanged
/// functions across jobs in the same process are served from cache. The
/// variable is read once; later changes have no effect.
pub fn cache_from_env() -> Option<passman::CompileCache> {
    static CACHE: std::sync::OnceLock<Option<passman::CompileCache>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            matches!(
                std::env::var("MEMOIR_CACHE")
                    .ok()
                    .map(|v| v.trim().to_ascii_lowercase())
                    .as_deref(),
                Some("1") | Some("true")
            )
            .then(passman::CompileCache::new)
        })
        .clone()
}

/// The worker-thread count requested via the `MEMOIR_THREADS`
/// environment variable (unset, empty, or unparsable → 1, i.e. serial).
pub fn threads_from_env() -> usize {
    std::env::var("MEMOIR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

/// Runs an arbitrary pipeline spec over a module, producing the same
/// [`PipelineReport`] as [`compile`]. Census fields are populated when
/// the spec contains `ssa-construct`.
pub fn compile_spec(m: &mut Module, spec: &PipelineSpec) -> Result<PipelineReport, RunError> {
    compile_spec_with(m, spec, |pm| pm)
}

/// Like [`compile_spec`], but lets the caller reconfigure the
/// [`PassManager`] before the run — the hook for the `memoir-opt` CLI's
/// `--on-fault`/`--budget` flags and the `memoir-fuzz` harness's fault
/// injection:
///
/// ```ignore
/// compile_spec_with(&mut m, &spec, |pm| {
///     pm.on_fault(FaultPolicy::SkipPass).with_budgets(budgets)
/// })
/// ```
pub fn compile_spec_with(
    m: &mut Module,
    spec: &PipelineSpec,
    configure: impl FnOnce(PassManager<Module>) -> PassManager<Module>,
) -> Result<PipelineReport, RunError> {
    let ssa_census: Rc<RefCell<Option<CollectionCensus>>> = Rc::new(RefCell::new(None));
    let cell = Rc::clone(&ssa_census);
    let pm = configure(pass_manager().with_observer(move |m: &Module, run| {
        if run.name == "ssa-construct" {
            let c = m.collection_census();
            run.annotations
                .push(("ssa_variables".into(), c.ssa_variables.to_string()));
            run.annotations
                .push(("allocations".into(), c.allocations.to_string()));
            *cell.borrow_mut() = Some(c);
        }
    }));
    let run = pm.run(m, spec)?;
    let ssa_census = ssa_census.borrow().unwrap_or_default();
    Ok(PipelineReport {
        pass_times: run.pass_times(),
        total: run.total,
        destruct_copies: run
            .last_run("ssa-destruct")
            .and_then(|r| r.stat("copies_inserted"))
            .unwrap_or(0) as usize,
        ssa_census,
        final_census: m.collection_census(),
        run,
    })
}

/// Runs the pipeline in place. The module must be in mut form (the MUT
/// library frontend output); it is returned in mut form, optimized.
///
/// This is a thin wrapper: it builds [`default_spec`]`(level)` and runs
/// it through [`compile_spec`], mapping an SSA-construction failure back
/// to [`ConstructError`]. Any other pipeline failure (unknown pass,
/// inter-pass verification) indicates a bug in the default spec or a
/// pass and panics.
pub fn compile(m: &mut Module, level: OptLevel) -> Result<PipelineReport, ConstructError> {
    match compile_spec(m, &default_spec(level)) {
        Ok(report) => Ok(report),
        Err(RunError::PassFailed { pass, error }) => {
            let passman::PassError { message, payload } = error;
            match payload.and_then(|p| p.downcast::<ConstructError>().ok()) {
                Some(e) => Err(*e),
                None => panic!("pass `{pass}` failed: {message}"),
            }
        }
        Err(e) => panic!("default pipeline failed: {e}"),
    }
}

/// The legacy hard-coded pass sequence, kept verbatim as a reference
/// for differential testing of the spec-driven pipeline.
#[doc(hidden)]
pub fn compile_fixed_reference(
    m: &mut Module,
    level: OptLevel,
) -> Result<PipelineReport, ConstructError> {
    let mut report = PipelineReport::default();
    let start = Instant::now();
    let time = |name: &str, report: &mut PipelineReport, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        report.pass_times.push((name.to_string(), t0.elapsed()));
    };

    // SSA construction.
    let mut construct_err = None;
    time("ssa-construct", &mut report, &mut || {
        if let Err(e) = construct_ssa(m) {
            construct_err = Some(e);
        }
    });
    if let Some(e) = construct_err {
        return Err(e);
    }
    report.ssa_census = m.collection_census();

    if let OptLevel::O3(cfg) = level {
        time("constprop", &mut report, &mut || {
            constprop(m);
        });
        if cfg.dee {
            time("dee", &mut report, &mut || {
                dee::dee_strict(m);
                dee::dee_specialize_calls(m);
            });
            // The paper's DEE cleanup: fold the guards, simplify the
            // regions, sink computation into them, drop dead code.
            time("dee-cleanup", &mut report, &mut || {
                constprop(m);
                simplify(m);
                sink::sink(m);
                dce(m);
            });
        }
        time("sink", &mut report, &mut || {
            sink::sink(m);
        });
        time("dce", &mut report, &mut || {
            dce(m);
        });
    }

    // SSA destruction.
    let mut destruct_copies = 0;
    time("ssa-destruct", &mut report, &mut || {
        let stats = destruct_ssa(m);
        destruct_copies = stats.copies_inserted;
    });
    report.destruct_copies = destruct_copies;

    // Layout optimizations on the destructed form.
    if let OptLevel::O3(cfg) = level {
        if cfg.fe {
            time("field-elision", &mut report, &mut || {
                let _ = field_elision::auto_field_elision(m, FE_AFFINITY_THRESHOLD);
            });
        }
        if cfg.rie {
            time("rie", &mut report, &mut || {
                rie::rie(m);
            });
        }
        if cfg.key_fold {
            time("key-fold", &mut report, &mut || {
                key_fold::key_fold(m);
            });
        }
        if cfg.dfe {
            time("dfe", &mut report, &mut || {
                dfe::dfe(m);
            });
        }
    }

    report.final_census = m.collection_census();
    report.total = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};
    use memoir_ir::{CmpOp, Form, ModuleBuilder, Type};

    /// A program with enough structure to exercise the whole pipeline:
    /// builds a sequence, fills it, reads a prefix.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let count = b.param("count", idxt);
            let zero_i = b.index(0);
            let s = b.new_seq(i64t, zero_i);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero_i);
            let done = b.cmp(CmpOp::Ge, i, count);
            b.branch(done, exit, body);
            b.switch_to(body);
            let iv = b.cast(Type::I64, i);
            let sz = b.size(s);
            b.mut_insert(s, sz, Some(iv));
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            let szf = b.size(s);
            let has_any = b.cmp(CmpOp::Gt, szf, zero_i);
            let some = b.block("some");
            let none = b.block("none");
            let out = b.block("out");
            b.branch(has_any, some, none);
            b.switch_to(some);
            let first = b.read(s, zero_i);
            b.jump(out);
            b.switch_to(none);
            let z = b.i64(0);
            b.jump(out);
            b.switch_to(out);
            let r = b.phi(i64t, vec![(some, first), (none, z)]);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("main");
        m
    }

    fn run(m: &Module, count: i64) -> Vec<Value> {
        let mut i = Interp::new(m);
        i.run_by_name("main", vec![Value::Int(Type::Index, count)])
            .unwrap()
    }

    #[test]
    fn o0_round_trips_without_copies() {
        let m0 = sample();
        let mut m = m0.clone();
        let report = compile(&mut m, OptLevel::O0).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(report.destruct_copies, 0);
        assert!(report.ssa_census.ssa_variables > report.final_census.ssa_variables);
        for c in [0, 1, 7] {
            assert_eq!(run(&m0, c), run(&m, c), "count={c}");
        }
    }

    #[test]
    fn o3_all_preserves_semantics() {
        let m0 = sample();
        let mut m = m0.clone();
        let report = compile(&mut m, OptLevel::O3(OptConfig::all())).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        assert!(report.pass_times.iter().any(|(n, _)| n == "dee"));
        for c in [0, 1, 7, 20] {
            assert_eq!(run(&m0, c), run(&m, c), "count={c}");
        }
    }

    /// The §VII-C interplay: field elision introduces an assoc keyed by
    /// object references read from a list; RIE then retypes it into a
    /// sequence indexed by list position (removing key storage); DFE
    /// removes a never-read field. All composed by the O3 pipeline.
    #[test]
    fn fe_then_rie_then_dfe_compose() {
        let mut mb = ModuleBuilder::new("arcs");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "arc",
                vec![
                    memoir_ir::Field {
                        name: "cost".into(),
                        ty: i64t,
                    },
                    memoir_ir::Field {
                        name: "ident".into(),
                        ty: i64t,
                    },
                    memoir_ir::Field {
                        name: "scratch".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        let ref_ty = mb.module.types.ref_of(obj);
        mb.func("main", Form::Mut, |b| {
            let idxt = b.ty(Type::Index);
            let n = b.param("n", idxt);
            let specials = b.new_seq(ref_ty, n);
            // Phase 1: allocate arcs; hot `cost` access keeps its
            // affinity high, `ident` is touched only in phase 2/3 blocks.
            let h1 = b.block("h1");
            let b1 = b.block("b1");
            let p2 = b.block("p2");
            let zero = b.index(0);
            let one = b.index(1);
            let entry = b.func.entry;
            b.jump(h1);
            b.switch_to(h1);
            let i = b.phi_placeholder(idxt);
            b.add_phi_incoming(i, entry, zero);
            let d1 = b.cmp(CmpOp::Ge, i, n);
            b.branch(d1, p2, b1);
            b.switch_to(b1);
            let o = b.new_obj(obj);
            let iv = b.cast(Type::I64, i);
            b.field_write(o, obj, 0, iv);
            let junk = b.i64(-1);
            b.field_write(o, obj, 2, junk);
            let c0 = b.field_read(o, obj, 0);
            b.field_write(o, obj, 0, c0);
            let c1 = b.field_read(o, obj, 0);
            b.field_write(o, obj, 0, c1);
            let c2r = b.field_read(o, obj, 0);
            b.field_write(o, obj, 0, c2r);
            b.mut_write(specials, i, o);
            let i2 = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, i2);
            b.jump(h1);

            // Phase 2: write idents through the list.
            b.switch_to(p2);
            let h2 = b.block("h2");
            let b2 = b.block("b2");
            let p3 = b.block("p3");
            b.jump(h2);
            b.switch_to(h2);
            let j = b.phi_placeholder(idxt);
            b.add_phi_incoming(j, p2, zero);
            let d2 = b.cmp(CmpOp::Ge, j, n);
            b.branch(d2, p3, b2);
            b.switch_to(b2);
            let oj = b.read(specials, j);
            let jv = b.cast(Type::I64, j);
            b.field_write(oj, obj, 1, jv);
            let j2 = b.add(j, one);
            let bb2 = b.current_block();
            b.add_phi_incoming(j, bb2, j2);
            b.jump(h2);

            // Phase 3: fold idents back through the list.
            b.switch_to(p3);
            let h3 = b.block("h3");
            let b3 = b.block("b3");
            let e3 = b.block("e3");
            let zero64 = b.i64(0);
            b.jump(h3);
            b.switch_to(h3);
            let k = b.phi_placeholder(idxt);
            let acc = b.phi_placeholder(i64t);
            b.add_phi_incoming(k, p3, zero);
            b.add_phi_incoming(acc, p3, zero64);
            let d3 = b.cmp(CmpOp::Ge, k, n);
            b.branch(d3, e3, b3);
            b.switch_to(b3);
            let ok = b.read(specials, k);
            let idv = b.field_read(ok, obj, 1);
            let acc2 = b.add(acc, idv);
            let k2 = b.add(k, one);
            let bb3 = b.current_block();
            b.add_phi_incoming(k, bb3, k2);
            b.add_phi_incoming(acc, bb3, acc2);
            b.jump(h3);
            b.switch_to(e3);
            b.returns(&[i64t]);
            b.ret(vec![acc]);
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("main");
        memoir_ir::verifier::assert_valid(&m);

        let run = |m: &Module, n: i64| {
            let mut vm = Interp::new(m).with_fuel(50_000_000);
            vm.run_by_name("main", vec![Value::Int(Type::Index, n)])
                .unwrap()[0]
                .as_int()
                .unwrap()
        };
        let baseline = run(&m, 20);
        let before_size = m.types.object_layout(obj).size;

        // The individual layout passes, composed as the pipeline runs
        // them: FE (affinity picks `ident`), then RIE, then DFE.
        let fe = crate::field_elision::auto_field_elision(&mut m, FE_AFFINITY_THRESHOLD).unwrap();
        assert!(
            fe.fields_elided.iter().any(|(_, f)| f == "ident"),
            "affinity must pick the cold field: {fe:?}"
        );
        let rie = crate::rie::rie(&mut m);
        assert_eq!(
            rie.assocs_retyped, 1,
            "RIE retypes the elided assoc: {rie:?}"
        );
        let dfe_stats = crate::dfe::dfe(&mut m);
        assert!(
            dfe_stats
                .fields_eliminated
                .iter()
                .any(|(_, f)| f == "scratch"),
            "{dfe_stats:?}"
        );
        memoir_ir::verifier::assert_valid(&m);

        assert!(m.types.object_layout(obj).size < before_size);
        assert_eq!(
            run(&m, 20),
            baseline,
            "composed layout passes preserve semantics"
        );
        // No associative ops remain at runtime (RIE converted to a seq).
        let mut vm = Interp::new(&m).with_fuel(50_000_000);
        vm.run_by_name("main", vec![Value::Int(Type::Index, 20)])
            .unwrap();
        assert_eq!(vm.stats.assoc_ops, 0, "hashtable fully eliminated");
    }

    /// `f(x) = x + n` as a mut-form module, for the verify-sym tests.
    fn add_const(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let c = b.i64(n);
            let r = b.add(x, c);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("f");
        m
    }

    #[test]
    fn verify_sym_spec_option_catches_a_miscompile() {
        // A deliberately wrong "pass": replaces f(x)=x+1 with f(x)=x+2.
        let mut r = crate::passes::registry();
        r.register("clobber", || {
            Box::new(passman::FnPass::infallible(
                "clobber",
                |m: &mut Module, _| {
                    *m = add_const(2);
                    passman::PassOutcome::from_stats(vec![("clobbered", 1)])
                },
            ))
        });
        let pm = PassManager::new(r).with_sym_verifier(|m: &Module| m.clone(), prove_pass_equiv);
        let mut m = add_const(1);
        let spec = PipelineSpec::parse("clobber<verify-sym>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("verify-sym"), "{msg}");
        assert!(msg.contains("diverges"), "{msg}");
    }

    #[test]
    fn verify_sym_accepts_the_real_pipeline() {
        // Scalar function: the oracle proves each verify-sym'd pass
        // outright. The spec string is what a CI tier-1 step runs.
        let mut m = add_const(3);
        let spec = PipelineSpec::parse(
            "ssa-construct,constprop<verify-sym>,fixpoint(simplify<verify-sym>,sink,dce<verify-sym>),ssa-destruct",
        )
        .unwrap();
        compile_spec(&mut m, &spec).unwrap();
        let mut vm = Interp::new(&m);
        let out = vm.run_by_name("f", vec![Value::Int(Type::I64, 4)]).unwrap();
        assert_eq!(out[0].as_int(), Some(7));

        // Collection-bearing module: proofs go inconclusive (symbolic
        // loop bounds exceed the path budget) and must NOT fail the run.
        let mut m = sample();
        let spec = PipelineSpec::parse(
            "ssa-construct,constprop<verify-sym=8>,fusion<verify-sym=8>,sink,dce,ssa-destruct",
        )
        .unwrap();
        compile_spec(&mut m, &spec).unwrap();
        assert_eq!(run(&m, 5), run(&sample(), 5));
    }

    #[test]
    fn o3_timing_exceeds_o0() {
        let m0 = sample();
        let mut a = m0.clone();
        let r0 = compile(&mut a, OptLevel::O0).unwrap();
        let mut b = m0.clone();
        let r3 = compile(&mut b, OptLevel::O3(OptConfig::all())).unwrap();
        assert!(r3.pass_times.len() > r0.pass_times.len());
    }
}
