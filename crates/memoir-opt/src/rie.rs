//! Redundant Indirection Elimination (paper §V).
//!
//! Simplifies indirect accesses `a[b[i]]` to associative arrays when the
//! index is derived from constant data: if every key used to access an
//! assoc `A` is of the form `k = READ(c, i)` where all reads name the same
//! collection `c` — and `c` is not mutated once `A` is in use — then the
//! keys of `A` can be replaced by the *indices* of `c`:
//!
//! * `c` a sequence ⇒ `A` becomes `Seq<U>(size(c))`;
//! * `c` an assoc  ⇒ `A` becomes `Assoc<V, U>` keyed by `c`'s key type.
//!
//! This removes the read of the index collection on every access and — in
//! concert with field elision — converts mcf's elided-field hashtable into
//! a plain sequence, removing key storage entirely (§VII-C: FE+RIE turns
//! FE's +3.3% max-RSS regression into a −10.4% win).
//!
//! Runs on the mut form.

use memoir_ir::{Form, FuncId, InstId, InstKind, Module, Type, ValueDef, ValueId};
use std::collections::HashMap;

/// Statistics from a RIE run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RieStats {
    /// Associative arrays retyped.
    pub assocs_retyped: usize,
    /// Accesses rewritten (key read removed).
    pub accesses_rewritten: usize,
}

/// Runs RIE on every mut-form function.
pub fn rie(m: &mut Module) -> RieStats {
    rie_with(m, &mut passman::AnalysisManager::new())
}

/// Like [`rie`], but consults the cached module call graph: when the
/// module has an entry function, functions unreachable from it are
/// skipped — their indirections can never execute, so rewriting them is
/// wasted work (and the call graph is usually already cached by an
/// earlier pass).
pub fn rie_with(m: &mut Module, am: &mut passman::AnalysisManager<Module>) -> RieStats {
    let reachable: Option<std::collections::HashSet<FuncId>> = m.entry.map(|entry| {
        let cg = am.get_module::<memoir_analysis::cached::CachedCallGraph>(m);
        let mut seen = std::collections::HashSet::from([entry]);
        let mut work = vec![entry];
        while let Some(f) = work.pop() {
            for &callee in cg.callees.get(&f).into_iter().flatten() {
                if seen.insert(callee) {
                    work.push(callee);
                }
            }
        }
        seen
    });
    let mut stats = RieStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Mut {
            continue;
        }
        if let Some(reachable) = &reachable {
            if !reachable.contains(&fid) {
                continue;
            }
        }
        stats = add(stats, rie_function(m, fid));
    }
    stats
}

fn add(a: RieStats, b: RieStats) -> RieStats {
    RieStats {
        assocs_retyped: a.assocs_retyped + b.assocs_retyped,
        accesses_rewritten: a.accesses_rewritten + b.accesses_rewritten,
    }
}

fn rie_function(m: &mut Module, fid: FuncId) -> RieStats {
    let mut stats = RieStats::default();

    // Candidate assocs: locally allocated, never escaping this function.
    let candidates: Vec<InstId> = {
        let f = &m.funcs[fid];
        f.inst_ids_in_order()
            .into_iter()
            .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::NewAssoc { .. }))
            .map(|(_, i)| i)
            .collect()
    };

    'cand: for alloc in candidates {
        let f = &m.funcs[fid];
        let assoc_v = f.insts[alloc].results[0];
        let order = f.inst_ids_in_order();
        let alloc_pos = order.iter().position(|&(_, i)| i == alloc).unwrap();

        // Gather accesses; reject on escape or unsupported ops.
        #[derive(Clone, Copy)]
        enum Access {
            Read(InstId),
            Write(InstId),
            Insert(InstId),
        }
        let mut accesses: Vec<(usize, Access, ValueId /* key */)> = Vec::new();
        for (pos, &(_, i)) in order.iter().enumerate() {
            let kind = &f.insts[i].kind;
            let mut uses_assoc = false;
            kind.visit_operands(|&v| uses_assoc |= v == assoc_v);
            if !uses_assoc {
                continue;
            }
            match kind {
                InstKind::Read { c, idx } if *c == assoc_v => {
                    accesses.push((pos, Access::Read(i), *idx));
                }
                InstKind::MutWrite { c, idx, .. } if *c == assoc_v => {
                    accesses.push((pos, Access::Write(i), *idx));
                }
                InstKind::MutInsert {
                    c,
                    idx,
                    value: Some(_),
                } if *c == assoc_v => {
                    accesses.push((pos, Access::Insert(i), *idx));
                }
                // Any other use (has/keys/size/call/ret/store) defeats RIE.
                _ => continue 'cand,
            }
        }
        if accesses.is_empty() {
            continue;
        }

        // Every key must be `READ(c, i)` from one common collection `c`.
        let mut index_coll: Option<ValueId> = None;
        let mut key_to_index: HashMap<InstId, (ValueId, InstId)> = HashMap::new();
        for &(_, acc, key) in &accesses {
            let ValueDef::Inst(key_def, _) = f.values[key].def else {
                continue 'cand;
            };
            let InstKind::Read { c, idx } = f.insts[key_def].kind else {
                continue 'cand;
            };
            match index_coll {
                None => index_coll = Some(c),
                Some(prev) if prev == c => {}
                _ => continue 'cand,
            }
            let inst = match acc {
                Access::Read(i) | Access::Write(i) | Access::Insert(i) => i,
            };
            key_to_index.insert(inst, (idx, key_def));
        }
        let Some(c) = index_coll else { continue 'cand };

        // `c` must not be mutated at or after the first access to the
        // assoc (its elements must be constant while `A` carries data —
        // building `c` beforehand is fine even though the assoc is
        // allocated at function entry).
        let first_access_pos = accesses.iter().map(|&(p, _, _)| p).min().unwrap();
        let _ = alloc_pos;
        for (pos, &(_, i)) in order.iter().enumerate() {
            if pos < first_access_pos {
                continue;
            }
            if f.insts[i].kind.mutated_collections().contains(&c) {
                continue 'cand;
            }
        }

        // Determine the replacement collection type.
        let c_ty = m.types.get(f.value_ty(c));
        let assoc_val_ty = match m.types.get(f.value_ty(assoc_v)) {
            Type::Assoc(_, v) => v,
            _ => continue 'cand,
        };

        // ---- commit ----
        let (new_kind, new_ty) = match c_ty {
            Type::Seq(_) => {
                // c' = new Seq<U>(size(c)) — the size operand is inserted
                // right before the allocation.
                (None, m.types.seq_of(assoc_val_ty))
            }
            Type::Assoc(k, _) => (Some(k), m.types.assoc_of(k, assoc_val_ty)),
            _ => continue 'cand,
        };

        let index_ty = m.types.intern(Type::Index);
        let f = &mut m.funcs[fid];
        // The replacement allocation must be dominated by `c`'s
        // definition (the old assoc may have been allocated earlier, e.g.
        // at function entry by field elision): place it right after `c`.
        let (alloc_block, alloc_idx) = match f.value_def_inst(c) {
            Some(cdef) => {
                let (b, i) = find_inst(f, cdef).unwrap();
                (b, i + 1)
            }
            None => find_inst(f, alloc).unwrap(), // c is a parameter
        };
        let replacement = match new_kind {
            None => {
                let (_, sz) =
                    f.insert_inst_at(alloc_block, alloc_idx, InstKind::Size { c }, &[index_ty]);
                let (_, res) = f.insert_inst_at(
                    alloc_block,
                    alloc_idx + 1,
                    InstKind::NewSeq {
                        elem: assoc_val_ty,
                        len: sz[0],
                    },
                    &[new_ty],
                );
                res[0]
            }
            Some(key_ty) => {
                let (_, res) = f.insert_inst_at(
                    alloc_block,
                    alloc_idx,
                    InstKind::NewAssoc {
                        key: key_ty,
                        value: assoc_val_ty,
                    },
                    &[new_ty],
                );
                res[0]
            }
        };

        // Rewrite each access `A[k]` (k = c[i]) to `c'[i]`.
        for (inst, (idx, _key_def)) in &key_to_index {
            let old_kind = f.insts[*inst].kind.clone();
            let new_kind = match old_kind {
                InstKind::Read { .. } => InstKind::Read {
                    c: replacement,
                    idx: *idx,
                },
                InstKind::MutWrite { value, .. } => InstKind::MutWrite {
                    c: replacement,
                    idx: *idx,
                    value,
                },
                // Inserting into the retyped seq is a write (the index
                // space is pre-sized).
                InstKind::MutInsert { value: Some(v), .. } => InstKind::MutWrite {
                    c: replacement,
                    idx: *idx,
                    value: v,
                },
                other => other,
            };
            f.insts[*inst].kind = new_kind;
            stats.accesses_rewritten += 1;
        }
        // Remove the old allocation (its result is now unused).
        let f = &mut m.funcs[fid];
        let (b, _) = find_inst(f, alloc).unwrap();
        f.remove_inst(b, alloc);
        stats.assocs_retyped += 1;
    }
    stats
}

fn find_inst(f: &memoir_ir::Function, inst: InstId) -> Option<(memoir_ir::BlockId, usize)> {
    for (b, block) in f.blocks.iter() {
        if let Some(pos) = block.insts.iter().position(|&i| i == inst) {
            return Some((b, pos));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};
    use memoir_ir::{CmpOp, ModuleBuilder};

    /// `prices[nodes[i]]` where `nodes` is a constant sequence of object
    /// refs — the classic mcf pattern after field elision.
    fn build() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb.module.types.define_object("node", vec![]).unwrap();
        let ref_ty = mb.module.types.ref_of(obj);
        mb.func("main", Form::Mut, |b| {
            let idxt = b.ty(Type::Index);
            let count = b.param("count", idxt);
            // nodes: Seq<&node>, filled once.
            let nodes = b.new_seq(ref_ty, count);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, count);
            b.branch(done, exit, body);
            b.switch_to(body);
            let o = b.new_obj(obj);
            b.mut_write(nodes, i, o);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);

            // prices: Assoc<&node, i64>, accessed only via nodes[i].
            let prices = b.new_assoc(ref_ty, i64t);
            let h2 = b.block("h2");
            let b2 = b.block("b2");
            let e2 = b.block("e2");
            b.jump(h2);
            b.switch_to(h2);
            let j = b.phi_placeholder(idxt);
            b.add_phi_incoming(j, exit, zero);
            let done2 = b.cmp(CmpOp::Ge, j, count);
            b.branch(done2, e2, b2);
            b.switch_to(b2);
            let key = b.read(nodes, j);
            let jv = b.cast(Type::I64, j);
            b.mut_write(prices, key, jv);
            let jn = b.add(j, one);
            let bb2 = b.current_block();
            b.add_phi_incoming(j, bb2, jn);
            b.jump(h2);
            b.switch_to(e2);

            // Read back price of nodes[0] (guarded: only when count > 0).
            let some = b.block("some");
            let none = b.block("none");
            let out = b.block("out");
            let nonzero = b.cmp(CmpOp::Gt, count, zero);
            b.branch(nonzero, some, none);
            b.switch_to(some);
            let k0 = b.read(nodes, zero);
            let p0 = b.read(prices, k0);
            b.jump(out);
            b.switch_to(none);
            let zero64 = b.i64(0);
            b.jump(out);
            b.switch_to(out);
            let r = b.phi(i64t, vec![(some, p0), (none, zero64)]);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("main");
        m
    }

    #[test]
    fn assoc_keyed_by_constant_seq_becomes_seq() {
        let mut m = build();
        memoir_ir::verifier::assert_valid(&m);
        let baseline = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![Value::Int(Type::Index, 6)])
                .unwrap()
        };
        let stats = rie(&mut m);
        assert_eq!(stats.assocs_retyped, 1, "{stats:?}");
        assert!(stats.accesses_rewritten >= 2);
        memoir_ir::verifier::assert_valid(&m);

        let mut i = Interp::new(&m);
        let out = i
            .run_by_name("main", vec![Value::Int(Type::Index, 6)])
            .unwrap();
        assert_eq!(out, baseline);
        // No assoc (hash) operations remain.
        assert_eq!(
            i.stats.assoc_ops, 0,
            "hashtable fully replaced by a sequence"
        );
    }

    #[test]
    fn mutation_of_index_collection_defeats_rie() {
        let mut m = build();
        // Append a late mutation of `nodes` after the prices loop: RIE must
        // refuse. Easiest: add another write at the very end.
        let fid = m.func_by_name("main").unwrap();
        let (nodes_v, out_block) = {
            let f = &m.funcs[fid];
            // nodes is the first NewSeq result; out block is the last.
            let mut nodes_v = None;
            for (_, i) in f.inst_ids_in_order() {
                if matches!(f.insts[i].kind, InstKind::NewSeq { .. }) {
                    nodes_v = Some(f.insts[i].results[0]);
                    break;
                }
            }
            let last_block = f.blocks.ids().last().unwrap();
            (nodes_v.unwrap(), last_block)
        };
        let f = &mut m.funcs[fid];
        let idx_ty = f.value_ty(nodes_v);
        let _ = idx_ty;
        let zero = f.constant(memoir_ir::Constant::index(0), {
            // index type already interned by the builder
            m.types.interned_id(Type::Index).unwrap()
        });
        let null = f.constant(
            memoir_ir::Constant::Null(memoir_ir::ObjTypeId::from_raw(0)),
            {
                m.types
                    .interned_id(Type::Ref(memoir_ir::ObjTypeId::from_raw(0)))
                    .unwrap()
            },
        );
        let pos = f.blocks[out_block].insts.len() - 1;
        f.insert_inst_at(
            out_block,
            pos,
            InstKind::MutWrite {
                c: nodes_v,
                idx: zero,
                value: null,
            },
            &[],
        );
        let stats = rie(&mut m);
        assert_eq!(stats.assocs_retyped, 0);
    }
}
