//! CFG simplification: jump threading, single-predecessor block merging,
//! and single-incoming φ elimination. Runs after constant propagation
//! folds branches (the paper's "simplifying the if-else regions" step that
//! follows dead element elimination, §V Alg. 2).

use memoir_ir::{InstKind, Module, ValueId};
use std::collections::HashMap;

/// Statistics from one simplification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// φs with a single incoming replaced by that value.
    pub phis_removed: usize,
    /// Branches with identical targets rewritten to jumps.
    pub branches_to_jumps: usize,
    /// Trivial forwarding blocks threaded through.
    pub blocks_threaded: usize,
}

/// Runs simplification on every function.
pub fn simplify(m: &mut Module) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        let round = simplify_function(&mut m.funcs[fid]);
        stats.phis_removed += round.phis_removed;
        stats.branches_to_jumps += round.branches_to_jumps;
        stats.blocks_threaded += round.blocks_threaded;
    }
    stats
}

/// Runs simplification on one function, to a local fixpoint.
pub fn simplify_function(f: &mut memoir_ir::Function) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        let round = run_function(f);
        stats.phis_removed += round.phis_removed;
        stats.branches_to_jumps += round.branches_to_jumps;
        stats.blocks_threaded += round.blocks_threaded;
        if round == SimplifyStats::default() {
            break;
        }
    }
    stats
}

fn run_function(f: &mut memoir_ir::Function) -> SimplifyStats {
    let mut stats = SimplifyStats::default();

    // 1. br %c, X, X → jump X.
    for (_, i) in f.inst_ids_in_order() {
        if let InstKind::Branch {
            then_target,
            else_target,
            ..
        } = f.insts[i].kind
        {
            if then_target == else_target {
                f.insts[i].kind = InstKind::Jump {
                    target: then_target,
                };
                stats.branches_to_jumps += 1;
            }
        }
    }

    // 2. φ with exactly one (distinct) incoming → forward.
    let mut replacements: HashMap<ValueId, ValueId> = HashMap::new();
    let mut removed: Vec<(memoir_ir::BlockId, memoir_ir::InstId)> = Vec::new();
    for (b, i) in f.inst_ids_in_order() {
        if let InstKind::Phi { incoming } = &f.insts[i].kind {
            let result = f.insts[i].results[0];
            let mut uniq: Option<ValueId> = None;
            let mut ok = !incoming.is_empty();
            for (_, v) in incoming {
                if *v == result {
                    continue;
                }
                match uniq {
                    None => uniq = Some(*v),
                    Some(u) if u == *v => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                if let Some(u) = uniq {
                    replacements.insert(result, u);
                    removed.push((b, i));
                }
            }
        }
    }
    stats.phis_removed += removed.len();
    for (b, i) in removed {
        f.remove_inst(b, i);
    }
    f.replace_uses_map(&replacements);

    // 3. Thread jumps through empty forwarding blocks (a block containing
    // only `jump T` and no φs, where T has no φs either — φ edges would
    // need remapping).
    let blocks: Vec<memoir_ir::BlockId> = f.blocks.ids().collect();
    for b in blocks {
        if b == f.entry {
            continue;
        }
        let insts = &f.blocks[b].insts;
        if insts.len() != 1 {
            continue;
        }
        let only = insts[0];
        let InstKind::Jump { target } = f.insts[only].kind else {
            continue;
        };
        if target == b {
            continue;
        }
        // The target must not have φs (threading would change incomings).
        let target_has_phi = f.blocks[target]
            .insts
            .iter()
            .any(|&i| f.insts[i].kind.is_phi());
        if target_has_phi {
            continue;
        }
        // Redirect all predecessors of b to target.
        let mut redirected = false;
        for p in f.blocks.ids().collect::<Vec<_>>() {
            if let Some(t) = f.terminator(p) {
                let mut kind = f.insts[t].kind.clone();
                let mut hit = false;
                kind.visit_successors_mut(|s| {
                    if *s == b {
                        *s = target;
                        hit = true;
                    }
                });
                if hit {
                    f.insts[t].kind = kind;
                    redirected = true;
                }
            }
        }
        if redirected {
            stats.blocks_threaded += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn same_target_branch_becomes_jump() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let next = b.block("next");
            let c = b.bool(true);
            b.branch(c, next, next);
            b.switch_to(next);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = simplify(&mut m);
        assert_eq!(stats.branches_to_jumps, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn single_incoming_phi_forwarded() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::I64);
            let next = b.block("next");
            let x = b.i64(5);
            b.jump(next);
            b.switch_to(next);
            let entry = b.func.entry;
            let p = b.phi(t, vec![(entry, x)]);
            b.returns(&[t]);
            b.ret(vec![p]);
        });
        let mut m = mb.finish();
        let stats = simplify(&mut m);
        assert_eq!(stats.phis_removed, 1);
        memoir_ir::verifier::assert_valid(&m);
        // The ret now returns the constant directly.
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Ret { values } = &f.insts[i].kind {
                assert!(f.value_const(values[0]).is_some());
            }
        }
    }

    #[test]
    fn forwarding_block_threaded() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let hop = b.block("hop");
            let end = b.block("end");
            b.jump(hop);
            b.switch_to(hop);
            b.jump(end);
            b.switch_to(end);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = simplify(&mut m);
        assert_eq!(stats.blocks_threaded, 1);
        // Entry now jumps straight to end.
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let t = f.terminator(f.entry).unwrap();
        match f.insts[t].kind {
            InstKind::Jump { target } => assert_eq!(target.raw(), 2),
            ref other => panic!("expected jump, got {other:?}"),
        }
    }
}
