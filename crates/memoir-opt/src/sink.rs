//! Sinking (code motion toward uses).
//!
//! Moves side-effect-free instructions into the block of their unique use
//! when that moves them under a branch (the conventional sink pass the
//! paper applies after dead element elimination to pull computation into
//! its newly conditional region, §V). In MEMOIR's SSA form even
//! collection reads are movable — collection values are immutable — which
//! is precisely the advantage §VII-D measures against LLVM's Sink pass
//! (where "may write"/"may reference" memory barriers dominate failures).

use memoir_analysis::cached::{CachedDefUse, CachedDomTree, CachedLoopDepths};
use memoir_ir::{BlockId, Effect, Form, InstId, InstKind, Module};
use passman::AnalysisManager;
use std::collections::HashMap;

/// Statistics from a sink run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Instructions moved into their use block.
    pub sunk: usize,
}

/// Runs sinking on every SSA-form function.
pub fn sink(m: &mut Module) -> SinkStats {
    sink_with(m, &mut AnalysisManager::new())
}

/// Runs sinking, sharing analyses through `am`: the dominator tree,
/// def-use chains, and loop depths are fetched from the cache and
/// invalidated only on iterations that actually moved an instruction.
pub fn sink_with(m: &mut Module, am: &mut AnalysisManager<Module>) -> SinkStats {
    let mut stats = SinkStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Ssa {
            continue;
        }
        loop {
            let n = run_function(m, fid, am);
            stats.sunk += n;
            if n == 0 {
                break;
            }
            am.invalidate(fid);
        }
    }
    stats
}

fn run_function(m: &mut Module, fid: memoir_ir::FuncId, am: &mut AnalysisManager<Module>) -> usize {
    let dt = am.get::<CachedDomTree>(m, fid);
    let du = am.get::<CachedDefUse>(m, fid);
    let depths = am.get::<CachedLoopDepths>(m, fid);
    let f = &m.funcs[fid];

    // Position of each instruction.
    let mut pos: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for (b, block) in f.blocks.iter() {
        for (i, &inst) in block.insts.iter().enumerate() {
            pos.insert(inst, (b, i));
        }
    }

    // Find single-use, sinkable instructions whose use lives in a
    // different, strictly-dominated block at no greater loop depth.
    let mut moves: Vec<(InstId, BlockId, BlockId)> = Vec::new();
    for (b, block) in f.blocks.iter() {
        for &inst in &block.insts {
            let kind = &f.insts[inst].kind;
            if kind.is_terminator() || kind.is_phi() {
                continue;
            }
            // Pure scalar ops; collection reads are movable in SSA form
            // because collection values are immutable. Field reads touch
            // the mutable heap and stay put.
            let movable = match kind.effect() {
                Effect::Pure => !matches!(
                    kind,
                    // Allocations are anchored (allocation identity).
                    InstKind::NewSeq { .. }
                        | InstKind::NewAssoc { .. }
                        | InstKind::Copy { .. }
                        | InstKind::CopyRange { .. }
                        | InstKind::Keys { .. }
                ),
                Effect::ReadMem => matches!(
                    kind,
                    InstKind::Read { .. } | InstKind::Size { .. } | InstKind::Has { .. }
                ),
                _ => false,
            };
            if !movable {
                continue;
            }
            let results = &f.insts[inst].results;
            if results.len() != 1 {
                continue;
            }
            let uses = du.uses(results[0]);
            if uses.len() != 1 {
                continue;
            }
            let user = uses[0].inst;
            // Never sink into a φ (the value is needed on the edge).
            if f.insts[user].kind.is_phi() {
                continue;
            }
            let Some(&(ub, _)) = pos.get(&user) else {
                continue;
            };
            if ub == b {
                continue;
            }
            if !dt.dominates(b, ub) {
                continue;
            }
            if depths.get(&ub).copied().unwrap_or(0) > depths.get(&b).copied().unwrap_or(0) {
                continue; // don't sink into deeper loops
            }
            moves.push((inst, b, ub));
        }
    }

    let count = moves.len();
    let f = &mut m.funcs[fid];
    for (inst, from, to) in moves {
        f.remove_inst(from, inst);
        // Insert before the first use (re-scan; earlier sinks shifted
        // positions) — conservatively before the first non-φ instruction
        // that uses it, or at the φ boundary.
        let use_pos = f.blocks[to]
            .insts
            .iter()
            .position(|&i| {
                let mut used = false;
                f.insts[i].kind.visit_operands(|&v| {
                    used |= f.insts[inst].results.contains(&v);
                });
                used
            })
            .unwrap_or(f.blocks[to].insts.len().saturating_sub(1));
        // Keep φs at the head.
        let phi_boundary = f.blocks[to]
            .insts
            .iter()
            .take_while(|&&i| f.insts[i].kind.is_phi())
            .count();
        let at = use_pos.max(phi_boundary);
        f.blocks[to].insts.insert(at, inst);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{ModuleBuilder, Type};

    /// A read computed unconditionally but used only on one branch sinks
    /// into that branch.
    #[test]
    fn read_sinks_into_branch() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let boolt = b.ty(Type::Bool);
            let seqt = b.types.seq_of(i64t);
            let s = b.param("s", seqt);
            let cond = b.param("c", boolt);
            let zero = b.index(0);
            let v = b.read(s, zero); // only used in `yes`
            let yes = b.block("yes");
            let no = b.block("no");
            b.branch(cond, yes, no);
            b.switch_to(yes);
            let one = b.i64(1);
            let r = b.add(v, one);
            b.returns(&[i64t]);
            b.ret(vec![r]);
            b.switch_to(no);
            let z = b.i64(0);
            b.ret(vec![z]);
        });
        let mut m = mb.finish();
        let stats = sink(&mut m);
        assert_eq!(stats.sunk, 1);
        memoir_ir::verifier::assert_valid(&m);
        // The read now lives in `yes`.
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let yes = memoir_ir::BlockId::from_raw(1);
        assert!(f.blocks[yes]
            .insts
            .iter()
            .any(|&i| matches!(f.insts[i].kind, InstKind::Read { .. })));
    }

    /// Values used in multiple blocks stay put.
    #[test]
    fn multi_use_not_sunk() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let boolt = b.ty(Type::Bool);
            let cond = b.param("c", boolt);
            let x = b.param("x", i64t);
            let v = b.add(x, x);
            let yes = b.block("yes");
            let no = b.block("no");
            b.branch(cond, yes, no);
            b.switch_to(yes);
            let one = b.i64(1);
            let r1 = b.add(v, one);
            b.returns(&[i64t]);
            b.ret(vec![r1]);
            b.switch_to(no);
            let two = b.i64(2);
            let r2 = b.add(v, two);
            b.ret(vec![r2]);
        });
        let mut m = mb.finish();
        let stats = sink(&mut m);
        assert_eq!(stats.sunk, 0);
        memoir_ir::verifier::assert_valid(&m);
    }

    /// Field reads touch the mutable heap: not sinkable across anything.
    #[test]
    fn field_read_not_sunk() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![memoir_ir::Field {
                    name: "x".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        let ref_ty = mb.module.types.ref_of(obj);
        mb.func("f", Form::Ssa, |b| {
            let boolt = b.ty(Type::Bool);
            let o = b.param("o", ref_ty);
            let cond = b.param("c", boolt);
            let v = b.field_read(o, obj, 0);
            let yes = b.block("yes");
            let no = b.block("no");
            b.branch(cond, yes, no);
            b.switch_to(yes);
            b.returns(&[i64t]);
            b.ret(vec![v]);
            b.switch_to(no);
            let z = b.i64(0);
            b.ret(vec![z]);
        });
        let mut m = mb.finish();
        let stats = sink(&mut m);
        assert_eq!(stats.sunk, 0);
    }
}
