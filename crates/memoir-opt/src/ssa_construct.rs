//! SSA construction: MUT form → MEMOIR SSA form (paper §VI, Fig. 5).
//!
//! Collections in mut form are storage cells named by their allocating
//! value (or a parameter). SSA construction treats each cell as a variable
//! of the classic SSA algorithm: φs are inserted on the iterated dominance
//! frontier of its assignment blocks, and a depth-first walk of the
//! dominator tree rewrites `mut.*` operations to their SSA counterparts
//! (Fig. 5), updating reaching definitions.
//!
//! Interprocedural flow: by-reference collection parameters become
//! by-value parameters whose final version is returned as an extra result
//! (the explicit form of the paper's ARGφ/RETφ). Call sites receive the
//! extra results as the new reaching definitions of the corresponding
//! argument variables.

use memoir_analysis::DomTree;
use memoir_ir::{
    BlockId, Callee, Form, FuncId, Function, InstId, InstKind, Module, Type, TypeId, ValueDef,
    ValueId,
};
use std::collections::{HashMap, HashSet};

/// Errors raised during construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructError {
    /// A collection flows into an extern declared to mutate its arguments;
    /// the SSA form cannot represent the unknown update.
    ExternMutatesCollection(String),
    /// The function was already in SSA form.
    AlreadySsa(String),
    /// The input mut form contains a φ over collection handles (only
    /// destructed programs have these); construction starts from frontend
    /// mut form, which has none.
    CollectionPhi(String),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::ExternMutatesCollection(n) => {
                write!(
                    f,
                    "extern `{n}` mutates a collection argument; cannot build SSA"
                )
            }
            ConstructError::AlreadySsa(n) => write!(f, "function `{n}` is already in SSA form"),
            ConstructError::CollectionPhi(n) => {
                write!(
                    f,
                    "function `{n}` has a φ over collection handles in mut form"
                )
            }
        }
    }
}

impl std::error::Error for ConstructError {}

/// Converts every mut-form function of the module to SSA form.
pub fn construct_ssa(m: &mut Module) -> Result<(), ConstructError> {
    // Pre-compute the signature extension of every function: by-ref
    // collection params become extra returned collections, in param order.
    let mut extra_rets: HashMap<FuncId, Vec<usize>> = HashMap::new();
    for (fid, f) in m.funcs.iter() {
        if f.form != Form::Mut {
            continue;
        }
        let extras: Vec<usize> = f
            .params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.by_ref && m.types.get(p.ty).is_collection())
            .map(|(i, _)| i)
            .collect();
        extra_rets.insert(fid, extras);
    }

    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Mut {
            continue;
        }
        let rebuilt = construct_function(m, fid, &extra_rets)?;
        m.funcs[fid] = rebuilt;
    }
    Ok(())
}

/// Whether an instruction (in mut form) assigns a new version to the
/// collection cells it names. Returns the cells.
fn assigned_cells(kind: &InstKind) -> Vec<ValueId> {
    kind.mutated_collections()
}

struct Builder<'m> {
    new_f: Function,
    types: &'m mut memoir_ir::TypeTable,
    /// old value → new value (scalars and collection versions alike).
    map: HashMap<ValueId, ValueId>,
    /// Copied scalar φs whose incoming values still hold *old* value ids;
    /// patched through `map` after renaming (back-edge operands are not
    /// yet mapped when the φ is visited in dominator order).
    phi_patches: Vec<InstId>,
}

impl Builder<'_> {
    fn lookup(&mut self, old_f: &Function, v: ValueId) -> ValueId {
        if let Some(&n) = self.map.get(&v) {
            return n;
        }
        // Constants are interned on demand.
        if let ValueDef::Const(c) = old_f.values[v].def {
            let ty = old_f.values[v].ty;
            let n = self.new_f.constant(c, ty);
            self.map.insert(v, n);
            return n;
        }
        panic!("value {v} used before mapped during SSA construction");
    }

    fn emit(&mut self, block: BlockId, kind: InstKind, tys: &[TypeId]) -> Vec<ValueId> {
        self.new_f.append_inst(block, kind, tys).1
    }
}

fn construct_function(
    m: &Module,
    fid: FuncId,
    extra_rets: &HashMap<FuncId, Vec<usize>>,
) -> Result<Function, ConstructError> {
    let old = &m.funcs[fid];
    if old.form == Form::Ssa {
        return Err(ConstructError::AlreadySsa(old.name.clone()));
    }
    let dt = DomTree::compute(old);
    let df = dt.dominance_frontiers(old);
    let preds = old.predecessors();

    // ------------------------------------------------------ find variables
    // A "cell" is a mut-form storage root: collection params, allocation
    // results, copy/split/keys results, collection call results, and
    // collection φ results (from re-construction after destruction).
    let mut cells: Vec<ValueId> = Vec::new();
    let mut is_cell: HashSet<ValueId> = HashSet::new();
    for (i, &pv) in old.param_values.iter().enumerate() {
        if m.types.get(old.params[i].ty).is_collection() {
            cells.push(pv);
            is_cell.insert(pv);
        }
    }
    for (_, iid) in old.inst_ids_in_order() {
        let inst = &old.insts[iid];
        for &r in &inst.results {
            if m.types.get(old.value_ty(r)).is_collection() {
                cells.push(r);
                is_cell.insert(r);
            }
        }
    }

    // Blocks assigning each cell (the def sites for φ insertion). The
    // allocation/param itself is a def in its defining block.
    let mut def_blocks: HashMap<ValueId, HashSet<BlockId>> = HashMap::new();
    for &c in &cells {
        let mut s = HashSet::new();
        match old.values[c].def {
            ValueDef::Param(_) => {
                s.insert(old.entry);
            }
            ValueDef::Inst(iid, _) => {
                if let Some(b) = block_of(old, iid) {
                    s.insert(b);
                }
            }
            ValueDef::Const(_) => {}
        }
        def_blocks.insert(c, s);
    }
    for (b, iid) in old.inst_ids_in_order() {
        for cell in assigned_cells(&old.insts[iid].kind) {
            let root = cell; // mut ops name cells directly in mut form
            def_blocks.entry(root).or_default().insert(b);
        }
        // Calls through by-ref arguments also assign the cell.
        if let InstKind::Call { callee, args } = &old.insts[iid].kind {
            if let Callee::Func(target) = callee {
                if let Some(extras) = extra_rets.get(target) {
                    for &pi in extras {
                        if let Some(&arg) = args.get(pi) {
                            if is_cell.contains(&arg) {
                                def_blocks.entry(arg).or_default().insert(b);
                            }
                        }
                    }
                }
            }
            if let Callee::Extern(eid) = callee {
                let e = &m.externs[*eid];
                if e.effects.writes_args || e.effects.opaque {
                    for &arg in args {
                        if m.types.get(old.value_ty(arg)).is_collection() {
                            return Err(ConstructError::ExternMutatesCollection(e.name.clone()));
                        }
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------- φ insertion
    // Iterated dominance frontier per cell, pruned to blocks where the
    // cell is live-in (pruned SSA — avoids φs with undefined operands for
    // cells allocated on one branch only).
    let liveness = memoir_analysis::Liveness::compute(old);
    let mut phis_at: HashMap<BlockId, Vec<ValueId>> = HashMap::new(); // block → cells
    for &c in &cells {
        let defs = &def_blocks[&c];
        if defs.len() < 2 {
            continue;
        }
        let mut work: Vec<BlockId> = defs.iter().copied().collect();
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &frontier in df.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                if placed.insert(frontier) {
                    if liveness
                        .live_in
                        .get(&frontier)
                        .is_some_and(|s| s.contains(&c))
                    {
                        phis_at.entry(frontier).or_default().push(c);
                    }
                    work.push(frontier);
                }
            }
        }
    }

    // -------------------------------------------------------- new function
    let mut types = m.types.clone();
    let mut b = Builder {
        new_f: Function::new(old.name.clone(), Form::Ssa),
        types: &mut types,
        map: HashMap::new(),
        phi_patches: Vec::new(),
    };
    // Blocks mirror the old CFG (entry pre-created by Function::new).
    b.new_f.blocks[b.new_f.entry].name = old.blocks[old.entry].name.clone();
    for (ob, oblock) in old.blocks.iter() {
        if ob != old.entry {
            let nb = b.new_f.add_block(oblock.name.clone().unwrap_or_default());
            debug_assert_eq!(nb.raw(), ob.raw());
        }
    }
    // Params: by-ref collections become by-value.
    for (i, p) in old.params.iter().enumerate() {
        let nv = b.new_f.add_param(p.name.clone(), p.ty, false);
        b.map.insert(old.param_values[i], nv);
        if let Some(name) = &old.values[old.param_values[i]].name {
            b.new_f.values[nv].name = Some(name.clone());
        }
    }
    // Return types: original + extra collection returns.
    let my_extras = extra_rets.get(&fid).cloned().unwrap_or_default();
    let mut ret_tys = old.ret_tys.clone();
    for &pi in &my_extras {
        ret_tys.push(old.params[pi].ty);
    }
    b.new_f.ret_tys = ret_tys;

    // Pre-create φ instructions (empty incomings; filled during rename).
    // φ value per (block, cell).
    let mut phi_values: HashMap<(BlockId, ValueId), ValueId> = HashMap::new();
    let mut phi_insts: HashMap<(BlockId, ValueId), InstId> = HashMap::new();
    for (&block, cells_here) in &phis_at {
        for &c in cells_here {
            let ty = old.value_ty(c);
            let (iid, res) =
                b.new_f
                    .insert_inst_at(block, 0, InstKind::Phi { incoming: vec![] }, &[ty]);
            phi_values.insert((block, c), res[0]);
            phi_insts.insert((block, c), iid);
            if let Some(n) = &old.values[c].name {
                b.new_f.values[res[0]].name = Some(n.clone());
            }
        }
    }

    // ------------------------------------------------------------- renaming
    // Reaching definition stack per cell.
    let mut stacks: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    for &c in &cells {
        stacks.insert(c, Vec::new());
    }
    // Param cells start defined at entry.
    for (i, &pv) in old.param_values.iter().enumerate() {
        if is_cell.contains(&pv) {
            let nv = b.map[&pv];
            stacks.get_mut(&pv).unwrap().push(nv);
            let _ = i;
        }
    }

    // Recursive rename over the dominator tree.
    rename_block(
        m,
        old,
        &dt,
        &preds,
        old.entry,
        &mut b,
        &mut stacks,
        &phis_at,
        &phi_values,
        &phi_insts,
        &is_cell,
        extra_rets,
        &my_extras,
    )?;

    // Patch copied scalar φs: their incomings still hold old ids (back-edge
    // operands are defined after the φ in dominator order).
    for iid in b.phi_patches.clone() {
        let mut kind = b.new_f.insts[iid].kind.clone();
        if let InstKind::Phi { incoming } = &mut kind {
            for (_, ov) in incoming.iter_mut() {
                *ov = b.lookup(old, *ov);
            }
        }
        b.new_f.insts[iid].kind = kind;
    }

    let mut new_f = b.new_f;
    new_f.form = Form::Ssa;
    // Prune φs whose block became unreachable artifacts? Not needed: CFG
    // copied verbatim.
    let _ = types; // the type table was only read (no new types needed)
    Ok(new_f)
}

fn block_of(f: &Function, inst: InstId) -> Option<BlockId> {
    f.blocks
        .iter()
        .find(|(_, b)| b.insts.contains(&inst))
        .map(|(id, _)| id)
}

#[allow(clippy::too_many_arguments)]
fn rename_block(
    m: &Module,
    old: &Function,
    dt: &DomTree,
    preds: &memoir_ir::IdMap<BlockId, Vec<BlockId>>,
    block: BlockId,
    b: &mut Builder<'_>,
    stacks: &mut HashMap<ValueId, Vec<ValueId>>,
    phis_at: &HashMap<BlockId, Vec<ValueId>>,
    phi_values: &HashMap<(BlockId, ValueId), ValueId>,
    phi_insts: &HashMap<(BlockId, ValueId), InstId>,
    is_cell: &HashSet<ValueId>,
    extra_rets: &HashMap<FuncId, Vec<usize>>,
    my_extras: &[usize],
) -> Result<(), ConstructError> {
    // Track pushes to pop on exit.
    let mut pushed: Vec<ValueId> = Vec::new();

    // φ defs at block head.
    if let Some(cells_here) = phis_at.get(&block) {
        for &c in cells_here {
            let v = phi_values[&(block, c)];
            stacks.get_mut(&c).unwrap().push(v);
            pushed.push(c);
        }
    }

    let cur =
        |stacks: &HashMap<ValueId, Vec<ValueId>>, b: &mut Builder<'_>, c: ValueId| -> ValueId {
            stacks
                .get(&c)
                .and_then(|s| s.last().copied())
                .unwrap_or_else(|| b.map[&c])
        };

    // Rewrite each instruction.
    for &iid in &old.blocks[block].insts.clone() {
        let inst = old.insts[iid].clone();
        let pushed_before = pushed.len();
        // Remap a (possibly cell) operand to its current version.
        macro_rules! op {
            ($v:expr) => {{
                let v = $v;
                if is_cell.contains(&v) {
                    cur(stacks, b, v)
                } else {
                    b.lookup(old, v)
                }
            }};
        }
        match inst.kind.clone() {
            // Fig. 5 rewrites: mut ops become SSA ops defining new versions.
            InstKind::MutWrite { c, idx, value } => {
                let (cc, ii, vv) = (op!(c), op!(idx), op!(value));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::Write {
                        c: cc,
                        idx: ii,
                        value: vv,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutRmw { c, idx, op, value } => {
                let (cc, ii, vv) = (op!(c), op!(idx), op!(value));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::Rmw {
                        c: cc,
                        idx: ii,
                        op,
                        value: vv,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutInsert { c, idx, value } => {
                let (cc, ii) = (op!(c), op!(idx));
                let vv = value.map(|v| op!(v));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::Insert {
                        c: cc,
                        idx: ii,
                        value: vv,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutInsertSeq { c, idx, src } => {
                let (cc, ii, ss) = (op!(c), op!(idx), op!(src));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::InsertSeq {
                        c: cc,
                        idx: ii,
                        src: ss,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutAppend { c, src } => {
                // Fig. 5: append(s, s2) → s' = INSERT(s, end, s2).
                let (cc, ss) = (op!(c), op!(src));
                let ty = old.value_ty(c);
                let idx_ty = b.types.intern(Type::Index);
                let endv = b.emit(block, InstKind::Size { c: cc }, &[idx_ty]);
                let r = b.emit(
                    block,
                    InstKind::InsertSeq {
                        c: cc,
                        idx: endv[0],
                        src: ss,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutRemove { c, idx } => {
                let (cc, ii) = (op!(c), op!(idx));
                let ty = old.value_ty(c);
                let r = b.emit(block, InstKind::Remove { c: cc, idx: ii }, &[ty]);
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutRemoveRange { c, from, to } => {
                let (cc, ff, tt) = (op!(c), op!(from), op!(to));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::RemoveRange {
                        c: cc,
                        from: ff,
                        to: tt,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutSwap { c, from, to, at } => {
                let (cc, ff, tt, aa) = (op!(c), op!(from), op!(to), op!(at));
                let ty = old.value_ty(c);
                let r = b.emit(
                    block,
                    InstKind::Swap {
                        c: cc,
                        from: ff,
                        to: tt,
                        at: aa,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::MutSwap2 {
                a,
                from,
                to,
                b: b2,
                at,
            } => {
                let (aa, ff, tt, bb, kk) = (op!(a), op!(from), op!(to), op!(b2), op!(at));
                let (ta, tb) = (old.value_ty(a), old.value_ty(b2));
                let r = b.emit(
                    block,
                    InstKind::Swap2 {
                        a: aa,
                        from: ff,
                        to: tt,
                        b: bb,
                        at: kk,
                    },
                    &[ta, tb],
                );
                stacks.get_mut(&a).unwrap().push(r[0]);
                pushed.push(a);
                stacks.get_mut(&b2).unwrap().push(r[1]);
                pushed.push(b2);
            }
            InstKind::MutSplit { c, from, to } => {
                // Fig. 5: s2 = split(s, i, j) → s2 = COPY(s, i, j);
                //                                s' = REMOVE(s, i, j).
                let (cc, ff, tt) = (op!(c), op!(from), op!(to));
                let ty = old.value_ty(c);
                let copy = b.emit(
                    block,
                    InstKind::CopyRange {
                        c: cc,
                        from: ff,
                        to: tt,
                    },
                    &[ty],
                );
                b.map.insert(inst.results[0], copy[0]);
                // The split result is itself a fresh cell; its versions
                // start at the copy.
                stacks.entry(inst.results[0]).or_default().push(copy[0]);
                pushed.push(inst.results[0]);
                let r = b.emit(
                    block,
                    InstKind::RemoveRange {
                        c: cc,
                        from: ff,
                        to: tt,
                    },
                    &[ty],
                );
                stacks.get_mut(&c).unwrap().push(r[0]);
                pushed.push(c);
            }
            InstKind::Call { callee, args } => {
                let new_args: Vec<ValueId> = args.iter().map(|&a| op!(a)).collect();
                // Determine result types: callee's (possibly extended)
                // rets. A callee converted earlier in this module pass is
                // already in SSA form with the extras folded into its
                // ret_tys; a still-mut callee (including self-recursion)
                // gets them appended here.
                let (ret_tys, extra): (Vec<TypeId>, Vec<usize>) = match callee {
                    Callee::Func(target) => {
                        let callee_f = &m.funcs[target];
                        let extras = extra_rets.get(&target).cloned().unwrap_or_default();
                        let mut tys = callee_f.ret_tys.clone();
                        if callee_f.form == Form::Mut {
                            for &pi in &extras {
                                tys.push(callee_f.params[pi].ty);
                            }
                        }
                        (tys, extras)
                    }
                    Callee::Extern(eid) => (m.externs[eid].ret_tys.clone(), vec![]),
                };
                let results = b.emit(
                    block,
                    InstKind::Call {
                        callee,
                        args: new_args,
                    },
                    &ret_tys,
                );
                // Original results map 1:1.
                for (i, &r) in inst.results.iter().enumerate() {
                    b.map.insert(r, results[i]);
                    if m.types.get(old.value_ty(r)).is_collection() {
                        stacks.entry(r).or_default().push(results[i]);
                        pushed.push(r);
                    }
                }
                // Extra results become new versions of the argument cells
                // (the RETφ of the by-ref argument).
                let base = inst.results.len();
                for (k, &pi) in extra.iter().enumerate() {
                    if let Some(&arg) = args.get(pi) {
                        if is_cell.contains(&arg) {
                            stacks.get_mut(&arg).unwrap().push(results[base + k]);
                            pushed.push(arg);
                        }
                    }
                }
            }
            InstKind::Ret { values } => {
                let mut new_vals: Vec<ValueId> = values.iter().map(|&v| op!(v)).collect();
                // Return the final version of each by-ref collection param.
                for &pi in my_extras {
                    let cell = old.param_values[pi];
                    new_vals.push(cur(stacks, b, cell));
                }
                b.emit(block, InstKind::Ret { values: new_vals }, &[]);
            }
            // Scalar φs: copy with *old* operand ids and patch after the
            // rename (back-edge operands are defined later in dominator
            // order). Collection φs cannot occur in frontend mut form.
            InstKind::Phi { incoming } => {
                let ty = old.value_ty(inst.results[0]);
                if m.types.get(ty).is_collection() {
                    return Err(ConstructError::CollectionPhi(old.name.clone()));
                }
                let pos = b.new_f.blocks[block]
                    .insts
                    .iter()
                    .take_while(|&&i| b.new_f.insts[i].kind.is_phi())
                    .count();
                let (iid, results) =
                    b.new_f
                        .insert_inst_at(block, pos, InstKind::Phi { incoming }, &[ty]);
                b.phi_patches.push(iid);
                b.map.insert(inst.results[0], results[0]);
                if let Some(n) = &old.values[inst.results[0]].name {
                    b.new_f.values[results[0]].name = Some(n.clone());
                }
            }
            // Pure/read ops and scalars: copy with operand remap.
            other => {
                let mut kind = other;
                kind.visit_operands_mut(|v| {
                    let nv = if is_cell.contains(v) {
                        cur(stacks, b, *v)
                    } else {
                        b.lookup(old, *v)
                    };
                    *v = nv;
                });
                let tys: Vec<TypeId> = inst.results.iter().map(|&r| old.value_ty(r)).collect();
                let results = b.emit(block, kind, &tys);
                for (i, &r) in inst.results.iter().enumerate() {
                    b.map.insert(r, results[i]);
                    if let Some(n) = &old.values[r].name {
                        b.new_f.values[results[i]].name = Some(n.clone());
                    }
                    if m.types.get(old.value_ty(r)).is_collection() {
                        // Fresh cell (copy/copy-range/keys results).
                        stacks.entry(r).or_default().push(results[i]);
                        pushed.push(r);
                    }
                }
            }
        }

        // Field arrays stay in heap form (DESIGN.md §6), so when a
        // collection that was read *out of a field* gets a new SSA
        // version — a rewritten mut op, or a by-ref call's RETφ — the
        // version must be stored back for later field reads to see it.
        for &c in &pushed[pushed_before..] {
            let ValueDef::Inst(def_inst, _) = old.values[c].def else {
                continue;
            };
            let InstKind::FieldRead { obj, obj_ty, field } = old.insts[def_inst].kind else {
                continue;
            };
            let value = cur(stacks, b, c);
            let obj = op!(obj);
            b.emit(
                block,
                InstKind::FieldWrite {
                    obj,
                    obj_ty,
                    field,
                    value,
                },
                &[],
            );
        }
    }

    // Fill φ operands of CFG successors.
    for succ in old.successors(block) {
        if let Some(cells_here) = phis_at.get(&succ) {
            for &c in cells_here {
                let iid = phi_insts[&(succ, c)];
                let val = cur(stacks, b, c);
                if let InstKind::Phi { incoming } = &mut b.new_f.insts[iid].kind {
                    incoming.push((block, val));
                }
            }
        }
    }
    let _ = preds;

    // Recurse into dominator-tree children.
    if let Some(children) = dt.children.get(&block).cloned() {
        for child in children {
            rename_block(
                m, old, dt, preds, child, b, stacks, phis_at, phi_values, phi_insts, is_cell,
                extra_rets, my_extras,
            )?;
        }
    }

    // Pop.
    for c in pushed.into_iter().rev() {
        stacks.get_mut(&c).unwrap().pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{CmpOp, ModuleBuilder};

    /// Straight-line writes become an SSA chain.
    #[test]
    fn straightline_writes_chain() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.index(1);
            let v1 = b.i64(10);
            let v2 = b.i64(20);
            b.mut_write(s, zero, v1);
            b.mut_write(s, one, v2);
            let r = b.read(s, one);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert_eq!(f.form, Form::Ssa);
        // Two writes, no mut ops, read uses the last version.
        let writes: Vec<_> = f
            .inst_ids_in_order()
            .into_iter()
            .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::Write { .. }))
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(f
            .inst_ids_in_order()
            .iter()
            .all(|(_, i)| !f.insts[*i].kind.is_mut_op()));
    }

    /// A write under a branch inserts a φ at the join.
    #[test]
    fn branch_write_inserts_phi() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let boolt = b.ty(Type::Bool);
            let cond = b.param("cond", boolt);
            let n = b.index(1);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v0 = b.i64(1);
            b.mut_write(s, zero, v0);
            let then_b = b.block("then");
            let join = b.block("join");
            b.branch(cond, then_b, join);
            b.switch_to(then_b);
            let v1 = b.i64(2);
            b.mut_write(s, zero, v1);
            b.jump(join);
            b.switch_to(join);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let phis = f
            .inst_ids_in_order()
            .into_iter()
            .filter(|(_, i)| f.insts[*i].kind.is_phi())
            .count();
        assert_eq!(phis, 1, "exactly one φ at the join");
    }

    /// Loop mutation inserts a loop-header φ (the μ-operation).
    #[test]
    fn loop_write_inserts_mu() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let count = b.param("count", idxt);
            let n = b.index(8);
            let s = b.new_seq(i64t, n);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, count);
            b.branch(done, exit, body);
            b.switch_to(body);
            let v = b.i64(7);
            b.mut_write(s, i, v);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        // Collection φ in the loop header: incoming from entry (the alloc)
        // and from the body (the write result).
        let mut coll_phis = 0;
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Phi { .. } = &f.insts[i].kind {
                let ty = f.value_ty(f.insts[i].results[0]);
                if m.types.get(ty).is_collection() {
                    coll_phis += 1;
                }
            }
        }
        assert_eq!(coll_phis, 1, "loop-header μ for the sequence");
    }

    /// By-ref params become value params plus an extra return (RETφ), and
    /// call sites thread the updated collection.
    #[test]
    fn byref_params_become_ret_phi() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let callee = mb.func("callee", Form::Mut, |b| {
            let s = b.param_ref("s", seqt);
            let zero = b.index(0);
            let v = b.i64(9);
            b.mut_write(s, zero, v);
            b.ret(vec![]);
        });
        mb.func("caller", Form::Mut, |b| {
            let n = b.index(1);
            let s = b.new_seq(i64t, n);
            b.call(Callee::Func(callee), vec![s], &[]);
            let zero = b.index(0);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let cf = &m.funcs[m.func_by_name("callee").unwrap()];
        assert_eq!(cf.ret_tys.len(), 1, "callee returns the updated sequence");
        assert!(!cf.params[0].by_ref);
        // Caller's read must consume the call result, not the original.
        let caller = &m.funcs[m.func_by_name("caller").unwrap()];
        let mut call_result = None;
        let mut read_operand = None;
        for (_, i) in caller.inst_ids_in_order() {
            match &caller.insts[i].kind {
                InstKind::Call { .. } => call_result = caller.insts[i].results.first().copied(),
                InstKind::Read { c, .. } => read_operand = Some(*c),
                _ => {}
            }
        }
        assert_eq!(read_operand, call_result);
    }

    /// Externs that mutate collection arguments cannot be represented in
    /// SSA form (the unknown update has no defining instruction).
    #[test]
    fn arg_writing_extern_rejected() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let ext = mb.module.add_extern(memoir_ir::ExternDecl {
            name: "scramble".into(),
            params: vec![seqt],
            ret_tys: vec![],
            effects: memoir_ir::ExternEffects {
                reads_args: true,
                writes_args: true,
                opaque: false,
            },
        });
        mb.func("f", Form::Mut, |b| {
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            b.call(Callee::Extern(ext), vec![s], &[]);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let err = construct_ssa(&mut m).unwrap_err();
        assert!(
            matches!(err, ConstructError::ExternMutatesCollection(_)),
            "{err}"
        );
    }

    /// Pure-reader externs are fine: the collection version is unchanged
    /// across the call.
    #[test]
    fn pure_extern_allowed() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let ext = mb.module.add_extern(memoir_ir::ExternDecl {
            name: "checksum".into(),
            params: vec![seqt],
            ret_tys: vec![i64t],
            effects: memoir_ir::ExternEffects::pure_reader(),
        });
        mb.func("f", Form::Mut, |b| {
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            b.mut_write(s, zero, v);
            let r = b.call(Callee::Extern(ext), vec![s], &[i64t]);
            b.returns(&[i64t]);
            b.ret(vec![r[0]]);
        });
        let mut m = mb.finish();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
    }

    /// Differential: mut-form and constructed SSA compute identical
    /// results (and the SSA census grows while allocations stay equal —
    /// Table III's shape).
    #[test]
    fn construction_preserves_semantics() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let count = b.param("count", idxt);
            let n = b.index(0);
            let s = b.new_seq(i64t, n);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, count);
            b.branch(done, exit, body);
            b.switch_to(body);
            let iv = b.cast(Type::I64, i);
            let sz = b.size(s);
            b.mut_insert(s, sz, Some(iv));
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            // Sum the elements.
            let sum0 = b.i64(0);
            let h2 = b.block("h2");
            let b2 = b.block("b2");
            let e2 = b.block("e2");
            b.jump(h2);
            b.switch_to(h2);
            let j = b.phi_placeholder(idxt);
            let acc = b.phi_placeholder(i64t);
            b.add_phi_incoming(j, exit, zero);
            b.add_phi_incoming(acc, exit, sum0);
            let sz2 = b.size(s);
            let done2 = b.cmp(CmpOp::Ge, j, sz2);
            b.branch(done2, e2, b2);
            b.switch_to(b2);
            let v = b.read(s, j);
            let acc2 = b.add(acc, v);
            let jn = b.add(j, one);
            let bb2 = b.current_block();
            b.add_phi_incoming(j, bb2, jn);
            b.add_phi_incoming(acc, bb2, acc2);
            b.jump(h2);
            b.switch_to(e2);
            b.returns(&[i64t]);
            b.ret(vec![acc]);
        });
        let m_mut = mb.finish();
        memoir_ir::verifier::assert_valid(&m_mut);
        let mut m_ssa = m_mut.clone();
        construct_ssa(&mut m_ssa).unwrap();
        memoir_ir::verifier::assert_valid(&m_ssa);

        use memoir_interp::{Interp, Value};
        for count in [0u64, 1, 5, 17] {
            let args = vec![Value::Int(Type::Index, count as i64)];
            let mut i1 = Interp::new(&m_mut);
            let r1 = i1.run_by_name("main", args.clone()).unwrap();
            let mut i2 = Interp::new(&m_ssa);
            let r2 = i2.run_by_name("main", args).unwrap();
            assert_eq!(r1, r2, "count={count}");
        }
        // Census: SSA variables strictly exceed source allocations.
        let census_mut = m_mut.collection_census();
        let census_ssa = m_ssa.collection_census();
        assert_eq!(census_mut.allocations, census_ssa.allocations);
        assert!(census_ssa.ssa_variables > census_mut.ssa_variables);
    }
}
