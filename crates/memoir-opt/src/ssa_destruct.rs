//! SSA destruction: MEMOIR SSA form → MUT form (paper §VI, Alg. 3).
//!
//! Destruction coalesces collection SSA versions back onto storage cells,
//! replacing functional updates with in-place mutations. The central
//! concern — exactly as the paper stresses — is **avoiding spurious
//! copies**: a functional update `S₁ = WRITE(S₀, …)` may mutate `S₀`'s
//! storage in place *iff `S₀` is dead after the use*; otherwise a copy is
//! materialized first (Alg. 3's `COPY` helper). `USEφ`s are folded away.
//! φs over collections remain as φs over storage *handles*, which is the
//! coalescing representation this implementation uses in place of Alg. 3's
//! sequence views (see DESIGN.md §6).
//!
//! Interprocedurally, destruction re-materializes the MUT calling
//! convention: an SSA function that returns an updated version of a
//! parameter's storage chain (the explicit RETφ) is rewritten to take that
//! parameter **by reference** and the extra return is dropped. Recursive
//! functions are handled with an optimistic fixed point: assume every
//! structural ret→param alias holds, rebuild, and retract assumptions
//! invalidated by an inserted copy.

use memoir_analysis::{CallGraph, Liveness};
use memoir_ir::{
    BlockId, Callee, Form, FuncId, Function, InstId, InstKind, Module, TypeId, ValueDef, ValueId,
};
use std::collections::HashMap;

/// Statistics reported by destruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DestructStats {
    /// Copies materialized because an operand was live after a consuming
    /// use. Zero for programs whose SSA chains are linear (Table III's
    /// "no spurious copies from SSA construction" claim).
    pub copies_inserted: usize,
    /// Functions whose signature was rewritten back to by-reference.
    pub byref_params_restored: usize,
}

/// Destructs every SSA-form function of the module back to mut form.
pub fn destruct_ssa(m: &mut Module) -> DestructStats {
    let cg = CallGraph::compute(m);
    let mut stats = DestructStats::default();

    // Per function: ret position → aliased param index (the by-ref
    // restoration plan). Built optimistically per SCC and pruned.
    let mut aliases: HashMap<FuncId, Vec<Option<usize>>> = HashMap::new();

    // Functions not reached by the SCC enumeration (none) default to no
    // aliases.
    for comp in cg.sccs.clone() {
        // Optimistic candidates from the SSA structure.
        for &fid in &comp {
            if m.funcs[fid].form == Form::Ssa {
                let cand = candidate_aliases(m, fid, &aliases, &comp);
                aliases.insert(fid, cand);
            } else {
                aliases.insert(fid, vec![None; m.funcs[fid].ret_tys.len()]);
            }
        }
        // Prune to a fixed point: rebuild bodies, retract violated
        // assumptions.
        loop {
            let mut violated: Vec<(FuncId, usize)> = Vec::new();
            for &fid in &comp {
                if m.funcs[fid].form != Form::Ssa {
                    continue;
                }
                let (_, bad) = build_destructed(m, fid, &aliases);
                violated.extend(bad.into_iter().map(|r| (fid, r)));
            }
            if violated.is_empty() {
                break;
            }
            for (fid, r) in violated {
                aliases.get_mut(&fid).unwrap()[r] = None;
            }
        }
        // Commit.
        for &fid in &comp {
            if m.funcs[fid].form != Form::Ssa {
                continue;
            }
            let (mut g, bad) = build_destructed(m, fid, &aliases);
            debug_assert!(bad.is_empty());
            g.form = Form::Mut;
            stats.copies_inserted += count_copies(&g) - count_copies(&m.funcs[fid]);
            if g.params.iter().any(|p| p.by_ref) {
                stats.byref_params_restored += 1;
            }
            m.funcs[fid] = g;
        }
    }
    stats
}

fn count_copies(f: &Function) -> usize {
    f.inst_ids_in_order()
        .iter()
        .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::Copy { .. }))
        .count()
}

/// Structural ret→param alias candidates: trace each returned collection
/// back through the SSA update chain; if every path roots at the same
/// parameter, the return is a candidate for by-ref restoration.
fn candidate_aliases(
    m: &Module,
    fid: FuncId,
    committed: &HashMap<FuncId, Vec<Option<usize>>>,
    scc: &[FuncId],
) -> Vec<Option<usize>> {
    let f = &m.funcs[fid];
    let nrets = f.ret_tys.len();
    let mut out: Vec<Option<usize>> = vec![None; nrets];

    // Gather returned values per position across all ret sites; a position
    // is a candidate only if all sites agree on the rooted param.
    let mut per_pos: Vec<Vec<ValueId>> = vec![Vec::new(); nrets];
    for (_, i) in f.inst_ids_in_order() {
        if let InstKind::Ret { values } = &f.insts[i].kind {
            for (k, &v) in values.iter().enumerate() {
                per_pos[k].push(v);
            }
        }
    }
    for (k, vals) in per_pos.iter().enumerate() {
        if vals.is_empty() {
            continue;
        }
        let mut root: Option<usize> = None;
        let mut ok = true;
        for &v in vals {
            match trace_root(m, fid, v, committed, scc, &mut Vec::new()) {
                Some(p) => match root {
                    None => root = Some(p),
                    Some(r) if r == p => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // A param may back at most one return position.
            if let Some(p) = root {
                if !out.contains(&Some(p)) {
                    out[k] = Some(p);
                }
            }
        }
    }
    out
}

/// Traces the storage chain of `v` back to a parameter index, following
/// SSA updates, φs, USEφs, and calls whose returns alias their params
/// (optimistically for in-SCC callees). `visiting` cuts φ cycles.
fn trace_root(
    m: &Module,
    fid: FuncId,
    v: ValueId,
    committed: &HashMap<FuncId, Vec<Option<usize>>>,
    scc: &[FuncId],
    visiting: &mut Vec<ValueId>,
) -> Option<usize> {
    let f = &m.funcs[fid];
    if visiting.contains(&v) {
        // φ cycle: no constraint from this path; the caller treats a
        // cyclic path as agreeing with the others. Encoded as a special
        // marker via recursion — here we simply return the result of the
        // other incomings by signaling "agnostic" with a sentinel. We use
        // usize::MAX as the agnostic marker.
        return Some(usize::MAX);
    }
    match &f.values[v].def {
        ValueDef::Param(i) => Some(*i as usize),
        ValueDef::Const(_) => None,
        ValueDef::Inst(iid, ri) => {
            let inst = &f.insts[*iid];
            match &inst.kind {
                InstKind::Write { c, .. }
                | InstKind::Rmw { c, .. }
                | InstKind::Insert { c, .. }
                | InstKind::InsertSeq { c, .. }
                | InstKind::Remove { c, .. }
                | InstKind::RemoveRange { c, .. }
                | InstKind::Swap { c, .. }
                | InstKind::UsePhi { c } => {
                    visiting.push(v);
                    let r = trace_root(m, fid, *c, committed, scc, visiting);
                    visiting.pop();
                    r
                }
                InstKind::Swap2 { a, b, .. } => {
                    let src = if *ri == 0 { *a } else { *b };
                    visiting.push(v);
                    let r = trace_root(m, fid, src, committed, scc, visiting);
                    visiting.pop();
                    r
                }
                InstKind::Phi { incoming } => {
                    visiting.push(v);
                    let mut root: Option<usize> = None;
                    let mut ok = true;
                    for (_, inc) in incoming {
                        match trace_root(m, fid, *inc, committed, scc, visiting) {
                            Some(p) if p == usize::MAX => {}
                            Some(p) => match root {
                                None => root = Some(p),
                                Some(r) if r == p => {}
                                _ => {
                                    ok = false;
                                    break;
                                }
                            },
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    visiting.pop();
                    if ok {
                        root.or(Some(usize::MAX))
                    } else {
                        None
                    }
                }
                InstKind::Call { callee, args } => {
                    let Callee::Func(target) = callee else {
                        return None;
                    };
                    // Which param does the callee's ret `ri` alias?
                    let callee_alias: Option<usize> = if scc.contains(target) {
                        committed
                            .get(target)
                            .and_then(|a| a.get(*ri as usize).copied().flatten())
                    } else {
                        committed
                            .get(target)
                            .and_then(|a| a.get(*ri as usize).copied().flatten())
                    };
                    // During candidate computation for the first SCC
                    // member, in-SCC callees may be missing: assume the
                    // structural candidate optimistically by tracing the
                    // callee once without recursion (self-calls: assume
                    // ret k aliases the param that position-k extra ret
                    // would — approximated by direct per-position trace of
                    // the callee's own ret chain, cycle-cut by `visiting`).
                    let callee_alias = match callee_alias {
                        Some(p) => Some(p),
                        None if *target == fid => {
                            // Self call during candidate computation: the
                            // position traces to whatever this very
                            // analysis decides; treat as agnostic.
                            return Some(usize::MAX);
                        }
                        None => None,
                    };
                    let p = callee_alias?;
                    let arg = *args.get(p)?;
                    visiting.push(v);
                    let r = trace_root(m, fid, arg, committed, scc, visiting);
                    visiting.pop();
                    r
                }
                _ => None,
            }
        }
    }
}

/// Builds the destructed body of `fid` under the current alias plan.
/// Returns the new function plus the list of ret positions whose alias
/// assumption was violated (a copy broke the chain).
fn build_destructed(
    m: &Module,
    fid: FuncId,
    aliases: &HashMap<FuncId, Vec<Option<usize>>>,
) -> (Function, Vec<usize>) {
    let old = &m.funcs[fid];
    let liveness = Liveness::compute(old);
    let dt = memoir_analysis::DomTree::compute(old);
    let my_aliases = aliases.get(&fid).cloned().unwrap_or_default();

    let mut g = Function::new(old.name.clone(), Form::Mut);
    g.blocks[g.entry].name = old.blocks[old.entry].name.clone();
    // Only dominator-tree-reachable blocks are translated (and only they
    // get a clone): materializing unreachable blocks would leave empty,
    // terminator-less husks behind, which downstream lowering rejects
    // (found by `memoir-fuzz`, crash-7-193 — constprop branch folding
    // strands the dropped arm).
    let reachable: std::collections::HashSet<BlockId> =
        dt.preorder(old.entry).into_iter().collect();
    // Old block → new block. The old entry need not be block 0 (DEE's
    // entry guard prepends blocks), so the mapping is explicit.
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    bmap.insert(old.entry, g.entry);
    for (ob, oblock) in old.blocks.iter() {
        if ob != old.entry && reachable.contains(&ob) {
            let nb = g.add_block(oblock.name.clone().unwrap_or_default());
            bmap.insert(ob, nb);
        }
    }
    // Params: aliased ones become by-ref.
    let by_ref_params: Vec<usize> = my_aliases.iter().flatten().copied().collect();
    for (i, p) in old.params.iter().enumerate() {
        // Note: the old function's param *values* need not be the first
        // value ids (specialized clones add params late); the explicit
        // map below covers them.
        let _ = g.add_param(p.name.clone(), p.ty, by_ref_params.contains(&i));
    }
    // Keep value names aligned where possible.
    for (i, &pv) in old.param_values.iter().enumerate() {
        g.values[g.param_values[i]].name = old.values[pv].name.clone();
    }
    // Returns: drop aliased positions.
    g.ret_tys = old
        .ret_tys
        .iter()
        .enumerate()
        .filter(|(k, _)| my_aliases.get(*k).copied().flatten().is_none())
        .map(|(_, &t)| t)
        .collect();

    struct Ctx {
        /// old value → new value (scalars; collections map to handles).
        map: HashMap<ValueId, ValueId>,
        /// collection SSA value → handle value in the new function.
        repr: HashMap<ValueId, ValueId>,
        copies: usize,
        phi_patch: Vec<(InstId, Vec<(BlockId, ValueId)>)>,
    }
    let mut ctx = Ctx {
        map: HashMap::new(),
        repr: HashMap::new(),
        copies: 0,
        phi_patch: Vec::new(),
    };
    for (i, &pv) in old.param_values.iter().enumerate() {
        ctx.map.insert(pv, g.param_values[i]);
        if m.types.get(old.params[i].ty).is_collection() {
            ctx.repr.insert(pv, g.param_values[i]);
        }
    }

    let is_coll = |v: ValueId| m.types.get(old.value_ty(v)).is_collection();

    // Process blocks in dominator-tree preorder so operand reprs exist.
    for block in dt.preorder(old.entry) {
        let nblock = bmap[&block];
        let insts = old.blocks[block].insts.clone();
        for (pos, &iid) in insts.iter().enumerate() {
            let inst = old.insts[iid].clone();
            // Resolve an operand: collections via repr, scalars via map,
            // constants interned on demand.
            macro_rules! op {
                ($v:expr) => {{
                    let v: ValueId = $v;
                    if let Some(&h) = ctx.repr.get(&v) {
                        h
                    } else if let Some(&n) = ctx.map.get(&v) {
                        n
                    } else if let ValueDef::Const(c) = old.values[v].def {
                        let ty = old.values[v].ty;
                        let n = g.constant(c, ty);
                        ctx.map.insert(v, n);
                        n
                    } else {
                        panic!("operand {v} unresolved during destruction")
                    }
                }};
            }
            // Get the handle for a consumed collection operand, copying if
            // the SSA value is still live after this instruction (Alg. 3's
            // COPY insertion).
            macro_rules! consume {
                ($v:expr) => {{
                    let v: ValueId = $v;
                    let h = op!(v);
                    if liveness.live_after(old, block, pos, v) {
                        let ty = old.value_ty(v);
                        let copy = g.append_inst(nblock, InstKind::Copy { c: h }, &[ty]).1[0];
                        ctx.copies += 1;
                        copy
                    } else {
                        h
                    }
                }};
            }

            match inst.kind.clone() {
                InstKind::Write { c, idx, value } => {
                    let h = consume!(c);
                    let (ii, vv) = (op!(idx), op!(value));
                    g.append_inst(
                        nblock,
                        InstKind::MutWrite {
                            c: h,
                            idx: ii,
                            value: vv,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Rmw { c, idx, op, value } => {
                    let h = consume!(c);
                    let (ii, vv) = (op!(idx), op!(value));
                    g.append_inst(
                        nblock,
                        InstKind::MutRmw {
                            c: h,
                            idx: ii,
                            op,
                            value: vv,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Insert { c, idx, value } => {
                    let h = consume!(c);
                    let ii = op!(idx);
                    let vv = value.map(|v| op!(v));
                    g.append_inst(
                        nblock,
                        InstKind::MutInsert {
                            c: h,
                            idx: ii,
                            value: vv,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::InsertSeq { c, idx, src } => {
                    let h = consume!(c);
                    let (ii, ss) = (op!(idx), op!(src));
                    g.append_inst(
                        nblock,
                        InstKind::MutInsertSeq {
                            c: h,
                            idx: ii,
                            src: ss,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Remove { c, idx } => {
                    let h = consume!(c);
                    let ii = op!(idx);
                    g.append_inst(nblock, InstKind::MutRemove { c: h, idx: ii }, &[]);
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::RemoveRange { c, from, to } => {
                    let h = consume!(c);
                    let (ff, tt) = (op!(from), op!(to));
                    g.append_inst(
                        nblock,
                        InstKind::MutRemoveRange {
                            c: h,
                            from: ff,
                            to: tt,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Swap { c, from, to, at } => {
                    let h = consume!(c);
                    let (ff, tt, aa) = (op!(from), op!(to), op!(at));
                    g.append_inst(
                        nblock,
                        InstKind::MutSwap {
                            c: h,
                            from: ff,
                            to: tt,
                            at: aa,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Swap2 { a, from, to, b, at } => {
                    let ha = consume!(a);
                    let hb = consume!(b);
                    let (ff, tt, aa) = (op!(from), op!(to), op!(at));
                    g.append_inst(
                        nblock,
                        InstKind::MutSwap2 {
                            a: ha,
                            from: ff,
                            to: tt,
                            b: hb,
                            at: aa,
                        },
                        &[],
                    );
                    ctx.repr.insert(inst.results[0], ha);
                    ctx.repr.insert(inst.results[1], hb);
                }
                InstKind::UsePhi { c } => {
                    // Copy-folding: the USEφ disappears.
                    let h = op!(c);
                    ctx.repr.insert(inst.results[0], h);
                }
                InstKind::Phi { incoming } => {
                    let ty = old.value_ty(inst.results[0]);
                    let pos_in_block = g.blocks[nblock]
                        .insts
                        .iter()
                        .take_while(|&&i| g.insts[i].kind.is_phi())
                        .count();
                    let (nid, res) = g.insert_inst_at(
                        nblock,
                        pos_in_block,
                        InstKind::Phi { incoming: vec![] },
                        &[ty],
                    );
                    ctx.phi_patch.push((nid, incoming.clone()));
                    if is_coll(inst.results[0]) {
                        ctx.repr.insert(inst.results[0], res[0]);
                    } else {
                        ctx.map.insert(inst.results[0], res[0]);
                    }
                    g.values[res[0]].name = old.values[inst.results[0]].name.clone();
                }
                InstKind::Call { callee, args } => {
                    // Map args; consuming semantics for args bound to
                    // by-ref (aliased) params of the callee.
                    let callee_aliases: Vec<Option<usize>> = match callee {
                        Callee::Func(t) => aliases.get(&t).cloned().unwrap_or_default(),
                        Callee::Extern(_) => Vec::new(),
                    };
                    let byref_positions: Vec<usize> =
                        callee_aliases.iter().flatten().copied().collect();
                    let mut new_args = Vec::with_capacity(args.len());
                    for (k, &a) in args.iter().enumerate() {
                        if byref_positions.contains(&k) && is_coll(a) {
                            new_args.push(consume!(a));
                        } else {
                            new_args.push(op!(a));
                        }
                    }
                    // Result layout: callee's rets minus dropped aliases.
                    // A callee already committed to mut form (earlier SCC)
                    // has the drop folded into its ret_tys.
                    let kept_tys: Vec<TypeId> = match callee {
                        Callee::Func(t) if m.funcs[t].form == Form::Ssa => m.funcs[t]
                            .ret_tys
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| callee_aliases.get(*k).copied().flatten().is_none())
                            .map(|(_, &ty)| ty)
                            .collect(),
                        Callee::Func(t) => m.funcs[t].ret_tys.clone(),
                        Callee::Extern(e) => m.externs[e].ret_tys.clone(),
                    };
                    let res = g
                        .append_inst(
                            nblock,
                            InstKind::Call {
                                callee,
                                args: new_args.clone(),
                            },
                            &kept_tys,
                        )
                        .1;
                    // Bind old results: dropped ones alias the argument
                    // handle; kept ones bind in order.
                    let mut kept_iter = res.into_iter();
                    for (k, &r) in inst.results.iter().enumerate() {
                        match callee_aliases.get(k).copied().flatten() {
                            Some(p) => {
                                let h = new_args[p];
                                ctx.repr.insert(r, h);
                            }
                            None => {
                                let nv = kept_iter.next().expect("result arity");
                                if is_coll(r) {
                                    ctx.repr.insert(r, nv);
                                } else {
                                    ctx.map.insert(r, nv);
                                }
                            }
                        }
                    }
                }
                InstKind::Ret { values } => {
                    let kept: Vec<ValueId> = values
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| my_aliases.get(*k).copied().flatten().is_none())
                        .map(|(_, &v)| op!(v))
                        .collect();
                    g.append_inst(nblock, InstKind::Ret { values: kept }, &[]);
                }
                mut other => {
                    other.visit_operands_mut(|v| {
                        let nv: ValueId = op!(*v);
                        *v = nv;
                    });
                    other.visit_successors_mut(|s| {
                        *s = bmap[s];
                    });
                    let tys: Vec<TypeId> = inst.results.iter().map(|&r| old.value_ty(r)).collect();
                    let res = g.append_inst(nblock, other, &tys).1;
                    for (i, &r) in inst.results.iter().enumerate() {
                        g.values[res[i]].name = old.values[r].name.clone();
                        if is_coll(r) {
                            ctx.repr.insert(r, res[i]);
                        } else {
                            ctx.map.insert(r, res[i]);
                        }
                    }
                }
            }
        }
    }

    // Patch φ incomings (values through repr/map, blocks through bmap).
    // Incomings from *unreachable* predecessors are dropped, not
    // resolved: translation walks the dominator tree, so their values
    // were never mapped — and the verifier's invariant ("one incoming
    // per structural predecessor") deliberately keeps such incomings in
    // the SSA function after constprop branch folding makes an arm
    // unreachable (found by `memoir-fuzz`, crash-7-193).
    for (nid, incoming) in std::mem::take(&mut ctx.phi_patch) {
        let mapped: Vec<(BlockId, ValueId)> = incoming
            .into_iter()
            .filter(|(b, _)| reachable.contains(b))
            .map(|(b, v)| {
                let b = bmap[&b];
                let nv = if let Some(&h) = ctx.repr.get(&v) {
                    h
                } else if let Some(&n) = ctx.map.get(&v) {
                    n
                } else if let ValueDef::Const(c) = old.values[v].def {
                    g.constant(c, old.values[v].ty)
                } else {
                    panic!("phi incoming {v} unresolved during destruction")
                };
                (b, nv)
            })
            .collect();
        if let InstKind::Phi { incoming } = &mut g.insts[nid].kind {
            *incoming = mapped;
        }
    }

    // Validate the alias plan: at every ret site, the value returned at an
    // aliased position must be represented by that parameter's handle.
    let mut violated = Vec::new();
    for (_, i) in old.inst_ids_in_order() {
        if let InstKind::Ret { values } = &old.insts[i].kind {
            for (k, &v) in values.iter().enumerate() {
                if let Some(p) = my_aliases.get(k).copied().flatten() {
                    let want = g.param_values[p];
                    let got = resolve_handle(&g, &ctx.repr, v);
                    if got != Some(want) && !violated.contains(&k) {
                        violated.push(k);
                    }
                }
            }
        }
    }
    (g, violated)
}

/// Resolves the final handle of an SSA value, looking through handle φs
/// whose incomings all agree.
fn resolve_handle(g: &Function, repr: &HashMap<ValueId, ValueId>, v: ValueId) -> Option<ValueId> {
    let mut h = *repr.get(&v)?;
    // Look through self-agreeing φs (bounded walk).
    for _ in 0..8 {
        let ValueDef::Inst(iid, _) = g.values[h].def else {
            break;
        };
        let InstKind::Phi { incoming } = &g.insts[iid].kind else {
            break;
        };
        let mut agree: Option<ValueId> = None;
        let mut all = true;
        for (_, inc) in incoming {
            if *inc == h {
                continue; // self edge through the loop
            }
            match agree {
                None => agree = Some(*inc),
                Some(a) if a == *inc => {}
                _ => {
                    all = false;
                    break;
                }
            }
        }
        match (all, agree) {
            (true, Some(a)) => h = a,
            _ => break,
        }
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa_construct::construct_ssa;
    use memoir_interp::{Interp, Value};
    use memoir_ir::{CmpOp, ModuleBuilder, Type};

    /// The flagship invariant: construct → destruct introduces **zero**
    /// copies on a linear update chain and preserves semantics.
    #[test]
    fn round_trip_no_spurious_copies() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            for k in 0..4 {
                let ik = b.index(k);
                let vk = b.i64((k * k) as i64);
                b.mut_write(s, ik, vk);
            }
            let zero = b.index(0);
            let two = b.index(2);
            b.mut_swap(s, zero, two, two);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m0 = mb.finish();
        let mut m = m0.clone();
        construct_ssa(&mut m).unwrap();
        let stats = destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(stats.copies_inserted, 0, "no spurious copies");
        assert!(m.all_in_form(Form::Mut));

        let mut i0 = Interp::new(&m0);
        let r0 = i0.run_by_name("main", vec![]).unwrap();
        let mut i1 = Interp::new(&m);
        let r1 = i1.run_by_name("main", vec![]).unwrap();
        assert_eq!(r0, r1);
        // Runtime copy count must also be zero.
        assert_eq!(i1.stats.collection_copies, 0);
    }

    /// A fan-out use (two writes from one version) requires exactly one
    /// copy — no more, no fewer.
    #[test]
    fn fanout_requires_one_copy() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(1);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v0 = b.i64(0);
            let s1 = b.write(s0, zero, v0);
            let va = b.i64(10);
            let vb = b.i64(20);
            let sa = b.write(s1, zero, va); // s1 live after (used below)
            let sb = b.write(s1, zero, vb);
            let a = b.read(sa, zero);
            let c = b.read(sb, zero);
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let mut m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let m_ssa = m.clone();
        let stats = destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(stats.copies_inserted, 1);

        let mut i0 = Interp::new(&m_ssa);
        let r0 = i0.run_by_name("main", vec![]).unwrap();
        let mut i1 = Interp::new(&m);
        let r1 = i1.run_by_name("main", vec![]).unwrap();
        assert_eq!(r0, r1);
        assert_eq!(r1, vec![Value::Int(Type::I64, 30)]);
        assert_eq!(i1.stats.collection_copies, 1);
    }

    /// A φ whose predecessor arm becomes unreachable after constprop
    /// branch folding: the arm is still a *structural* predecessor — so
    /// the SSA verifier's "one incoming per predecessor" invariant keeps
    /// its incoming — but destruction only translates dominator-tree
    /// blocks, and it used to panic trying to resolve the untranslated
    /// value (found by `memoir-fuzz`, crash-7-193). The incoming must
    /// simply be dropped.
    #[test]
    fn phi_incoming_from_unreachable_arm_is_dropped() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let yes = b.block("yes");
            let no = b.block("no");
            let join = b.block("join");
            let cond = b.bool(true);
            b.branch(cond, yes, no);
            b.switch_to(yes);
            let a = b.add(x, x); // param-dependent: constprop can't fold it
            b.jump(join);
            b.switch_to(no);
            let c = b.add(x, x);
            b.jump(join);
            b.switch_to(join);
            let p = b.phi(i64t, vec![(yes, a), (no, c)]);
            b.returns(&[i64t]);
            b.ret(vec![p]);
        });
        let mut m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let stats = crate::constprop::constprop(&mut m);
        assert_eq!(stats.branches_folded, 1);
        memoir_ir::verifier::assert_valid(&m);
        destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);
        // The stranded arm is not materialized — no empty husk blocks
        // for lowering to choke on.
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert_eq!(f.blocks.iter().count(), 3, "entry, live arm, join");
        let mut i = Interp::new(&m);
        let r = i.run_by_name("f", vec![Value::Int(Type::I64, 21)]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 42)]);
    }

    /// Loop round trip: construct then destruct a loop that fills and sums
    /// a sequence; semantics and zero copies.
    #[test]
    fn loop_round_trip() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let count = b.param("count", idxt);
            let zero_i = b.index(0);
            let s = b.new_seq(i64t, zero_i);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero_i);
            let done = b.cmp(CmpOp::Ge, i, count);
            b.branch(done, exit, body);
            b.switch_to(body);
            let iv = b.cast(Type::I64, i);
            let sz = b.size(s);
            b.mut_insert(s, sz, Some(iv));
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            let szf = b.size(s);
            b.returns(&[idxt]);
            b.ret(vec![szf]);
        });
        let m0 = mb.finish();
        let mut m = m0.clone();
        construct_ssa(&mut m).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let stats = destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(stats.copies_inserted, 0);
        for count in [0i64, 3, 9] {
            let args = vec![Value::Int(Type::Index, count)];
            let mut i0 = Interp::new(&m0);
            let r0 = i0.run_by_name("main", args.clone()).unwrap();
            let mut i1 = Interp::new(&m);
            let r1 = i1.run_by_name("main", args).unwrap();
            assert_eq!(r0, r1, "count={count}");
            assert_eq!(i1.stats.collection_copies, 0);
        }
    }

    /// By-ref restoration: an SSA function returning its updated parameter
    /// becomes a by-ref mut function, and the caller threads storage with
    /// zero copies (the RETφ disappears).
    #[test]
    fn byref_restoration_round_trip() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let callee = mb.func("bump", Form::Mut, |b| {
            let s = b.param_ref("s", seqt);
            let zero = b.index(0);
            let v = b.read(s, zero);
            let one = b.i64(1);
            let v2 = b.add(v, one);
            b.mut_write(s, zero, v2);
            b.ret(vec![]);
        });
        mb.func("main", Form::Mut, |b| {
            let n = b.index(1);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(5);
            b.mut_write(s, zero, v);
            b.call(Callee::Func(callee), vec![s], &[]);
            b.call(Callee::Func(callee), vec![s], &[]);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m0 = mb.finish();
        let mut m = m0.clone();
        construct_ssa(&mut m).unwrap();
        let stats = destruct_ssa(&mut m);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(stats.copies_inserted, 0);
        assert_eq!(stats.byref_params_restored, 1);
        let bump = &m.funcs[m.func_by_name("bump").unwrap()];
        assert!(bump.params[0].by_ref, "by-ref restored");
        assert!(bump.ret_tys.is_empty(), "RETφ dropped");

        let mut i0 = Interp::new(&m0);
        let r0 = i0.run_by_name("main", vec![]).unwrap();
        let mut i1 = Interp::new(&m);
        let r1 = i1.run_by_name("main", vec![]).unwrap();
        assert_eq!(r0, r1);
        assert_eq!(r1, vec![Value::Int(Type::I64, 7)]);
        assert_eq!(i1.stats.collection_copies, 0);
    }
}
