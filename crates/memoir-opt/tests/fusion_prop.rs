//! Property tests for the two tentpole optimizations (DESIGN §16), on
//! randomly generated whole-language programs from `reduce`'s genprog:
//!
//! - **Fusion ≡ identity** under the memoir-interp oracle: compiling
//!   with the fusion pass in the pipeline must produce the same
//!   observable results as compiling without it, and both must match
//!   the mut-form oracle.
//! - **Repr selection ≡ default layout**: charging the interpreter per
//!   the adaptive representation analysis's choices never changes
//!   results and never costs more than the default hashed accounting;
//!   and a through-lowering case with `adaptive: true` passes the full
//!   four-way differential oracle (byte-identical observable outputs).

use memoir_opt::pipeline::{compile_spec_with, default_spec, OptConfig, OptLevel};
use passman::PipelineSpec;
use proptest::prelude::*;
use reduce::{
    build_case, random_case, run_case_prog, CaseConfig, CaseDims, CaseProgram, Outcome, SplitMix64,
};

const FUEL: u64 = 50_000_000;

fn compiled_run(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    adaptive: bool,
) -> (Vec<memoir_interp::Value>, f64) {
    let (mut m, _expect) = build_case(prog);
    compile_spec_with(&mut m, spec, |pm| pm).expect("pipeline runs clean");
    let mut vm = memoir_interp::Interp::new(&m).with_fuel(FUEL);
    if adaptive {
        vm = vm.with_repr_choices(memoir_analysis::choose_reprs(&m));
    }
    let out = vm
        .run_by_name("main", vec![])
        .expect("genprog cases never trap");
    let cost = vm.stats.cost;
    (out, cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fusion is semantics-preserving: with-fusion compilation agrees
    /// with without-fusion compilation (and the mut-form oracle) on the
    /// interpreter, for whole-language programs with objects + helpers.
    #[test]
    fn fusion_is_identity_under_the_interp_oracle(seed in any::<u64>()) {
        let dims = CaseDims { objects: true, multi: false };
        let prog = random_case(&mut SplitMix64::new(seed), 24, dims);
        let (_, expect) = build_case(&prog);
        let ident = PipelineSpec::parse("ssa-construct,constprop,ssa-destruct").unwrap();
        let fused = PipelineSpec::parse("ssa-construct,constprop,fusion,ssa-destruct").unwrap();
        let (out_ident, _) = compiled_run(&prog, &ident, false);
        let (out_fused, _) = compiled_run(&prog, &fused, false);
        prop_assert_eq!(&out_fused, &out_ident);
        // Both agree with the op-level oracle on the scalar result.
        match out_fused.first() {
            Some(memoir_interp::Value::Int(_, got)) => prop_assert_eq!(*got, expect),
            other => prop_assert!(false, "non-scalar main result: {:?}", other),
        }
    }

    /// The adaptive representation analysis changes costs, never
    /// results: same outputs, cost less than or equal to the default
    /// accounting, on fully optimized (O3, fusion included) modules.
    #[test]
    fn repr_selection_preserves_outputs_and_never_costs_more(seed in any::<u64>()) {
        let dims = CaseDims { objects: false, multi: false };
        let prog = random_case(&mut SplitMix64::new(seed), 24, dims);
        let spec = default_spec(OptLevel::O3(OptConfig::all()));
        let (out_default, cost_default) = compiled_run(&prog, &spec, false);
        let (out_adaptive, cost_adaptive) = compiled_run(&prog, &spec, true);
        prop_assert_eq!(out_adaptive, out_default);
        prop_assert!(
            cost_adaptive <= cost_default,
            "adaptive cost {} exceeds default {}",
            cost_adaptive,
            cost_default
        );
    }
}

proptest! {
    // Each case runs the full four-way differential pipeline twice
    // (hashed and adaptive layouts); keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Through lowering, the adaptive representation selector is
    /// invisible to the four-way differential oracle: a case that
    /// passes with the default hashed layout passes byte-identically
    /// with dense / inline layouts enabled.
    #[test]
    fn adaptive_lowering_agrees_with_the_default_layout(seed in any::<u64>()) {
        let dims = CaseDims { objects: true, multi: false };
        let prog = random_case(&mut SplitMix64::new(seed), 16, dims);
        let spec =
            PipelineSpec::parse("ssa-construct,constprop,fusion,dce,ssa-destruct").unwrap();
        for adaptive in [false, true] {
            let cfg = CaseConfig {
                lir_spec: Some(PipelineSpec::parse("mem2reg,dce").unwrap()),
                adaptive,
                ..CaseConfig::default()
            };
            let out = run_case_prog(&prog, &spec, &cfg);
            prop_assert_eq!(out, Outcome::Pass, "adaptive={}", adaptive);
        }
    }
}
