//! The MUT associative array (paper §IV-D, §VI): a value-semantic
//! key-value mapping with `read`, `write`, `insert`, `remove`, `contains`
//! (HAS), and `keys`, instrumented through the memory ledger.
//!
//! The footprint model matches the paper's observation about lowering to a
//! hashtable: each entry pays key + value + bucket overhead, and the table
//! grows by doubling — which is exactly why field elision *alone* grows
//! mcf's max RSS (+3.3%) until RIE converts the table to a sequence
//! (§VII-C).

use crate::class::CollectionClass;
use crate::stats;
use std::collections::HashMap;
use std::hash::Hash;

const HEADER_BYTES: u64 = 48;
/// Per-entry bucket/metadata overhead of the hashtable lowering.
pub const ENTRY_OVERHEAD_BYTES: u64 = 16;
const ASSOC_READ_COST: f64 = 8.0;
const ASSOC_WRITE_COST: f64 = 12.0;
/// One probe + in-place combine: the fused read-modify-write (DESIGN §16)
/// pays a single hash lookup where `read` + `write` pay two.
const ASSOC_RMW_COST: f64 = 12.0;

/// A value-semantic associative array.
///
/// ```
/// use memoir_runtime::Assoc;
///
/// let mut prices = Assoc::new();
/// prices.write("apple", 3);
/// prices.write("pear", 4);
/// assert!(prices.contains(&"apple"));
/// assert_eq!(*prices.read(&"pear"), 4);
/// assert_eq!(prices.keys().as_slice(), &["apple", "pear"]);
/// ```
#[derive(Debug)]
pub struct Assoc<K, V> {
    map: HashMap<K, V>,
    order: Vec<K>,
    class: CollectionClass,
    charged: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> Clone for Assoc<K, V> {
    fn clone(&self) -> Self {
        let mut a = Assoc::with_class(self.class);
        a.map = self.map.clone();
        a.order = self.order.clone();
        a.recharge();
        stats::charge(self.map.len() as f64);
        a
    }
}

impl<K: Eq + Hash + Clone, V> Assoc<K, V> {
    /// Creates an empty associative array (class `Associative`).
    pub fn new() -> Self {
        Assoc::with_class(CollectionClass::Associative)
    }

    /// Creates an empty associative array with an explicit Fig. 1 class.
    pub fn with_class(class: CollectionClass) -> Self {
        let mut a = Assoc {
            map: HashMap::new(),
            order: Vec::new(),
            class,
            charged: 0,
        };
        a.recharge();
        a
    }

    fn footprint(&self) -> u64 {
        // Hashtable model: capacity grows by doubling at 87.5% load; each
        // slot stores key + value + overhead.
        let entry =
            (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64 + ENTRY_OVERHEAD_BYTES;
        let cap = self.map.len().next_power_of_two().max(8) as u64;
        HEADER_BYTES + cap * entry + (self.order.len() * std::mem::size_of::<K>()) as u64
    }

    fn recharge(&mut self) {
        let now = self.footprint();
        if now > self.charged {
            stats::alloc(self.class, now - self.charged);
        } else if now < self.charged {
            stats::dealloc(self.class, self.charged - now);
        }
        self.charged = now;
    }

    fn entry_bytes(&self) -> u64 {
        (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64
    }

    /// `size(a)`.
    pub fn size(&self) -> usize {
        self.map.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `read(a, k)` — panics on a missing key (UB in the IR semantics).
    pub fn read(&self, k: &K) -> &V {
        stats::read(self.class, self.entry_bytes(), ASSOC_READ_COST);
        self.map.get(k).expect("read of absent key (UB per §IV-B)")
    }

    /// Non-trapping read.
    pub fn get(&self, k: &K) -> Option<&V> {
        stats::read(self.class, self.entry_bytes(), ASSOC_READ_COST);
        self.map.get(k)
    }

    /// `write(a, k, v)` — inserts the key if absent.
    pub fn write(&mut self, k: K, v: V) {
        stats::write(self.class, self.entry_bytes(), ASSOC_WRITE_COST);
        if !self.map.contains_key(&k) {
            self.order.push(k.clone());
        }
        self.map.insert(k, v);
        self.recharge();
    }

    /// `remove(a, k)`.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        stats::charge(ASSOC_WRITE_COST);
        let v = self.map.remove(k);
        if v.is_some() {
            self.order.retain(|x| x != k);
        }
        self.recharge();
        v
    }

    /// `rmw(a, k, op)` — the fused read-modify-write of DESIGN §16:
    /// `a[k] = op(a[k])` in one storage pass (one probe, not two).
    /// Panics on a missing key, like `read` (UB in the IR semantics).
    pub fn rmw(&mut self, k: &K, op: impl FnOnce(&V) -> V) {
        stats::write(self.class, self.entry_bytes(), ASSOC_RMW_COST);
        let slot = self
            .map
            .get_mut(k)
            .expect("rmw of absent key (UB per §IV-B)");
        *slot = op(slot);
    }

    /// `contains(a, k)` — the HAS operator.
    pub fn contains(&self, k: &K) -> bool {
        stats::read(self.class, 0, ASSOC_READ_COST);
        self.map.contains_key(k)
    }

    /// `keys(a)` — the keys as a sequence, in deterministic insertion
    /// order.
    pub fn keys(&self) -> crate::Seq<K> {
        let mut s = crate::Seq::with_class(CollectionClass::Sequential);
        for k in &self.order {
            if self.map.contains_key(k) {
                s.push(k.clone());
            }
        }
        s
    }

    /// Iterates `(key, value)` pairs in insertion order, charging reads.
    pub fn iter_read(&self) -> impl Iterator<Item = (&K, &V)> {
        stats::read(
            self.class,
            self.map.len() as u64 * self.entry_bytes(),
            self.map.len() as f64 * ASSOC_READ_COST,
        );
        self.order.iter().filter_map(|k| self.map.get_key_value(k))
    }
}

impl<K: Eq + Hash + Clone, V> Default for Assoc<K, V> {
    fn default() -> Self {
        Assoc::new()
    }
}

impl<K, V> Drop for Assoc<K, V> {
    fn drop(&mut self) {
        stats::dealloc(self.class, self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{reset, snapshot};

    #[test]
    fn write_read_contains_remove() {
        reset();
        let mut a = Assoc::new();
        a.write(1i64, 10i64);
        a.write(2, 20);
        assert_eq!(*a.read(&1), 10);
        assert!(a.contains(&2));
        assert!(!a.contains(&3));
        assert_eq!(a.remove(&1), Some(10));
        assert!(!a.contains(&1));
        assert_eq!(a.size(), 1);
    }

    #[test]
    fn keys_in_insertion_order() {
        let mut a = Assoc::new();
        a.write(5i64, ());
        a.write(1, ());
        a.write(9, ());
        a.remove(&1);
        let ks = a.keys();
        assert_eq!(ks.as_slice(), &[5, 9]);
    }

    #[test]
    fn hashtable_footprint_exceeds_flat_storage() {
        reset();
        let mut a = Assoc::new();
        for i in 0..100i64 {
            a.write(i, i);
        }
        let assoc_peak = snapshot().peak_bytes;
        drop(a);
        reset();
        let mut s = crate::Seq::new();
        for i in 0..100i64 {
            s.push(i);
        }
        let seq_peak = snapshot().peak_bytes;
        assert!(
            assoc_peak > 2 * seq_peak,
            "hashtable {assoc_peak}B must dwarf sequence {seq_peak}B — the FE/RIE effect"
        );
    }

    #[test]
    fn assoc_ops_cost_more_than_seq_ops() {
        reset();
        let mut a = Assoc::new();
        a.write(1i64, 1i64);
        let assoc_cost = snapshot().cost;
        reset();
        let mut s = crate::Seq::with_len(1, |_| 0i64);
        s.write(0, 1);
        let seq_cost = snapshot().cost;
        assert!(
            assoc_cost > seq_cost,
            "hash op {assoc_cost} > seq op {seq_cost}"
        );
    }

    #[test]
    fn fused_rmw_combines_and_costs_one_probe() {
        reset();
        let mut a = Assoc::new();
        a.write(1i64, 10i64);
        let before = snapshot().cost;
        a.rmw(&1, |v| v + 5);
        let fused = snapshot().cost - before;
        assert_eq!(*a.read(&1), 15);
        reset();
        let mut b = Assoc::new();
        b.write(1i64, 10i64);
        let before = snapshot().cost;
        let v = *b.read(&1);
        b.write(1, v + 5);
        let unfused = snapshot().cost - before;
        assert!(
            fused < unfused,
            "fused rmw {fused} must beat read+write {unfused}"
        );
    }

    #[test]
    fn value_semantics_clone() {
        let mut a = Assoc::new();
        a.write(1i64, 1i64);
        let b = a.clone();
        a.write(1, 99);
        assert_eq!(*b.read(&1), 1);
    }
}
