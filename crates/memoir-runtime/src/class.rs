//! Collection classification (paper §III, Fig. 1).
//!
//! The paper manually classifies heap memory into six classes to show that
//! the majority of SPECINT 2017's memory has higher-level structure. The
//! runtime tags every collection with its class so the ledger can produce
//! the same breakdown.

/// The six memory classes of Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollectionClass {
    /// Contiguous in index space: arrays, vectors, linked lists.
    Sequential,
    /// Key-value relations: maps, sets, hash tables.
    Associative,
    /// Fixed-length, heterogeneously-typed records.
    Object,
    /// Tree-shaped linked structures.
    Tree,
    /// Graph-shaped linked structures.
    Graph,
    /// No well-defined structure (file buffers, bit streams).
    Unstructured,
}

impl CollectionClass {
    /// All classes, in Fig. 1's legend order.
    pub const ALL: [CollectionClass; 6] = [
        CollectionClass::Unstructured,
        CollectionClass::Graph,
        CollectionClass::Tree,
        CollectionClass::Associative,
        CollectionClass::Sequential,
        CollectionClass::Object,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CollectionClass::Sequential => "Sequential",
            CollectionClass::Associative => "Associative",
            CollectionClass::Object => "Object",
            CollectionClass::Tree => "Tree",
            CollectionClass::Graph => "Graph",
            CollectionClass::Unstructured => "Unstructured",
        }
    }

    /// Whether MEMOIR provides a first-class representation for this
    /// class (§III: objects, sequences and associative arrays).
    pub fn representable(self) -> bool {
        matches!(
            self,
            CollectionClass::Sequential | CollectionClass::Associative | CollectionClass::Object
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_representability() {
        assert_eq!(CollectionClass::Sequential.label(), "Sequential");
        assert!(CollectionClass::Sequential.representable());
        assert!(CollectionClass::Associative.representable());
        assert!(CollectionClass::Object.representable());
        assert!(!CollectionClass::Tree.representable());
        assert!(!CollectionClass::Graph.representable());
        assert!(!CollectionClass::Unstructured.representable());
        assert_eq!(CollectionClass::ALL.len(), 6);
    }
}
