//! Adaptive-representation MUT variants (DESIGN §16): the dense
//! direct-indexed map and the inline small-sequence buffer that
//! `memoir-lower` selects when the repr analysis proves a collection's
//! key space bounded (dense) or its length small and fixed (inline).
//!
//! Both are drop-in value-semantic replacements for the default
//! [`Assoc`](crate::Assoc)/[`Seq`](crate::Seq) layouts with strictly
//! cheaper per-op costs and — for [`DenseMap`] — a flat footprint
//! (`cap × (1 present byte + value)`), versus the hashtable's
//! bucket-overhead-and-doubling model. The ledger instrumentation is
//! identical so Fig. 1-style classifications stay comparable.

use crate::class::CollectionClass;
use crate::stats;

const DENSE_HEADER_BYTES: u64 = 32;
const DENSE_READ_COST: f64 = 2.0;
const DENSE_WRITE_COST: f64 = 2.0;
const INLINE_READ_COST: f64 = 1.0;
const INLINE_WRITE_COST: f64 = 1.0;

/// A direct-indexed associative array over keys `0 .. cap`.
///
/// The dense lowering of an assoc whose keys are provably bounded: one
/// present flag and one value slot per possible key, no hashing, no
/// bucket overhead, no growth.
///
/// ```
/// use memoir_runtime::DenseMap;
///
/// let mut m = DenseMap::new(16);
/// m.write(3, 30i64);
/// m.write(7, 70);
/// assert!(m.contains(3));
/// assert_eq!(*m.read(7), 70);
/// assert_eq!(m.size(), 2);
/// m.remove(3);
/// assert!(!m.contains(3));
/// ```
#[derive(Debug)]
pub struct DenseMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
    class: CollectionClass,
    charged: u64,
}

impl<V: Clone> Clone for DenseMap<V> {
    fn clone(&self) -> Self {
        let mut m = DenseMap::with_class(self.slots.len(), self.class);
        m.slots = self.slots.clone();
        m.len = self.len;
        stats::charge(self.slots.len() as f64);
        m
    }
}

impl<V> DenseMap<V> {
    /// Creates an empty dense map over the key space `0 .. cap`
    /// (class `Associative` — it lowers an assoc).
    pub fn new(cap: usize) -> Self {
        DenseMap::with_class(cap, CollectionClass::Associative)
    }

    /// Creates an empty dense map with an explicit Fig. 1 class.
    pub fn with_class(cap: usize, class: CollectionClass) -> Self {
        let mut m = DenseMap {
            slots: Vec::new(),
            len: 0,
            class,
            charged: 0,
        };
        m.slots.resize_with(cap, || None);
        m.charged = m.footprint();
        stats::alloc(class, m.charged);
        m
    }

    fn footprint(&self) -> u64 {
        // Flat layout: present flag + value slot per possible key. No
        // doubling, no bucket overhead — the whole point of the variant.
        DENSE_HEADER_BYTES + (self.slots.len() * (1 + std::mem::size_of::<V>())) as u64
    }

    fn value_bytes(&self) -> u64 {
        std::mem::size_of::<V>() as u64
    }

    /// The fixed key-space bound this map was created with.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `size(a)` — the number of present keys.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Whether no key is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `read(a, k)` — panics on a missing key (UB in the IR semantics).
    pub fn read(&self, k: usize) -> &V {
        stats::read(self.class, self.value_bytes(), DENSE_READ_COST);
        self.slots[k]
            .as_ref()
            .expect("read of absent key (UB per §IV-B)")
    }

    /// Non-trapping read.
    pub fn get(&self, k: usize) -> Option<&V> {
        stats::read(self.class, self.value_bytes(), DENSE_READ_COST);
        self.slots.get(k).and_then(Option::as_ref)
    }

    /// `write(a, k, v)` — inserts the key if absent. Panics if `k` is
    /// outside the proven bound (the repr analysis guaranteed it isn't).
    pub fn write(&mut self, k: usize, v: V) {
        stats::write(self.class, self.value_bytes(), DENSE_WRITE_COST);
        if self.slots[k].replace(v).is_none() {
            self.len += 1;
        }
    }

    /// `remove(a, k)`.
    pub fn remove(&mut self, k: usize) -> Option<V> {
        stats::charge(DENSE_WRITE_COST);
        let v = self.slots[k].take();
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// `contains(a, k)` — the HAS operator. Out-of-bound keys are simply
    /// absent (HAS never traps).
    pub fn contains(&self, k: usize) -> bool {
        stats::read(self.class, 0, DENSE_READ_COST);
        self.slots.get(k).is_some_and(Option::is_some)
    }

    /// Fused read-modify-write: `a[k] = op(a[k], x)` in one slot access.
    /// Panics on a missing key, exactly like `read`.
    pub fn rmw(&mut self, k: usize, op: impl FnOnce(&V) -> V) {
        stats::write(self.class, self.value_bytes(), DENSE_WRITE_COST);
        let slot = self.slots[k]
            .as_mut()
            .expect("rmw of absent key (UB per §IV-B)");
        *slot = op(slot);
    }

    /// `keys(a)` — present keys in ascending order (the dense layout's
    /// deterministic order; selection only fires when no `keys` op
    /// observes insertion order, so this is never visible to lowered
    /// programs).
    pub fn keys(&self) -> crate::Seq<usize> {
        let mut s = crate::Seq::with_class(CollectionClass::Sequential);
        for (k, slot) in self.slots.iter().enumerate() {
            if slot.is_some() {
                s.push(k);
            }
        }
        s
    }
}

impl<V> Drop for DenseMap<V> {
    fn drop(&mut self) {
        stats::dealloc(self.class, self.charged);
    }
}

/// A fixed-capacity inline sequence: the stack lowering of a small
/// `new Seq<T>(n)` whose length never changes and which never escapes.
///
/// No heap footprint is charged — the buffer lives in the frame — and
/// element access costs less than the heap sequence's.
///
/// ```
/// use memoir_runtime::InlineSeq;
///
/// let mut s = InlineSeq::new(4, |_| 0i64);
/// s.write(2, 5);
/// assert_eq!(*s.read(2), 5);
/// assert_eq!(s.size(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct InlineSeq<T> {
    elems: Vec<T>,
    class: CollectionClass,
}

impl<T> InlineSeq<T> {
    /// Creates an inline sequence of fixed length `n`.
    pub fn new(n: usize, init: impl FnMut(usize) -> T) -> Self {
        // Stack placement: no ledger allocation. (The interpreter's cost
        // model likewise charges no alloc delta for inline buffers.)
        InlineSeq {
            elems: (0..n).map(init).collect(),
            class: CollectionClass::Sequential,
        }
    }

    /// `size(s)` — fixed at construction.
    pub fn size(&self) -> usize {
        self.elems.len()
    }

    /// `read(s, i)`.
    pub fn read(&self, i: usize) -> &T {
        stats::read(
            self.class,
            std::mem::size_of::<T>() as u64,
            INLINE_READ_COST,
        );
        &self.elems[i]
    }

    /// `write(s, i, v)`.
    pub fn write(&mut self, i: usize, v: T) {
        stats::write(
            self.class,
            std::mem::size_of::<T>() as u64,
            INLINE_WRITE_COST,
        );
        self.elems[i] = v;
    }

    /// Fused read-modify-write: `s[i] = op(s[i], x)` in one access.
    pub fn rmw(&mut self, i: usize, op: impl FnOnce(&T) -> T) {
        stats::write(
            self.class,
            std::mem::size_of::<T>() as u64,
            INLINE_WRITE_COST,
        );
        self.elems[i] = op(&self.elems[i]);
    }

    /// `swap(s, i, j)`.
    pub fn swap(&mut self, i: usize, j: usize) {
        stats::write(
            self.class,
            2 * std::mem::size_of::<T>() as u64,
            2.0 * INLINE_WRITE_COST,
        );
        self.elems.swap(i, j);
    }

    /// Uninstrumented view (for assertions in tests/harnesses).
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{reset, snapshot};
    use crate::Assoc;

    #[test]
    fn dense_write_read_contains_remove() {
        reset();
        let mut m = DenseMap::new(8);
        m.write(1, 10i64);
        m.write(2, 20);
        assert_eq!(*m.read(1), 10);
        assert!(m.contains(2));
        assert!(!m.contains(3));
        assert!(!m.contains(99), "out-of-bound HAS is false, not a trap");
        assert_eq!(m.remove(1), Some(10));
        assert!(!m.contains(1));
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn dense_rmw_updates_in_place() {
        let mut m = DenseMap::new(4);
        m.write(2, 5i64);
        m.rmw(2, |v| v + 7);
        assert_eq!(*m.read(2), 12);
    }

    #[test]
    #[should_panic(expected = "absent key")]
    fn dense_read_of_absent_key_traps() {
        let m: DenseMap<i64> = DenseMap::new(4);
        let _ = m.read(0);
    }

    #[test]
    fn dense_keys_ascend() {
        let mut m = DenseMap::new(8);
        m.write(5, ());
        m.write(1, ());
        m.write(6, ());
        m.remove(1);
        assert_eq!(m.keys().as_slice(), &[5, 6]);
    }

    #[test]
    fn dense_footprint_beats_hashtable_at_same_population() {
        reset();
        let mut a = Assoc::new();
        for i in 0..64i64 {
            a.write(i, i);
        }
        let assoc_peak = snapshot().peak_bytes;
        drop(a);
        reset();
        let mut m = DenseMap::new(64);
        for i in 0..64usize {
            m.write(i, i as i64);
        }
        let dense_peak = snapshot().peak_bytes;
        assert!(
            dense_peak < assoc_peak,
            "dense {dense_peak}B must undercut hashtable {assoc_peak}B"
        );
    }

    #[test]
    fn dense_ops_cost_less_than_assoc_ops() {
        reset();
        let mut a = Assoc::new();
        a.write(1i64, 1i64);
        let assoc_cost = snapshot().cost;
        reset();
        let mut m = DenseMap::new(8);
        m.write(1, 1i64);
        let dense_cost = snapshot().cost;
        assert!(
            dense_cost < assoc_cost,
            "dense op {dense_cost} < hash op {assoc_cost}"
        );
    }

    #[test]
    fn dense_clone_is_value_semantic() {
        let mut a = DenseMap::new(4);
        a.write(1, 1i64);
        let b = a.clone();
        a.write(1, 99);
        assert_eq!(*b.read(1), 1);
    }

    #[test]
    fn dense_drop_releases_footprint() {
        reset();
        {
            let _m: DenseMap<i64> = DenseMap::new(256);
            assert!(snapshot().current_bytes > 256);
        }
        assert_eq!(snapshot().current_bytes, 0);
    }

    #[test]
    fn inline_roundtrip_and_rmw() {
        reset();
        let mut s = InlineSeq::new(4, |i| i as i64);
        s.write(0, 9);
        s.rmw(0, |v| v * 2);
        s.swap(0, 3);
        assert_eq!(s.as_slice(), &[3, 1, 2, 18]);
        assert_eq!(s.size(), 4);
        assert_eq!(snapshot().current_bytes, 0, "inline buffers charge no heap");
    }

    #[test]
    fn inline_access_costs_less_than_heap_seq() {
        reset();
        let mut h = crate::Seq::with_len(1, |_| 0i64);
        h.write(0, 1);
        let heap_cost = snapshot().cost;
        reset();
        let base = snapshot().cost;
        let mut s = InlineSeq::new(1, |_| 0i64);
        s.write(0, 1);
        let inline_cost = snapshot().cost - base;
        assert!(
            inline_cost < heap_cost,
            "inline write {inline_cost} < heap write {heap_cost}"
        );
    }
}
