//! # memoir-runtime
//!
//! The **MUT library** (paper §VI) as a Rust API: value-semantic
//! sequences, associative arrays, and object heaps with the explicit
//! mutation operators of Fig. 5, plus a byte-accurate per-class memory
//! ledger.
//!
//! The ledger substitutes for the paper's measurement infrastructure
//! (DESIGN.md §2):
//!
//! * the Fig. 1 heap classification (bytes allocated / read / written per
//!   collection class) is produced by tagging each collection with a
//!   [`CollectionClass`];
//! * max RSS (Figs. 7/9) is the ledger's live-byte high-water mark, with
//!   hashtable lowering overheads modeled per the paper's analysis;
//! * the execution-time proxy (Figs. 6/8) is the deterministic operation
//!   cost accumulator (same model as `memoir-interp`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assoc;
mod class;
mod dense;
mod object;
mod seq;
pub mod stats;

pub use assoc::{Assoc, ENTRY_OVERHEAD_BYTES};
pub use class::CollectionClass;
pub use dense::{DenseMap, InlineSeq};
pub use object::{ObjRef, ObjectHeap, RawBuf};
pub use seq::Seq;
