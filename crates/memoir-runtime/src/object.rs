//! Object storage and field access (paper §IV-E): explicit `new`/`delete`
//! sites, reference-based access, and a cache-line-aware field access cost
//! (the §VII-C packing effect: once DFE+FE shrink the object below a cache
//! line, adjacent objects share fetches).

use crate::class::CollectionClass;
use crate::stats;

/// A reference to an object in an [`ObjectHeap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub u32);

/// An arena of objects of one (Rust-side) record type.
///
/// `LAYOUT_BYTES` is charged per allocation and drives the field-access
/// cost model — benchmark variants encode their object layouts (before
/// and after DFE/FE) through this parameter rather than relying on Rust's
/// own layout.
#[derive(Debug)]
pub struct ObjectHeap<T> {
    objects: Vec<Option<T>>,
    layout_bytes: u64,
    header_bytes: u64,
    live: usize,
}

const OBJ_HEADER_BYTES: u64 = 16;

impl<T> ObjectHeap<T> {
    /// Creates a heap for objects whose modeled layout is `layout_bytes`,
    /// each paying the default 16-byte allocator header.
    pub fn new(layout_bytes: u64) -> Self {
        ObjectHeap {
            objects: Vec::new(),
            layout_bytes,
            header_bytes: OBJ_HEADER_BYTES,
            live: 0,
        }
    }

    /// Creates an arena-style heap: objects live in bulk arrays (mcf's arc
    /// storage) and pay no per-object allocator header.
    pub fn new_arena(layout_bytes: u64) -> Self {
        ObjectHeap {
            objects: Vec::new(),
            layout_bytes,
            header_bytes: 0,
            live: 0,
        }
    }

    /// The modeled per-object layout size.
    pub fn layout_bytes(&self) -> u64 {
        self.layout_bytes
    }

    /// `new T` — allocates an object.
    pub fn alloc(&mut self, value: T) -> ObjRef {
        stats::alloc(
            CollectionClass::Object,
            self.layout_bytes + self.header_bytes,
        );
        self.live += 1;
        let id = ObjRef(self.objects.len() as u32);
        self.objects.push(Some(value));
        id
    }

    /// `delete(obj)`.
    pub fn delete(&mut self, r: ObjRef) {
        if self.objects[r.0 as usize].take().is_some() {
            stats::dealloc(
                CollectionClass::Object,
                self.layout_bytes + self.header_bytes,
            );
            self.live -= 1;
        }
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live
    }

    fn access_cost(&self) -> f64 {
        // Fractional cache-line pressure: smaller objects pack more
        // neighbours per line fetched (§VII-C's DFE packing effect).
        1.0 + self.layout_bytes as f64 / 64.0
    }

    /// Reads through a field accessor, charging the field-array read cost.
    pub fn read<R>(&self, r: ObjRef, f: impl FnOnce(&T) -> R) -> R {
        stats::read(CollectionClass::Object, 8, self.access_cost());
        f(self.objects[r.0 as usize]
            .as_ref()
            .expect("access through deleted reference (UB)"))
    }

    /// Writes through a field accessor, charging the field-array write
    /// cost.
    pub fn write<R>(&mut self, r: ObjRef, f: impl FnOnce(&mut T) -> R) -> R {
        stats::write(CollectionClass::Object, 8, self.access_cost());
        f(self.objects[r.0 as usize]
            .as_mut()
            .expect("access through deleted reference (UB)"))
    }

    /// Uninstrumented access for harness assertions.
    pub fn peek(&self, r: ObjRef) -> Option<&T> {
        self.objects[r.0 as usize].as_ref()
    }
}

impl<T> Drop for ObjectHeap<T> {
    fn drop(&mut self) {
        stats::dealloc(
            CollectionClass::Object,
            self.live as u64 * (self.layout_bytes + self.header_bytes),
        );
    }
}

/// An unstructured byte buffer (Fig. 1's `Unstructured` class): memory
/// whose layout is externally dictated, e.g. file contents.
#[derive(Debug, Default)]
pub struct RawBuf {
    bytes: Vec<u8>,
    charged: u64,
}

impl RawBuf {
    /// Allocates a buffer of `n` zero bytes.
    pub fn new(n: usize) -> Self {
        stats::alloc(CollectionClass::Unstructured, n as u64);
        RawBuf {
            bytes: vec![0; n],
            charged: n as u64,
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads a byte.
    pub fn read(&self, i: usize) -> u8 {
        stats::read(CollectionClass::Unstructured, 1, 1.0);
        self.bytes[i]
    }

    /// Writes a byte.
    pub fn write(&mut self, i: usize, v: u8) {
        stats::write(CollectionClass::Unstructured, 1, 1.0);
        self.bytes[i] = v;
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        stats::dealloc(CollectionClass::Unstructured, self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{reset, snapshot};

    #[derive(Debug)]
    struct Arc56 {
        cost: i64,
        flow: i64,
    }

    #[test]
    fn alloc_delete_balance() {
        reset();
        let mut heap = ObjectHeap::new(56);
        let a = heap.alloc(Arc56 { cost: 1, flow: 0 });
        let b = heap.alloc(Arc56 { cost: 2, flow: 0 });
        assert_eq!(heap.live_count(), 2);
        heap.delete(a);
        assert_eq!(heap.live_count(), 1);
        let l = snapshot();
        assert_eq!(l.current_bytes, 56 + 16);
        assert!(l.peak_bytes >= 2 * (56 + 16));
        let _ = b;
    }

    #[test]
    fn field_access_cost_scales_with_layout() {
        reset();
        let mut small = ObjectHeap::new(56);
        let a = small.alloc(Arc56 { cost: 1, flow: 0 });
        small.read(a, |o| o.cost);
        let small_cost = snapshot().cost;
        reset();
        let mut big = ObjectHeap::new(72);
        let b = big.alloc(Arc56 { cost: 1, flow: 0 });
        big.read(b, |o| o.flow);
        let big_cost = snapshot().cost;
        assert!(big_cost > small_cost, "packing shrinks access cost");
    }

    #[test]
    #[should_panic(expected = "deleted reference")]
    fn deleted_access_panics() {
        let mut heap = ObjectHeap::new(8);
        let a = heap.alloc(Arc56 { cost: 1, flow: 0 });
        heap.delete(a);
        heap.read(a, |o| o.cost);
    }

    #[test]
    fn rawbuf_is_unstructured() {
        reset();
        let mut b = RawBuf::new(1024);
        b.write(0, 7);
        assert_eq!(b.read(0), 7);
        let l = snapshot();
        assert_eq!(l.class(CollectionClass::Unstructured).allocated, 1024);
        assert_eq!(l.class(CollectionClass::Unstructured).written, 1);
    }
}
