//! The MUT sequence (paper §VI, Fig. 5): a value-semantic, contiguous
//! collection with the explicit mutation operators of the MUT library —
//! `read`, `write`, `insert`, `remove`, `append`, `swap`, `split`, `copy`
//! — instrumented through the memory ledger.

use crate::class::CollectionClass;
use crate::stats;

const HEADER_BYTES: u64 = 32;
const SEQ_READ_COST: f64 = 2.0;
const SEQ_WRITE_COST: f64 = 2.0;

/// A value-semantic sequence.
///
/// ```
/// use memoir_runtime::Seq;
///
/// let mut s = Seq::new();
/// s.push(10);
/// s.push(20);
/// s.insert(1, 15);
/// assert_eq!(s.as_slice(), &[10, 15, 20]);
///
/// // Value semantics: clones are deep copies.
/// let snapshot = s.clone();
/// s.write(0, -1);
/// assert_eq!(*snapshot.read(0), 10);
/// ```
#[derive(Debug)]
pub struct Seq<T> {
    elems: Vec<T>,
    class: CollectionClass,
    charged: u64,
}

impl<T: Clone> Clone for Seq<T> {
    fn clone(&self) -> Self {
        let mut s = Seq::with_class(self.class);
        s.elems = self.elems.clone();
        s.recharge();
        stats::charge(self.elems.len() as f64); // copy cost
        s
    }
}

impl<T> Seq<T> {
    /// Creates an empty sequence of the default (`Sequential`) class.
    pub fn new() -> Self {
        Seq::with_class(CollectionClass::Sequential)
    }

    /// Creates an empty sequence tagged with a Fig. 1 class (linked data
    /// structures re-expressed as sequences keep their original class for
    /// the classification figures).
    pub fn with_class(class: CollectionClass) -> Self {
        let mut s = Seq {
            elems: Vec::new(),
            class,
            charged: 0,
        };
        s.recharge();
        s
    }

    /// Creates a sequence of `n` elements produced by `init` (the MUT
    /// `new Seq<T>(n)` with an initializer — Rust has no uninitialized
    /// values, so the UB-on-uninitialized-read rule is enforced by the IR
    /// interpreter instead).
    pub fn with_len(n: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut s = Seq::new();
        s.elems = (0..n).map(init).collect();
        s.recharge();
        s
    }

    fn footprint(&self) -> u64 {
        HEADER_BYTES + (self.elems.capacity() * std::mem::size_of::<T>()) as u64
    }

    fn recharge(&mut self) {
        let now = self.footprint();
        if now > self.charged {
            stats::alloc(self.class, now - self.charged);
        } else if now < self.charged {
            stats::dealloc(self.class, self.charged - now);
        }
        self.charged = now;
    }

    fn elem_bytes(&self) -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// `size(s)`.
    pub fn size(&self) -> usize {
        self.elems.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// `read(s, i)`.
    pub fn read(&self, i: usize) -> &T {
        stats::read(self.class, self.elem_bytes(), SEQ_READ_COST);
        &self.elems[i]
    }

    /// `write(s, i, v)`.
    pub fn write(&mut self, i: usize, v: T) {
        stats::write(self.class, self.elem_bytes(), SEQ_WRITE_COST);
        self.elems[i] = v;
    }

    /// `insert(s, i, v)` — shifts the suffix right.
    pub fn insert(&mut self, i: usize, v: T) {
        let moved = self.elems.len() - i;
        stats::write(self.class, self.elem_bytes(), SEQ_WRITE_COST + moved as f64);
        self.elems.insert(i, v);
        self.recharge();
    }

    /// `append(s, v)` — `insert(s, end, v)`.
    pub fn push(&mut self, v: T) {
        stats::write(self.class, self.elem_bytes(), SEQ_WRITE_COST);
        self.elems.push(v);
        self.recharge();
    }

    /// `remove(s, i)`.
    pub fn remove(&mut self, i: usize) -> T {
        let moved = self.elems.len() - i - 1;
        stats::charge(moved as f64);
        let v = self.elems.remove(i);
        self.recharge();
        v
    }

    /// `remove(s, i, j)` — removes the range `[i : j)`.
    pub fn remove_range(&mut self, i: usize, j: usize) {
        let moved = self.elems.len() - j;
        stats::charge((j - i) as f64 + moved as f64);
        self.elems.drain(i..j);
        self.recharge();
    }

    /// `swap(s, i, j)` — swaps two elements (the Listing 3 partition op).
    pub fn swap(&mut self, i: usize, j: usize) {
        stats::write(self.class, 2 * self.elem_bytes(), 2.0 * SEQ_WRITE_COST);
        self.elems.swap(i, j);
    }

    /// `swap(s, i, j, k)` — swaps ranges `[i : j)` and `[k : k + j - i)`.
    pub fn swap_range(&mut self, i: usize, j: usize, k: usize) {
        let w = j - i;
        stats::write(
            self.class,
            (2 * w) as u64 * self.elem_bytes(),
            (2 * w) as f64,
        );
        for o in 0..w {
            self.elems.swap(i + o, k + o);
        }
    }

    /// `copy(s, i, j)` — a fresh sequence holding `[i : j)`.
    pub fn copy_range(&self, i: usize, j: usize) -> Seq<T>
    where
        T: Clone,
    {
        let mut out = Seq::with_class(self.class);
        out.elems = self.elems[i..j].to_vec();
        out.recharge();
        stats::charge((j - i) as f64);
        out
    }

    /// `split(s, i, j)` — removes `[i : j)` and returns it.
    pub fn split(&mut self, i: usize, j: usize) -> Seq<T> {
        let mut out = Seq::with_class(self.class);
        out.elems = self.elems.drain(i..j).collect();
        out.recharge();
        self.recharge();
        stats::charge((out.elems.len()) as f64);
        out
    }

    /// `append(s, s2)` — splices `s2`'s elements onto the end.
    pub fn append(&mut self, other: Seq<T>) {
        stats::charge(other.elems.len() as f64);
        // `other` is consumed; its Drop will release its footprint.
        let mut other = other;
        self.elems.append(&mut other.elems);
        self.recharge();
    }

    /// Iterates the elements (each element charged as a read).
    pub fn iter_read(&self) -> impl Iterator<Item = &T> {
        stats::read(
            self.class,
            self.elems.len() as u64 * self.elem_bytes(),
            self.elems.len() as f64 * SEQ_READ_COST,
        );
        self.elems.iter()
    }

    /// Uninstrumented view (for assertions in tests/harnesses).
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }
}

impl<T> Default for Seq<T> {
    fn default() -> Self {
        Seq::new()
    }
}

impl<T> Drop for Seq<T> {
    fn drop(&mut self) {
        stats::dealloc(self.class, self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{reset, snapshot};

    #[test]
    fn push_read_write_roundtrip() {
        reset();
        let mut s = Seq::new();
        for i in 0..10i64 {
            s.push(i);
        }
        s.write(3, 99);
        assert_eq!(*s.read(3), 99);
        assert_eq!(s.size(), 10);
        let l = snapshot();
        assert!(l.class(CollectionClass::Sequential).allocated >= 80);
        assert!(l.class(CollectionClass::Sequential).written >= 88);
    }

    #[test]
    fn drop_releases_footprint() {
        reset();
        {
            let mut s = Seq::new();
            for i in 0..100i64 {
                s.push(i);
            }
            assert!(snapshot().current_bytes > 800);
        }
        let l = snapshot();
        assert_eq!(l.current_bytes, 0);
        assert!(l.peak_bytes > 800);
    }

    #[test]
    fn split_and_append_preserve_elements() {
        reset();
        let mut s = Seq::with_len(6, |i| i as i64);
        let mid = s.split(2, 4); // [2,3]
        assert_eq!(mid.as_slice(), &[2, 3]);
        assert_eq!(s.as_slice(), &[0, 1, 4, 5]);
        s.append(mid);
        assert_eq!(s.as_slice(), &[0, 1, 4, 5, 2, 3]);
    }

    #[test]
    fn swap_range_matches_fig3() {
        let mut s = Seq::with_len(6, |i| i as i64);
        s.swap_range(0, 2, 3); // [0,1] ↔ [3,4]
        assert_eq!(s.as_slice(), &[3, 4, 2, 0, 1, 5]);
    }

    #[test]
    fn clone_is_value_semantic() {
        let mut a = Seq::with_len(3, |i| i as i64);
        let b = a.clone();
        a.write(0, 42);
        assert_eq!(*b.read(0), 0, "copies do not alias");
    }

    #[test]
    fn class_tag_propagates() {
        reset();
        let mut s: Seq<u64> = Seq::with_class(CollectionClass::Graph);
        s.push(1);
        let l = snapshot();
        assert!(l.class(CollectionClass::Graph).allocated > 0);
        assert_eq!(l.class(CollectionClass::Sequential).written, 0);
    }
}
