//! The memory ledger: byte-accurate accounting per collection class.
//!
//! Substitutes for the paper's Valgrind heap instrumentation (Fig. 1) and
//! max-RSS measurements (Figs. 7/9): every runtime collection reports its
//! allocations, releases, element reads, and element writes here. The
//! ledger also accumulates the deterministic operation-cost proxy used for
//! the execution-time figures (see `memoir-interp::stats` for the model).

use crate::class::CollectionClass;
use std::cell::RefCell;

/// Per-class byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassBytes {
    /// Bytes allocated (cumulative).
    pub allocated: u64,
    /// Bytes read from elements (cumulative).
    pub read: u64,
    /// Bytes written to elements (cumulative).
    pub written: u64,
}

/// The ledger snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    per_class: [ClassBytes; 6],
    /// Live heap bytes right now.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes (the max-RSS proxy).
    pub peak_bytes: u64,
    /// Deterministic operation-cost accumulator (execution-time proxy).
    pub cost: f64,
}

fn class_index(c: CollectionClass) -> usize {
    match c {
        CollectionClass::Unstructured => 0,
        CollectionClass::Graph => 1,
        CollectionClass::Tree => 2,
        CollectionClass::Associative => 3,
        CollectionClass::Sequential => 4,
        CollectionClass::Object => 5,
    }
}

impl Ledger {
    /// Counters for one class.
    pub fn class(&self, c: CollectionClass) -> ClassBytes {
        self.per_class[class_index(c)]
    }

    /// Total bytes allocated across classes.
    pub fn total_allocated(&self) -> u64 {
        self.per_class.iter().map(|c| c.allocated).sum()
    }

    /// Total bytes read across classes.
    pub fn total_read(&self) -> u64 {
        self.per_class.iter().map(|c| c.read).sum()
    }

    /// Total bytes written across classes.
    pub fn total_written(&self) -> u64 {
        self.per_class.iter().map(|c| c.written).sum()
    }

    /// Fraction of allocated bytes in a class (0 when nothing allocated).
    pub fn allocated_share(&self, c: CollectionClass) -> f64 {
        let total = self.total_allocated();
        if total == 0 {
            0.0
        } else {
            self.class(c).allocated as f64 / total as f64
        }
    }
}

thread_local! {
    static LEDGER: RefCell<Ledger> = RefCell::new(Ledger::default());
}

/// Resets the thread's ledger (call at the start of a measurement).
pub fn reset() {
    LEDGER.with(|l| *l.borrow_mut() = Ledger::default());
}

/// Snapshots the thread's ledger.
pub fn snapshot() -> Ledger {
    LEDGER.with(|l| l.borrow().clone())
}

/// Records an allocation of `bytes` for class `c`.
pub fn alloc(c: CollectionClass, bytes: u64) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.per_class[class_index(c)].allocated += bytes;
        l.current_bytes += bytes;
        if l.current_bytes > l.peak_bytes {
            l.peak_bytes = l.current_bytes;
        }
        l.cost += 12.0;
    });
}

/// Records a release of `bytes` for class `c`.
pub fn dealloc(_c: CollectionClass, bytes: u64) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.current_bytes = l.current_bytes.saturating_sub(bytes);
    });
}

/// Records an element read of `bytes` for class `c`, with the given
/// operation cost.
pub fn read(c: CollectionClass, bytes: u64, cost: f64) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.per_class[class_index(c)].read += bytes;
        l.cost += cost;
    });
}

/// Records an element write of `bytes` for class `c`, with the given
/// operation cost.
pub fn write(c: CollectionClass, bytes: u64, cost: f64) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.per_class[class_index(c)].written += bytes;
        l.cost += cost;
    });
}

/// Adds raw cost (scalar work between collection operations).
pub fn charge(cost: f64) {
    LEDGER.with(|l| l.borrow_mut().cost += cost);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water() {
        reset();
        alloc(CollectionClass::Sequential, 100);
        alloc(CollectionClass::Associative, 50);
        dealloc(CollectionClass::Sequential, 100);
        alloc(CollectionClass::Tree, 20);
        let s = snapshot();
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.current_bytes, 70);
        assert_eq!(s.class(CollectionClass::Sequential).allocated, 100);
        assert_eq!(s.total_allocated(), 170);
    }

    #[test]
    fn shares_sum_to_one() {
        reset();
        alloc(CollectionClass::Sequential, 300);
        alloc(CollectionClass::Object, 100);
        let s = snapshot();
        let total: f64 = CollectionClass::ALL
            .iter()
            .map(|&c| s.allocated_share(c))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((s.allocated_share(CollectionClass::Sequential) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn read_write_tracked_per_class() {
        reset();
        read(CollectionClass::Associative, 8, 8.0);
        write(CollectionClass::Associative, 8, 12.0);
        write(CollectionClass::Sequential, 4, 2.0);
        let s = snapshot();
        assert_eq!(s.class(CollectionClass::Associative).read, 8);
        assert_eq!(s.class(CollectionClass::Associative).written, 8);
        assert_eq!(s.class(CollectionClass::Sequential).written, 4);
        assert!(s.cost >= 22.0);
    }
}
