//! Deterministic retry scheduling: the rung ladder and seeded
//! exponential backoff with jitter.
//!
//! Both functions here are pure: the rung for attempt `k` depends only
//! on the [`RetryPolicy`], and the backoff before attempt `k` of job `j`
//! depends only on `(policy, service seed, j, k)`. That purity is the
//! backbone of the determinism guarantee tested by the backoff proptest:
//! the same seed and fault plan yield the identical retry schedule and
//! final outcome across runs and across worker-thread counts.

use crate::job::Rung;
use crate::rng::{mix, SplitMix64};

/// How a job retries: attempt count, ladder shape, and backoff curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (1 = no retries).
    pub max_attempts: usize,
    /// Same-config retries before the ladder starts escalating (the
    /// transient-blip allowance).
    pub same_config_retries: usize,
    /// Base backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_backoff_ms: u64,
    /// Whether to jitter each delay (deterministically, from the seed)
    /// into `[delay/2, delay]` to decorrelate retry herds.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            same_config_retries: 1,
            base_backoff_ms: 10,
            max_backoff_ms: 1000,
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The degradation rung attempt `attempt` (0-based) runs on: the
    /// submitted config for attempt 0 plus `same_config_retries`, then
    /// one attempt each of [`Rung::Serial`] and [`Rung::NoCache`], then
    /// [`Rung::Baseline`] for whatever remains.
    pub fn rung_for_attempt(&self, attempt: usize) -> Rung {
        let r = self.same_config_retries;
        if attempt <= r {
            Rung::Full
        } else if attempt == r + 1 {
            Rung::Serial
        } else if attempt == r + 2 {
            Rung::NoCache
        } else {
            Rung::Baseline
        }
    }

    /// Deterministic backoff before `attempt` (0-based; attempt 0 never
    /// waits): exponential in the retry index, capped, with seeded
    /// jitter into `[delay/2, delay]`.
    pub fn backoff_ms(&self, seed: u64, job: u64, attempt: usize) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(20) as u32;
        let delay = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms);
        if !self.jitter || delay <= 1 {
            return delay;
        }
        let mut rng = SplitMix64::new(mix(seed, job, attempt as u64));
        delay / 2 + rng.below(delay - delay / 2 + 1)
    }

    /// The full worst-case schedule for a job: `(rung, backoff_ms)` for
    /// every attempt the policy allows.
    pub fn schedule(&self, seed: u64, job: u64) -> Vec<(Rung, u64)> {
        (0..self.max_attempts.max(1))
            .map(|a| (self.rung_for_attempt(a), self.backoff_ms(seed, job, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shape() {
        let p = RetryPolicy::default(); // 5 attempts, 1 same-config retry
        let rungs: Vec<Rung> = (0..5).map(|a| p.rung_for_attempt(a)).collect();
        assert_eq!(
            rungs,
            vec![
                Rung::Full,
                Rung::Full,
                Rung::Serial,
                Rung::NoCache,
                Rung::Baseline
            ]
        );
        // Extra attempts stay at the bottom of the ladder.
        assert_eq!(p.rung_for_attempt(9), Rung::Baseline);

        let eager = RetryPolicy {
            same_config_retries: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(eager.rung_for_attempt(1), Rung::Serial);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy {
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            jitter: false,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms(1, 0, 0), 0);
        assert_eq!(p.backoff_ms(1, 0, 1), 10);
        assert_eq!(p.backoff_ms(1, 0, 2), 20);
        assert_eq!(p.backoff_ms(1, 0, 3), 40);
        assert_eq!(p.backoff_ms(1, 0, 5), 100, "capped");
        assert_eq!(p.backoff_ms(1, 0, 60), 100, "no shift overflow");

        let j = RetryPolicy { jitter: true, ..p };
        for attempt in 1..6 {
            let base = p.backoff_ms(7, 3, attempt);
            let a = j.backoff_ms(7, 3, attempt);
            let b = j.backoff_ms(7, 3, attempt);
            assert_eq!(a, b, "jitter is a pure function of (seed, job, attempt)");
            assert!(
                a >= base / 2 && a <= base,
                "{a} not in [{}, {base}]",
                base / 2
            );
        }
        // Different jobs and seeds draw different jitter (overwhelmingly).
        let draws: std::collections::HashSet<u64> =
            (0..32).map(|job| j.backoff_ms(7, job, 4)).collect();
        assert!(draws.len() > 4, "{draws:?}");
    }

    #[test]
    fn schedule_matches_pointwise_queries() {
        let p = RetryPolicy::default();
        let s = p.schedule(42, 3);
        assert_eq!(s.len(), 5);
        for (a, &(rung, ms)) in s.iter().enumerate() {
            assert_eq!(rung, p.rung_for_attempt(a));
            assert_eq!(ms, p.backoff_ms(42, 3, a));
        }
    }
}
