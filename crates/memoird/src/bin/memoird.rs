//! The `memoird` command-line driver: feed a stream of compile jobs
//! through the service's robustness envelope.
//!
//! ```text
//! memoird --workers=4 --timeout-ms=500 --cache --report jobs.txt
//! echo 'synth(12,7) :: ssa-construct,dce,ssa-destruct' | memoird --report
//! ```

use memoir_opt::{default_spec, OptConfig, OptLevel};
use memoird::{JobFaultPlan, JobLine, JobSource, JobSpec, ServiceConfig, ServiceStats};
use passman::{Budgets, FaultPolicy, PipelineSpec};
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
memoird — run a stream of MEMOIR compile jobs through the robust service

USAGE:
    memoird [OPTIONS] [JOBFILE...]

JOB STREAM:
    Each non-empty, non-# line of the job files (default: stdin) is one
    job: `SOURCE [:: SPEC]`, where SOURCE is a file of textual MEMOIR IR
    or `synth(<nfuncs>,<seed>)`, and SPEC overrides the default pipeline
    for that job, e.g.

        examples/listing1.mir
        synth(12,7) :: ssa-construct,constprop,dce,ssa-destruct
        synth(4,1)  :: ssa-construct,dce,ssa-destruct,lower,mem2reg,dce

OPTIONS:
    --passes=SPEC         default pipeline for jobs without `:: SPEC`
                          (default: the full -O3 pipeline); a `lower`
                          step makes jobs emit low-level IR
    --lower               default preset: -O3, then `lower`, then the
                          default lir pipeline
    --workers=N           worker threads (module-level parallelism;
                          default 2)
    --job-threads=N       function-shard threads *within* each job
                          (default 1; dropped to 1 on the serial rung)
    --timeout-ms=N        per-attempt wall-clock timeout, watchdogged;
                          also handed to the pipeline as an in-band
                          pipeline-ms budget (default: none)
    --budget=LIST         per-job budgets, as in memoir-opt:
                          pass-ms=N,pipeline-ms=N,growth=F,fixpoint=N
    --on-fault=POLICY     pass-level policy inside each attempt:
                          abort | skip (default) | stop
    --retries=N           max attempts per job (default 5)
    --backoff-ms=N        base retry backoff (default 10; exponential,
                          capped, deterministically jittered from --seed)
    --seed=N              service seed for backoff jitter (default 0)
    --queue-cap=N         bounded job queue capacity (default 64);
                          submissions beyond it are shed
    --shed-qdepth=N       early-shed when queue depth reaches N
    --shed-p99=MS         early-shed when windowed p99 latency exceeds MS
    --breaker=T,C         per-spec circuit breaker: open after T
                          consecutive failures, probe after C sheds
    --cache               share one compile cache across all jobs
    --job-cache           also cache whole job outputs (implies --cache)
    --inject=PLAN         service-level fault injection (repeatable):
                          slow-job@i, worker-panic@i, poison-cache@i,
                          `@*` for every job, `#k` to pick the attempt
    --report              print the service report table to stderr
    -h, --help            show this help

EXIT STATUS:
    0 if every job ended ok or degraded-ok, 1 if any was shed or failed,
    2 on usage errors.
";

struct Cli {
    inputs: Vec<String>,
    default_spec: PipelineSpec,
    job_threads: usize,
    policy: FaultPolicy,
    budgets: Budgets,
    cfg: ServiceConfig,
    use_cache: bool,
    report: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        default_spec: default_spec(OptLevel::O3(OptConfig::all())),
        job_threads: 1,
        policy: FaultPolicy::SkipPass,
        budgets: Budgets::none(),
        cfg: ServiceConfig::default(),
        use_cache: false,
        report: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        let parse_num = |text: String, what: &str| -> Result<u64, String> {
            text.parse::<u64>()
                .map_err(|e| format!("bad {what} value `{text}`: {e}"))
        };
        match flag {
            "-h" | "--help" => return Ok(None),
            "--passes" => {
                cli.default_spec = PipelineSpec::parse(&value(&mut it)?)
                    .map_err(|e| format!("bad --passes spec: {e}"))?;
            }
            "--lower" => {
                let memoir = default_spec(OptLevel::O3(OptConfig::all()));
                let lir = lir::passes::default_spec();
                cli.default_spec = PipelineSpec::parse(&format!("{memoir},lower,{lir}"))
                    .expect("default lowered spec is well-formed");
            }
            "--workers" => cli.cfg.workers = parse_num(value(&mut it)?, "--workers")? as usize,
            "--job-threads" => {
                cli.job_threads = (parse_num(value(&mut it)?, "--job-threads")? as usize).max(1)
            }
            "--timeout-ms" => {
                cli.cfg.timeout_ms = Some(parse_num(value(&mut it)?, "--timeout-ms")?)
            }
            "--budget" => cli.budgets = Budgets::parse(&value(&mut it)?)?,
            "--on-fault" => cli.policy = value(&mut it)?.parse()?,
            "--retries" => {
                cli.cfg.retry.max_attempts =
                    (parse_num(value(&mut it)?, "--retries")? as usize).max(1)
            }
            "--backoff-ms" => {
                cli.cfg.retry.base_backoff_ms = parse_num(value(&mut it)?, "--backoff-ms")?
            }
            "--seed" => cli.cfg.seed = parse_num(value(&mut it)?, "--seed")?,
            "--queue-cap" => {
                cli.cfg.queue_cap = parse_num(value(&mut it)?, "--queue-cap")? as usize
            }
            "--shed-qdepth" => {
                cli.cfg.shed_qdepth = Some(parse_num(value(&mut it)?, "--shed-qdepth")? as usize)
            }
            "--shed-p99" => {
                let v = value(&mut it)?;
                cli.cfg.shed_p99_ms = Some(
                    v.parse::<f64>()
                        .map_err(|e| format!("bad --shed-p99 value `{v}`: {e}"))?,
                )
            }
            "--breaker" => {
                let v = value(&mut it)?;
                let (t, c) = v
                    .split_once(',')
                    .ok_or_else(|| format!("bad --breaker value `{v}` (expected T,C)"))?;
                cli.cfg.breaker = Some(memoird::BreakerConfig {
                    threshold: parse_num(t.to_string(), "--breaker threshold")? as u32,
                    cooldown: parse_num(c.to_string(), "--breaker cooldown")? as u32,
                });
            }
            "--cache" => cli.use_cache = true,
            "--job-cache" => {
                cli.use_cache = true;
                cli.cfg.job_cache = true;
            }
            "--inject" => cli
                .cfg
                .faults
                .push(value(&mut it)?.parse::<JobFaultPlan>()?),
            "--report" => cli.report = true,
            _ if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown option `{flag}` (try --help)"))
            }
            _ => cli.inputs.push(arg.clone()),
        }
    }
    Ok(Some(cli))
}

/// Reads and parses the job stream from the given files (or stdin).
fn read_jobs(cli: &Cli) -> Result<Vec<JobSpec>, String> {
    let mut lines: Vec<(String, JobLine)> = Vec::new();
    let sources: Vec<Option<&str>> = if cli.inputs.is_empty() {
        vec![None]
    } else {
        cli.inputs.iter().map(|p| Some(p.as_str())).collect()
    };
    for src in sources {
        let text = match src {
            None | Some("-") => {
                let mut s = String::new();
                std::io::stdin()
                    .read_to_string(&mut s)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                s
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?
            }
        };
        let origin = src.unwrap_or("<stdin>");
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed: JobLine = line
                .parse()
                .map_err(|e| format!("{origin}:{}: {e}", ln + 1))?;
            lines.push((origin.to_string(), parsed));
        }
    }
    lines
        .into_iter()
        .map(|(origin, line)| {
            let module = match &line.source {
                JobSource::Synth { nfuncs, seed } => {
                    workloads::synth_ir::build_synth_ir(*nfuncs, *seed)
                }
                JobSource::Path(path) => {
                    let src = std::fs::read_to_string(path)
                        .map_err(|e| format!("{origin}: reading `{path}`: {e}"))?;
                    memoir_ir::parser::parse_module(&src)
                        .map_err(|e| format!("{origin}: parsing `{path}`: {e}"))?
                }
            };
            let spec = line
                .spec
                .clone()
                .unwrap_or_else(|| cli.default_spec.clone());
            let mut job = JobSpec::new(line.source.to_string(), module, spec);
            job.threads = cli.job_threads;
            job.policy = cli.policy;
            job.budgets = cli.budgets;
            Ok(job)
        })
        .collect()
}

fn render_report(stats: &ServiceStats) -> String {
    let cc = stats.compile_cache;
    format!(
        "jobs submitted={} ok={} degraded-ok={} shed={} failed={}\n\
         attempts={} retries={} timeouts={} worker-panics={}\n\
         latency p50={:.1}ms p99={:.1}ms\n\
         compile-cache hits={} skips={} misses={} contended={} job-hits={}\n",
        stats.submitted,
        stats.ok,
        stats.degraded_ok,
        stats.shed,
        stats.failed,
        stats.attempts,
        stats.retries,
        stats.timeouts,
        stats.worker_panics,
        stats.p50_ms,
        stats.p99_ms,
        cc.hits,
        cc.skips,
        cc.misses,
        cc.contended,
        stats.job_cache_hits,
    )
}

fn run(mut cli: Cli) -> Result<bool, String> {
    if cli.use_cache {
        cli.cfg.cache = Some(passman::CompileCache::new());
    }
    let jobs = read_jobs(&cli)?;
    if jobs.is_empty() {
        return Err("no jobs in the stream".to_string());
    }
    let (outcomes, stats) = memoird::run_jobs(cli.cfg, jobs.clone());

    let mut all_ok = true;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, (job, outcome)) in jobs.iter().zip(&outcomes).enumerate() {
        for d in outcome.all_degradations() {
            eprintln!("memoird: warning: job {i} ({}): {d}", job.name);
        }
        match outcome.output() {
            Some(text) => {
                writeln!(out, ";; job {i}: {} [{}]", job.name, outcome.kind())
                    .and_then(|_| out.write_all(text.as_bytes()))
                    .map_err(|e| format!("writing stdout: {e}"))?;
            }
            None => {
                all_ok = false;
                eprintln!(
                    "memoird: job {i} ({}) {}: {}",
                    job.name,
                    outcome.kind(),
                    match outcome {
                        memoird::JobOutcome::Shed { qdepth, reason } =>
                            format!("shed at qdepth {qdepth}: {reason}"),
                        _ => format!("{} attempts, all faulted", outcome.attempts().len()),
                    }
                );
            }
        }
    }
    if cli.report {
        eprint!("{}", render_report(&stats));
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    // The service contains worker panics (including injected ones) by
    // design; keep the default hook from spraying backtraces.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if !msg.contains("injected ") {
            eprintln!("{msg}");
        }
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(None) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(cli)) => match run(cli) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("memoird: error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("memoird: error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
