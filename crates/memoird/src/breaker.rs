//! Per-pipeline-spec circuit breaker.
//!
//! A pipeline spec that keeps failing (a pass with a crash bug, a spec
//! that always blows its budget) would otherwise burn `max_attempts`
//! worth of worker time on every submission. The breaker tracks
//! *consecutive* failures per spec string and, once `threshold` is
//! reached, **opens**: subsequent jobs with that spec are shed at
//! admission ([`ShedReason::BreakerOpen`](crate::ShedReason::BreakerOpen))
//! without consuming a worker. After `cooldown` sheds the breaker goes
//! half-open and admits a single probe job; the probe's outcome closes
//! the breaker (success) or re-opens it (failure).
//!
//! The cooldown is count-based, not clock-based, so breaker behavior is
//! deterministic for a fixed submission order — the same property the
//! rest of the envelope maintains. Because admission outcomes depend on
//! *completion* order when jobs run concurrently, the breaker is off by
//! default and the determinism proptest runs with it disabled.

use std::collections::HashMap;
use std::sync::Mutex;

/// Breaker thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures of one spec that open the breaker.
    pub threshold: u32,
    /// Sheds to absorb while open before admitting a half-open probe.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: 5,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum BreakerState {
    /// Counting consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Shedding; admits a probe after `sheds_remaining` more rejections.
    Open { sheds_remaining: u32 },
    /// One probe is in flight; everything else is shed until it reports.
    HalfOpen,
}

/// A per-spec-string circuit breaker (see the module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    states: Mutex<HashMap<String, BreakerState>>,
}

impl CircuitBreaker {
    /// A breaker with the given thresholds; every spec starts closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check for a job with pipeline spec `spec`. Returns
    /// `false` if the job must be shed. Called once per submission;
    /// open-state bookkeeping (the shed countdown, the half-open probe
    /// slot) is updated as a side effect.
    pub fn admit(&self, spec: &str) -> bool {
        let mut states = self.states.lock().expect("breaker poisoned");
        let state = states
            .entry(spec.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_failures: 0,
            });
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { sheds_remaining } => {
                if sheds_remaining <= 1 {
                    // Cooldown served: let the *next* submission probe.
                    *state = BreakerState::HalfOpen;
                } else {
                    *state = BreakerState::Open {
                        sheds_remaining: sheds_remaining - 1,
                    };
                }
                false
            }
            BreakerState::HalfOpen => {
                // This submission is the probe; everyone else keeps
                // getting shed until it reports via `on_result`.
                *state = BreakerState::Open {
                    sheds_remaining: u32::MAX,
                };
                true
            }
        }
    }

    /// Reports a terminal compile result for `spec` (shed jobs never
    /// report). Success closes the breaker; failure counts toward — or
    /// re-arms — the open state.
    pub fn on_result(&self, spec: &str, success: bool) {
        let mut states = self.states.lock().expect("breaker poisoned");
        let state = states
            .entry(spec.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_failures: 0,
            });
        *state = if success {
            BreakerState::Closed {
                consecutive_failures: 0,
            }
        } else {
            match *state {
                BreakerState::Closed {
                    consecutive_failures,
                } if consecutive_failures + 1 < self.cfg.threshold => BreakerState::Closed {
                    consecutive_failures: consecutive_failures + 1,
                },
                // Threshold reached, or a failed half-open probe
                // (recorded as Open{MAX} by `admit`): (re-)open.
                _ => BreakerState::Open {
                    sheds_remaining: self.cfg.cooldown.max(1),
                },
            }
        };
    }

    /// Whether `spec` is currently shedding (open or waiting on a probe).
    pub fn is_open(&self, spec: &str) -> bool {
        let states = self.states.lock().expect("breaker poisoned");
        !matches!(states.get(spec), None | Some(BreakerState::Closed { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown: 2,
        });
        // Two failures: still closed.
        assert!(b.admit("spec"));
        b.on_result("spec", false);
        assert!(b.admit("spec"));
        b.on_result("spec", false);
        assert!(!b.is_open("spec"));
        // Third consecutive failure opens it.
        assert!(b.admit("spec"));
        b.on_result("spec", false);
        assert!(b.is_open("spec"));
        // Cooldown: two sheds, then the next submission probes.
        assert!(!b.admit("spec"));
        assert!(!b.admit("spec"));
        assert!(b.admit("spec"), "half-open probe admitted");
        // While the probe is in flight everyone else is shed.
        assert!(!b.admit("spec"));
        // Probe succeeds: closed again.
        b.on_result("spec", true);
        assert!(!b.is_open("spec"));
        assert!(b.admit("spec"));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: 1,
        });
        assert!(b.admit("s"));
        b.on_result("s", false); // threshold 1: open immediately
        assert!(!b.admit("s")); // serves the 1-shed cooldown
        assert!(b.admit("s"), "probe");
        b.on_result("s", false); // probe failed: open again
        assert!(!b.admit("s"));
    }

    #[test]
    fn specs_are_independent_and_success_resets_the_count() {
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown: 1,
        });
        b.on_result("a", false);
        b.on_result("b", false);
        b.on_result("a", true); // resets a's consecutive count
        b.on_result("a", false);
        assert!(!b.is_open("a"), "1 consecutive failure < threshold 2");
        b.on_result("b", false);
        assert!(b.is_open("b"));
        assert!(b.admit("a"), "a unaffected by b's state");
    }
}
