//! Deterministic service-level fault injection.
//!
//! Extends passman's `kind@target` injection syntax from passes to
//! *jobs*: targets are job indices (the submission order), and the kinds
//! model service failure modes instead of pass failure modes:
//!
//! * `slow-job@3` — job 3's attempt stalls past the watchdog timeout
//!   (exercises the timeout → worker-poisoning → requeue path);
//! * `worker-panic@3` — the worker thread panics mid-job (exercises
//!   `catch_unwind` containment and the retry ladder);
//! * `poison-cache@3` — job 3 panics whenever it reads the shared
//!   compile cache, modeling a corrupted entry (exercises the ladder's
//!   cache-off rung).
//!
//! `@*` targets every job. An optional `#k` suffix restricts transient
//! kinds (`slow-job`, `worker-panic`) to attempt `k`; without it they
//! fire on attempt 0 only, so the retry ladder can be observed
//! recovering. `poison-cache` models *persistent* corruption: it fires
//! on every attempt that consults the cache, and only the ladder's
//! cache-disabling rung clears it.
//!
//! Plans are pure functions of `(job, attempt, rung)` — no randomness,
//! no clocks — so a fault-injected run is exactly replayable, which is
//! what lets the throughput bench assert byte-identical output with and
//! without injection at the same seed.

use crate::job::{JobId, Rung};
use std::fmt;
use std::str::FromStr;

/// What kind of service-level fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobInjectKind {
    /// Stall the attempt past the watchdog timeout.
    SlowJob,
    /// Panic the worker mid-attempt.
    WorkerPanic,
    /// Panic on shared-cache consultation (persistent until the ladder
    /// disables the cache).
    PoisonCache,
}

impl JobInjectKind {
    fn name(self) -> &'static str {
        match self {
            JobInjectKind::SlowJob => "slow-job",
            JobInjectKind::WorkerPanic => "worker-panic",
            JobInjectKind::PoisonCache => "poison-cache",
        }
    }
}

/// A parsed `kind@target[#attempt]` job-fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFaultPlan {
    /// The fault to inject.
    pub kind: JobInjectKind,
    /// Target job index; `None` = every job (`@*`).
    pub job: Option<JobId>,
    /// For transient kinds: the attempt to fire on (`None` = attempt 0).
    /// Ignored by `poison-cache`, which is persistent.
    pub attempt: Option<usize>,
}

impl JobFaultPlan {
    /// Whether this plan fires for `(job, attempt)` on `rung`.
    pub fn fires(&self, job: JobId, attempt: usize, rung: Rung, cache_installed: bool) -> bool {
        if self.job.is_some_and(|j| j != job) {
            return false;
        }
        match self.kind {
            // Persistent: every attempt that would read the shared cache.
            JobInjectKind::PoisonCache => cache_installed && rung.uses_cache(),
            // Transient: one specific attempt.
            JobInjectKind::SlowJob | JobInjectKind::WorkerPanic => {
                attempt == self.attempt.unwrap_or(0)
            }
        }
    }
}

impl fmt::Display for JobFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@", self.kind.name())?;
        match self.job {
            Some(j) => write!(f, "{j}")?,
            None => f.write_str("*")?,
        }
        if let Some(a) = self.attempt {
            write!(f, "#{a}")?;
        }
        Ok(())
    }
}

impl FromStr for JobFaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<JobFaultPlan, String> {
        let s = s.trim();
        let (kind_text, target) = s
            .split_once('@')
            .ok_or_else(|| format!("job fault plan `{s}` is not of the form kind@target"))?;
        let kind = match kind_text.trim() {
            "slow-job" => JobInjectKind::SlowJob,
            "worker-panic" => JobInjectKind::WorkerPanic,
            "poison-cache" => JobInjectKind::PoisonCache,
            other => {
                return Err(format!(
                    "unknown job fault kind `{other}` (expected slow-job|worker-panic|poison-cache)"
                ))
            }
        };
        let (job_text, attempt) = match target.split_once('#') {
            Some((j, a)) => {
                let a: usize = a
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad attempt index `{}`", a.trim()))?;
                (j.trim(), Some(a))
            }
            None => (target.trim(), None),
        };
        let job = match job_text {
            "*" => None,
            t => Some(
                t.parse::<JobId>()
                    .map_err(|_| format!("bad job index `{t}` (expected a number or `*`)"))?,
            ),
        };
        Ok(JobFaultPlan { kind, job, attempt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip() {
        for text in [
            "slow-job@3",
            "worker-panic@*",
            "poison-cache@0",
            "slow-job@7#2",
            "worker-panic@*#1",
        ] {
            let p: JobFaultPlan = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
            assert_eq!(p.to_string().parse::<JobFaultPlan>().unwrap(), p);
        }
    }

    #[test]
    fn plans_reject_garbage() {
        for text in [
            "",
            "slow-job",
            "panic@3",
            "slow-job@",
            "slow-job@x",
            "slow-job@3#y",
        ] {
            assert!(text.parse::<JobFaultPlan>().is_err(), "accepted `{text}`");
        }
    }

    #[test]
    fn firing_rules() {
        let p: JobFaultPlan = "worker-panic@3".parse().unwrap();
        assert!(p.fires(3, 0, Rung::Full, true));
        assert!(
            !p.fires(3, 1, Rung::Full, true),
            "default is attempt 0 only"
        );
        assert!(!p.fires(4, 0, Rung::Full, true));

        let p: JobFaultPlan = "slow-job@*#1".parse().unwrap();
        assert!(p.fires(0, 1, Rung::Full, false));
        assert!(p.fires(9, 1, Rung::Baseline, false));
        assert!(!p.fires(9, 0, Rung::Full, false));

        // poison-cache is persistent across attempts but clears as soon
        // as the ladder stops consulting the cache.
        let p: JobFaultPlan = "poison-cache@2".parse().unwrap();
        assert!(p.fires(2, 0, Rung::Full, true));
        assert!(p.fires(2, 5, Rung::Serial, true));
        assert!(!p.fires(2, 3, Rung::NoCache, true));
        assert!(!p.fires(2, 0, Rung::Full, false), "no cache installed");
    }
}
