//! Compile jobs and their terminal outcomes.
//!
//! A [`JobSpec`] is one unit of service work: a MEMOIR module, a
//! pipeline spec (which may contain the `lower` stage), and the per-job
//! pass-level fault configuration. The service wraps each job in the
//! robustness envelope (timeout, retry ladder, shedding) and resolves it
//! to exactly one [`JobOutcome`] — the *zero lost jobs* invariant the
//! throughput bench's `--check` mode asserts.
//!
//! [`JobLine`] is the textual job-stream syntax the `memoird` binary
//! (and the `memoir-fuzz service` parser fuzzer) consumes:
//!
//! ```text
//! examples/listing1.mir
//! examples/listing1.mir :: ssa-construct,dce,ssa-destruct
//! synth(12,7) :: ssa-construct,constprop,dce,ssa-destruct,lower
//! ```

use passman::{Budgets, Degradation, FaultCause, FaultPolicy, PipelineSpec, RecoveryAction};
use std::fmt;
use std::str::FromStr;

/// Service-assigned job identifier (the submission index).
pub type JobId = u64;

/// One compile job as submitted to the service.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name (file path, synth descriptor, or caller-chosen).
    pub name: String,
    /// The module to compile. Each attempt clones it, so a faulting
    /// attempt can never corrupt a retry's input.
    pub module: memoir_ir::Module,
    /// The pipeline to run; a `lower` step makes this a through-lowering
    /// job whose output is low-level IR.
    pub spec: PipelineSpec,
    /// Worker threads for function-sharded passes *within* the job
    /// (dropped to 1 by the [`Rung::Serial`] degradation rung).
    pub threads: usize,
    /// Pass-level fault policy. The default is [`FaultPolicy::SkipPass`]:
    /// pass-level containment is the first line of defense, the job-level
    /// retry ladder the backstop.
    pub policy: FaultPolicy,
    /// Per-job budgets; the service timeout composes in as an additional
    /// `pipeline-ms` bound (whichever is smaller wins).
    pub budgets: Budgets,
}

impl JobSpec {
    /// A job with the default envelope: recovering pass policy, no extra
    /// budgets, serial shards.
    pub fn new(name: impl Into<String>, module: memoir_ir::Module, spec: PipelineSpec) -> Self {
        JobSpec {
            name: name.into(),
            module,
            spec,
            threads: 1,
            policy: FaultPolicy::SkipPass,
            budgets: Budgets::none(),
        }
    }
}

/// One rung of the graceful-degradation ladder. Attempts escalate
/// top-to-bottom; every rung except [`Rung::Baseline`] is
/// output-preserving (serial execution and cold caches are guaranteed
/// byte-identical to the submitted config), so a job that succeeds on
/// rungs `Full..=NoCache` reports [`JobOutcome::Ok`] and one that needed
/// the weaker baseline spec reports [`JobOutcome::DegradedOk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// The job exactly as submitted.
    Full,
    /// `parallel<n>` dropped: all function shards run serially.
    Serial,
    /// Serial, and the shared compile cache is not consulted (the escape
    /// hatch for poisoned cache entries).
    NoCache,
    /// Serial, cold, and the spec replaced by the baseline `-O1`-style
    /// pipeline — scalar passes only, no MEMOIR-specific optimizations.
    Baseline,
}

impl Rung {
    /// Whether this rung's output is guaranteed byte-identical to the
    /// submitted configuration.
    pub fn output_preserving(self) -> bool {
        self != Rung::Baseline
    }

    /// Whether attempts on this rung consult the shared compile cache.
    pub fn uses_cache(self) -> bool {
        matches!(self, Rung::Full | Rung::Serial)
    }

    /// Stable rung name (used in job-level [`Degradation`] records).
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Serial => "serial",
            Rung::NoCache => "no-cache",
            Rung::Baseline => "baseline",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One executed (or watchdog-abandoned) attempt of a job.
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// The degradation rung the attempt ran on.
    pub rung: Rung,
    /// Deterministic backoff slept before this attempt, in milliseconds
    /// (0 for the first attempt).
    pub backoff_ms: u64,
    /// `None` if the attempt succeeded; otherwise why it failed. A
    /// watchdog timeout is recorded as
    /// [`FaultCause::Budget`]`(`[`PipelineTime`]`)`.
    ///
    /// [`PipelineTime`]: passman::BudgetViolation::PipelineTime
    pub fault: Option<FaultCause>,
    /// Pass-level degradations contained *inside* this attempt's
    /// pipeline run. Kept per attempt — not just for the last one — so a
    /// retried job drops no fault evidence.
    pub degradations: Vec<Degradation>,
    /// Compile-cache counters for this attempt's run.
    pub compile_cache: passman::CompileCacheStats,
    /// Attempt wall time in milliseconds (for timeouts: the configured
    /// limit, since the true duration belongs to an abandoned worker).
    pub ms: f64,
}

impl AttemptRecord {
    /// This attempt's job-level degradation record, if it faulted:
    /// `pass` is the pseudo-pass `"job"`, `invocation` the attempt
    /// index, and `func` carries the rung name.
    pub fn job_degradation(&self, attempt: usize) -> Option<Degradation> {
        let cause = self.fault.clone()?;
        Some(Degradation {
            pass: "job".to_string(),
            invocation: attempt,
            cause,
            fixpoint_iteration: None,
            func_index: None,
            func: Some(self.rung.name().to_string()),
            action: RecoveryAction::RolledBack,
        })
    }
}

/// Why a job was shed at (or after) admission.
#[derive(Clone, Debug, PartialEq)]
pub enum ShedReason {
    /// The bounded job queue was at capacity.
    QueueFull,
    /// Load-based early shedding: queue depth crossed the configured
    /// high-water mark.
    QueueDepth {
        /// The configured threshold.
        threshold: usize,
    },
    /// Load-based early shedding: observed p99 job latency crossed the
    /// configured threshold.
    HighLatency {
        /// The p99 over the recent-latency window, in milliseconds.
        p99_ms: f64,
    },
    /// The per-pipeline-spec circuit breaker is open.
    BreakerOpen,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::QueueDepth { threshold } => {
                write!(f, "queue depth over high-water mark {threshold}")
            }
            ShedReason::HighLatency { p99_ms } => {
                write!(f, "p99 latency {p99_ms:.1}ms over threshold")
            }
            ShedReason::BreakerOpen => write!(f, "circuit breaker open for this pipeline spec"),
        }
    }
}

/// The exactly-one terminal state of a submitted job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Compiled successfully on an output-preserving rung; `output` is
    /// byte-identical to what the submitted configuration produces.
    Ok {
        /// Printed output module (low-level IR for through-lowering
        /// jobs, MEMOIR text otherwise).
        output: String,
        /// Every attempt, including faulted ones.
        attempts: Vec<AttemptRecord>,
    },
    /// Compiled, but degraded: the job needed the baseline rung, or its
    /// successful attempt contained pass-level degradations, so the
    /// output is *valid* but not necessarily what the submitted config
    /// would produce.
    DegradedOk {
        /// Printed output module of the degraded compile.
        output: String,
        /// Every attempt, including faulted ones.
        attempts: Vec<AttemptRecord>,
    },
    /// Rejected by admission control; never compiled.
    Shed {
        /// Queue depth observed at the shedding decision.
        qdepth: usize,
        /// Which threshold fired.
        reason: ShedReason,
    },
    /// Every attempt of the retry ladder failed.
    Failed {
        /// Every attempt, all faulted.
        attempts: Vec<AttemptRecord>,
    },
}

impl JobOutcome {
    /// Stable terminal-state name: `ok`, `degraded-ok`, `shed`, `failed`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Ok { .. } => "ok",
            JobOutcome::DegradedOk { .. } => "degraded-ok",
            JobOutcome::Shed { .. } => "shed",
            JobOutcome::Failed { .. } => "failed",
        }
    }

    /// The compiled output, for the two successful states.
    pub fn output(&self) -> Option<&str> {
        match self {
            JobOutcome::Ok { output, .. } | JobOutcome::DegradedOk { output, .. } => {
                Some(output.as_str())
            }
            _ => None,
        }
    }

    /// Every attempt made, empty for shed jobs.
    pub fn attempts(&self) -> &[AttemptRecord] {
        match self {
            JobOutcome::Ok { attempts, .. }
            | JobOutcome::DegradedOk { attempts, .. }
            | JobOutcome::Failed { attempts } => attempts,
            JobOutcome::Shed { .. } => &[],
        }
    }

    /// **All** fault evidence for the job: each faulted attempt's
    /// job-level degradation followed by that attempt's pass-level
    /// degradations — aggregated across every attempt, not just the last
    /// one (the reporting-asymmetry fix).
    pub fn all_degradations(&self) -> Vec<Degradation> {
        let mut out = Vec::new();
        for (i, a) in self.attempts().iter().enumerate() {
            out.extend(a.job_degradation(i));
            out.extend(a.degradations.iter().cloned());
        }
        out
    }
}

/// Where a job's module comes from, in the textual job-stream syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSource {
    /// A file of textual MEMOIR IR.
    Path(String),
    /// A deterministic synthetic module: `synth(<nfuncs>,<seed>)`.
    Synth {
        /// Number of functions.
        nfuncs: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl fmt::Display for JobSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSource::Path(p) => f.write_str(p),
            JobSource::Synth { nfuncs, seed } => write!(f, "synth({nfuncs},{seed})"),
        }
    }
}

/// One line of a `memoird` job stream: a module source and an optional
/// per-job pipeline spec, `SOURCE [:: SPEC]`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobLine {
    /// The module source.
    pub source: JobSource,
    /// Per-job pipeline override (`None` = the stream's default spec).
    pub spec: Option<PipelineSpec>,
}

impl fmt::Display for JobLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)?;
        if let Some(spec) = &self.spec {
            write!(f, " :: {spec}")?;
        }
        Ok(())
    }
}

impl FromStr for JobLine {
    type Err = String;

    /// Parses `SOURCE [:: SPEC]`. `SOURCE` is `synth(<nfuncs>,<seed>)`
    /// or a file path (which may not contain `::` or be empty).
    fn from_str(s: &str) -> Result<JobLine, String> {
        let s = s.trim();
        let (source_text, spec_text) = match s.split_once("::") {
            Some((a, b)) => (a.trim(), Some(b.trim())),
            None => (s, None),
        };
        if source_text.is_empty() {
            return Err("empty job source".to_string());
        }
        if source_text.contains("::") {
            return Err("more than one `::` in job line".to_string());
        }
        let source = if let Some(inner) = source_text
            .strip_prefix("synth(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (n, seed) = inner
                .split_once(',')
                .ok_or("synth(...) takes `nfuncs,seed`")?;
            let nfuncs: usize = n
                .trim()
                .parse()
                .map_err(|_| format!("bad synth nfuncs `{}`", n.trim()))?;
            if nfuncs == 0 || nfuncs > 4096 {
                return Err(format!("synth nfuncs {nfuncs} out of range 1..=4096"));
            }
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| format!("bad synth seed `{}`", seed.trim()))?;
            JobSource::Synth { nfuncs, seed }
        } else {
            if source_text.starts_with("synth(") || source_text.contains(char::is_whitespace) {
                return Err(format!("bad job source `{source_text}`"));
            }
            JobSource::Path(source_text.to_string())
        };
        let spec = match spec_text {
            None => None,
            Some("") => return Err("empty spec after `::`".to_string()),
            Some(t) => Some(PipelineSpec::parse(t).map_err(|e| format!("bad job spec: {e}"))?),
        };
        Ok(JobLine { source, spec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_lines_round_trip() {
        for text in [
            "examples/listing1.mir",
            "a.mir :: ssa-construct,dce,ssa-destruct",
            "synth(12,7)",
            "synth(3,0) :: ssa-construct,constprop,ssa-destruct,lower,mem2reg,dce",
        ] {
            let line: JobLine = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            let shown = line.to_string();
            assert_eq!(shown.parse::<JobLine>().unwrap(), line, "{text} -> {shown}");
        }
    }

    #[test]
    fn job_lines_reject_garbage() {
        for text in [
            "",
            "   ",
            ":: dce",
            "a.mir :: ",
            "a.mir :: fixpoint(",
            "synth(0,1)",
            "synth(9999999,1)",
            "synth(x,1)",
            "synth(1)",
            "a b.mir",
            "a.mir :: dce :: dce",
        ] {
            assert!(text.parse::<JobLine>().is_err(), "accepted: `{text}`");
        }
    }

    #[test]
    fn outcome_kinds_and_degradation_aggregation() {
        let faulted = AttemptRecord {
            rung: Rung::Full,
            backoff_ms: 0,
            fault: Some(FaultCause::Panic("boom".into())),
            degradations: vec![Degradation {
                pass: "dce".into(),
                invocation: 2,
                cause: FaultCause::Panic("pass boom".into()),
                fixpoint_iteration: None,
                func_index: None,
                func: None,
                action: RecoveryAction::RolledBack,
            }],
            compile_cache: Default::default(),
            ms: 1.0,
        };
        let good = AttemptRecord {
            rung: Rung::Serial,
            backoff_ms: 10,
            fault: None,
            degradations: vec![],
            compile_cache: Default::default(),
            ms: 1.0,
        };
        let out = JobOutcome::Ok {
            output: "x".into(),
            attempts: vec![faulted, good],
        };
        assert_eq!(out.kind(), "ok");
        // One job-level record (attempt 0 faulted) + one pass-level
        // record from inside that attempt: nothing dropped.
        let degs = out.all_degradations();
        assert_eq!(degs.len(), 2, "{degs:?}");
        assert_eq!(degs[0].pass, "job");
        assert_eq!(degs[0].func.as_deref(), Some("full"));
        assert_eq!(degs[1].pass, "dce");

        let shed = JobOutcome::Shed {
            qdepth: 9,
            reason: ShedReason::QueueFull,
        };
        assert_eq!(shed.kind(), "shed");
        assert!(shed.all_degradations().is_empty());
        assert!(shed.output().is_none());
    }
}
