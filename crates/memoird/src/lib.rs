//! `memoird`: a compile *service* over the MEMOIR pipeline.
//!
//! Where `memoir-opt` compiles one module per process, this crate runs a
//! stream of compile jobs — each a module × pipeline spec (optionally
//! through the `lower` stage) — on a module-level worker pool layered
//! over the function-sharded executors the pass manager already has.
//! Every job is wrapped in a robustness envelope:
//!
//! * **timeouts** — a supervisor thread watchdogs each attempt against a
//!   wall-clock deadline; the same limit is also handed to the pipeline
//!   as an in-band `pipeline-ms` budget, so cooperative passes stop
//!   themselves and only truly wedged ones need the watchdog;
//! * **deterministic retry** — seeded exponential backoff with jitter,
//!   replayable from the service seed ([`RetryPolicy`]);
//! * **graceful degradation** — each retry steps down a ladder of
//!   [`Rung`]s (drop intra-job parallelism, drop the shared cache, fall
//!   back to a baseline pipeline), and every step is recorded as a
//!   job-level `Degradation` reusing the pass manager's fault types;
//! * **admission control** — a bounded queue, queue-depth and
//!   p99-latency shedding, and a per-pipeline-spec [`CircuitBreaker`],
//!   each producing a structured [`JobOutcome::Shed`];
//! * **fault injection** — deterministic `kind@target` plans at the job
//!   level ([`JobFaultPlan`]: `slow-job@i`, `worker-panic@i`,
//!   `poison-cache@i`) so every recovery path above is testable.
//!
//! Every submitted job resolves to exactly one [`JobOutcome`] (*zero
//! lost jobs*), and for a fixed submission order, seed, and fault plan
//! the outcomes and output bytes are reproducible — the properties the
//! `bench throughput --check` harness asserts.

#![warn(missing_docs)]

mod backoff;
mod breaker;
mod inject;
mod job;
mod rng;
mod service;

pub use backoff::RetryPolicy;
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use inject::{JobFaultPlan, JobInjectKind};
pub use job::{AttemptRecord, JobId, JobLine, JobOutcome, JobSource, JobSpec, Rung, ShedReason};
pub use service::{run_jobs, JobTicket, Service, ServiceConfig, ServiceStats};
