//! A tiny deterministic RNG (SplitMix64) for backoff jitter.
//!
//! The workspace is fully offline — no `rand` crate — and the retry
//! schedule must be replayable from the service seed alone, so a 64-bit
//! mixer keyed on `(seed, job, attempt)` is exactly enough. This is a
//! private copy of the fuzzer's generator: `reduce` depends on this
//! crate (the `memoir-fuzz service` mode), so the dependency cannot run
//! the other way.

/// SplitMix64: one `u64` of state, full-period, excellent mixing.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift: negligible bias for the small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Mixes independent key parts into one decorrelated seed.
pub(crate) fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut g = SplitMix64::new(
        a ^ b.wrapping_mul(0xA24B_AED4_963E_E407) ^ c.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    );
    g.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let set: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(set.len(), xs.len());
    }

    #[test]
    fn mix_separates_key_parts() {
        assert_ne!(mix(1, 2, 3), mix(1, 3, 2));
        assert_ne!(mix(1, 2, 3), mix(2, 1, 3));
        assert_eq!(mix(7, 8, 9), mix(7, 8, 9));
    }
}
