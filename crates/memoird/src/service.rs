//! The compile service: a module-level worker pool wrapping every job in
//! the robustness envelope.
//!
//! Submitted [`JobSpec`]s flow through a bounded queue into a pool of
//! worker threads. Each worker owns a job end-to-end: it runs the retry
//! ladder inline — deterministic seeded backoff, one degradation
//! [`Rung`] per attempt — with every attempt wrapped in `catch_unwind`.
//! A supervisor thread watchdogs in-flight attempts against the
//! configured wall-clock timeout: an attempt that blows its deadline is
//! *abandoned* (its worker poisoned and replaced, its eventual result
//! discarded) and the job is requeued for the next rung, so a wedged
//! pass can never wedge the service.
//!
//! Admission control sheds work before it queues: a full bounded queue,
//! a queue-depth high-water mark, a p99-latency threshold over the
//! recent-completion window, or an open per-pipeline-spec
//! [`CircuitBreaker`] each produce a structured [`JobOutcome::Shed`].
//! Every admitted job resolves to exactly one terminal [`JobOutcome`]
//! (the *zero lost jobs* invariant).
//!
//! Determinism: for a fixed submission order, seed, and fault plan,
//! job ids, injected faults, retry rungs, backoff delays, and outputs
//! are all reproducible — timing-derived numbers (latency percentiles)
//! are the only nondeterministic observables. The throughput bench's
//! `--check` mode leans on this to assert byte-identical output with
//! and without fault injection at the same seed.

use crate::backoff::RetryPolicy;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::inject::{JobFaultPlan, JobInjectKind};
use crate::job::{AttemptRecord, JobId, JobOutcome, JobSpec, Rung, ShedReason};
use memoir_opt::{
    compile_lowered_with, compile_spec_with, default_spec, split_lowered_spec, LowerConfig,
    OptConfig, OptLevel,
};
use passman::{
    BudgetViolation, CompileCache, CompileCacheStats, FaultCause, PipelineSpec, StableHasher,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How many recent job latencies the p50/p99 window holds.
const LATENCY_WINDOW: usize = 64;

/// Service configuration: pool size, envelope thresholds, shared cache.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads (module-level parallelism; clamped to ≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Per-attempt wall-clock timeout. Composes with job budgets (the
    /// smaller of this and `max_pipeline_millis` is handed to the
    /// pipeline as an in-band budget) and arms the watchdog. `None`
    /// disables the watchdog entirely.
    pub timeout_ms: Option<u64>,
    /// Retry ladder and backoff curve.
    pub retry: RetryPolicy,
    /// Service seed: the only entropy source for backoff jitter.
    pub seed: u64,
    /// Per-pipeline-spec circuit breaker; `None` (the default) disables
    /// it — breaker admission depends on completion order, which is
    /// nondeterministic under concurrency.
    pub breaker: Option<BreakerConfig>,
    /// Early-shed when queue depth reaches this high-water mark.
    pub shed_qdepth: Option<usize>,
    /// Early-shed when windowed p99 latency exceeds this, in ms (only
    /// once the latency window is full, so cold starts are not shed).
    pub shed_p99_ms: Option<f64>,
    /// Shared cross-job compile cache for function-sharded pass results
    /// and lowered bodies; also backs the job-output cache.
    pub cache: Option<CompileCache>,
    /// Cache whole job outputs (keyed on module text + effective spec)
    /// in `cache` as well; requires `cache`.
    pub job_cache: bool,
    /// Deterministic service-level fault plans (`slow-job@3`, …).
    pub faults: Vec<JobFaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 64,
            timeout_ms: None,
            retry: RetryPolicy::default(),
            seed: 0,
            breaker: None,
            shed_qdepth: None,
            shed_p99_ms: None,
            cache: None,
            job_cache: false,
            faults: Vec::new(),
        }
    }
}

/// Monotonic service counters plus a latency snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs submitted (admitted + shed).
    pub submitted: u64,
    /// Terminal [`JobOutcome::Ok`] count.
    pub ok: u64,
    /// Terminal [`JobOutcome::DegradedOk`] count.
    pub degraded_ok: u64,
    /// Terminal [`JobOutcome::Shed`] count.
    pub shed: u64,
    /// Terminal [`JobOutcome::Failed`] count.
    pub failed: u64,
    /// Attempts recorded (including watchdog-abandoned ones).
    pub attempts: u64,
    /// Attempts beyond each job's first — the retry count.
    pub retries: u64,
    /// Attempts abandoned by the watchdog.
    pub timeouts: u64,
    /// Attempts that ended in a (caught) worker panic.
    pub worker_panics: u64,
    /// Whole-job outputs served from the job cache.
    pub job_cache_hits: u64,
    /// Compile-cache counters summed over every recorded attempt.
    pub compile_cache: CompileCacheStats,
    /// Median job latency over the recent window, in ms (0 when empty).
    pub p50_ms: f64,
    /// p99 job latency over the recent window, in ms (0 when empty).
    pub p99_ms: f64,
}

impl ServiceStats {
    /// Terminal outcomes delivered so far.
    pub fn terminal(&self) -> u64 {
        self.ok + self.degraded_ok + self.shed + self.failed
    }
}

#[derive(Default)]
struct StatsInner {
    submitted: u64,
    ok: u64,
    degraded_ok: u64,
    shed: u64,
    failed: u64,
    attempts: u64,
    retries: u64,
    timeouts: u64,
    worker_panics: u64,
    job_cache_hits: u64,
    compile_cache: CompileCacheStats,
}

/// Ring buffer of recent job latencies for load-based shedding.
struct LatencyWindow {
    samples: VecDeque<f64>,
}

impl LatencyWindow {
    fn new() -> Self {
        LatencyWindow {
            samples: VecDeque::with_capacity(LATENCY_WINDOW),
        }
    }

    fn record(&mut self, ms: f64) {
        if self.samples.len() == LATENCY_WINDOW {
            self.samples.pop_front();
        }
        self.samples.push_back(ms);
    }

    fn full(&self) -> bool {
        self.samples.len() == LATENCY_WINDOW
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

/// Per-job mutable state shared between its worker, the supervisor, and
/// the submitter's ticket.
struct JobState {
    id: JobId,
    spec: JobSpec,
    /// The submitted spec rendered once, for breaker keying.
    spec_string: String,
    attempts: Vec<AttemptRecord>,
    /// Attempt indices abandoned by the watchdog: the stuck worker's
    /// eventual result for these is discarded.
    abandoned: HashSet<usize>,
    done: bool,
    submitted_at: Instant,
    tx: mpsc::Sender<JobOutcome>,
}

type SharedJob = Arc<Mutex<JobState>>;

enum Event {
    Started {
        worker: usize,
        job: JobId,
        attempt: usize,
        deadline: Instant,
        state: SharedJob,
    },
    Finished {
        job: JobId,
        attempt: usize,
    },
    Shutdown,
}

struct WorkerSlot {
    poisoned: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

struct Shared {
    cfg: ServiceConfig,
    queue: Mutex<VecDeque<SharedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Admitted jobs not yet terminal.
    pending: AtomicUsize,
    drain_mx: Mutex<()>,
    drain_cv: Condvar,
    stats: Mutex<StatsInner>,
    latencies: Mutex<LatencyWindow>,
    breaker: Option<CircuitBreaker>,
    workers: Mutex<Vec<WorkerSlot>>,
    next_worker: AtomicUsize,
    /// Prototype sender for worker threads (supervisor owns the receiver).
    events: Mutex<mpsc::Sender<Event>>,
}

impl Shared {
    /// Delivers `outcome` for a job whose state lock is already held,
    /// exactly once. Returns `false` if the job was already finalized.
    fn finalize(&self, st: &mut JobState, outcome: JobOutcome) -> bool {
        if st.done {
            return false;
        }
        st.done = true;
        let success = matches!(
            outcome,
            JobOutcome::Ok { .. } | JobOutcome::DegradedOk { .. }
        );
        {
            let mut stats = self.stats.lock().expect("stats poisoned");
            match &outcome {
                JobOutcome::Ok { .. } => stats.ok += 1,
                JobOutcome::DegradedOk { .. } => stats.degraded_ok += 1,
                JobOutcome::Shed { .. } => stats.shed += 1,
                JobOutcome::Failed { .. } => stats.failed += 1,
            }
            stats.retries += (st.attempts.len() as u64).saturating_sub(1);
        }
        if let Some(b) = &self.breaker {
            b.on_result(&st.spec_string, success);
        }
        self.latencies
            .lock()
            .expect("latencies poisoned")
            .record(st.submitted_at.elapsed().as_secs_f64() * 1e3);
        // The submitter may have dropped its ticket; that loses nothing.
        let _ = st.tx.send(outcome);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        let _g = self.drain_mx.lock().expect("drain poisoned");
        self.drain_cv.notify_all();
        true
    }

    /// Records one attempt under the state lock, updating counters.
    fn record_attempt(&self, st: &mut JobState, rec: AttemptRecord) {
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.attempts += 1;
        stats.compile_cache.merge(rec.compile_cache);
        if matches!(rec.fault, Some(FaultCause::Panic(_))) {
            stats.worker_panics += 1;
        }
        st.attempts.push(rec);
    }

    /// Requeues an admitted job (bypasses the admission cap: the job
    /// already holds a queue slot conceptually).
    fn requeue(&self, job: SharedJob) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.push_back(job);
        self.queue_cv.notify_one();
    }

    fn spawn_worker(self: &Arc<Self>) {
        let id = self.next_worker.fetch_add(1, Ordering::SeqCst);
        let poisoned = Arc::new(AtomicBool::new(false));
        let events = self.events.lock().expect("events poisoned").clone();
        let shared = Arc::clone(self);
        let flag = Arc::clone(&poisoned);
        let handle = thread::Builder::new()
            .name(format!("memoird-worker-{id}"))
            .spawn(move || worker_loop(id, shared, flag, events))
            .expect("spawn worker");
        self.workers
            .lock()
            .expect("workers poisoned")
            .push(WorkerSlot {
                poisoned,
                handle: Some(handle),
            });
    }
}

/// A handle to one submitted job's eventual [`JobOutcome`].
pub struct JobTicket {
    /// The service-assigned job id (the submission index, which is also
    /// what fault-plan targets refer to).
    pub id: JobId,
    rx: mpsc::Receiver<JobOutcome>,
}

impl JobTicket {
    /// Blocks until the job's terminal outcome. Panics if the service
    /// was torn down without delivering one — which the service never
    /// does for an admitted job while it is alive.
    pub fn wait(self) -> JobOutcome {
        self.rx
            .recv()
            .expect("service dropped before the job completed")
    }
}

/// The running compile service. See the module docs for the envelope.
/// `submit` takes `&self` and the type is `Sync`, so clients may share
/// one service across threads (e.g. `std::thread::scope` closed-loop
/// drivers in the throughput bench).
pub struct Service {
    shared: Arc<Shared>,
    supervisor: Option<thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Starts the worker pool and supervisor.
    pub fn start(cfg: ServiceConfig) -> Service {
        let workers = cfg.workers.max(1);
        let (tx, rx) = mpsc::channel::<Event>();
        let shared = Arc::new(Shared {
            breaker: cfg.breaker.map(CircuitBreaker::new),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            drain_mx: Mutex::new(()),
            drain_cv: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            latencies: Mutex::new(LatencyWindow::new()),
            workers: Mutex::new(Vec::new()),
            next_worker: AtomicUsize::new(0),
            events: Mutex::new(tx),
        });
        for _ in 0..workers {
            shared.spawn_worker();
        }
        let sup_shared = Arc::clone(&shared);
        let supervisor = thread::Builder::new()
            .name("memoird-supervisor".to_string())
            .spawn(move || supervisor_loop(sup_shared, rx))
            .expect("spawn supervisor");
        Service {
            shared,
            supervisor: Some(supervisor),
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits one job, running admission control inline. The returned
    /// ticket resolves to the job's terminal outcome (shed outcomes
    /// resolve immediately).
    pub fn submit(&self, spec: JobSpec) -> JobTicket {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        self.shared.stats.lock().expect("stats poisoned").submitted += 1;
        let spec_string = spec.spec.to_string();

        let shed = {
            let q = self.shared.queue.lock().expect("queue poisoned");
            let qdepth = q.len();
            let cfg = &self.shared.cfg;
            if qdepth >= cfg.queue_cap {
                Some((qdepth, ShedReason::QueueFull))
            } else if cfg.shed_qdepth.is_some_and(|hw| qdepth >= hw) {
                Some((
                    qdepth,
                    ShedReason::QueueDepth {
                        threshold: cfg.shed_qdepth.unwrap(),
                    },
                ))
            } else if let Some(limit) = cfg.shed_p99_ms {
                let lat = self.shared.latencies.lock().expect("latencies poisoned");
                let p99 = lat.percentile(0.99);
                (lat.full() && p99 > limit)
                    .then_some((qdepth, ShedReason::HighLatency { p99_ms: p99 }))
            } else {
                None
            }
        };
        // Breaker admission runs last so an open breaker is only charged
        // for jobs that would otherwise have been admitted.
        let shed = shed.or_else(|| {
            let b = self.shared.breaker.as_ref()?;
            if b.admit(&spec_string) {
                None
            } else {
                let qdepth = self.shared.queue.lock().expect("queue poisoned").len();
                Some((qdepth, ShedReason::BreakerOpen))
            }
        });

        if let Some((qdepth, reason)) = shed {
            self.shared.stats.lock().expect("stats poisoned").shed += 1;
            let _ = tx.send(JobOutcome::Shed { qdepth, reason });
            return JobTicket { id, rx };
        }

        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::new(Mutex::new(JobState {
            id,
            spec,
            spec_string,
            attempts: Vec::new(),
            abandoned: HashSet::new(),
            done: false,
            submitted_at: Instant::now(),
            tx,
        }));
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.push_back(state);
            self.shared.queue_cv.notify_one();
        }
        JobTicket { id, rx }
    }

    /// Blocks until every admitted job has a terminal outcome.
    pub fn drain(&self) {
        let mut g = self.shared.drain_mx.lock().expect("drain poisoned");
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            let (guard, _) = self
                .shared
                .drain_cv
                .wait_timeout(g, Duration::from_millis(100))
                .expect("drain poisoned");
            g = guard;
        }
    }

    /// A stats snapshot (counters plus the current latency window).
    pub fn stats(&self) -> ServiceStats {
        let s = self.shared.stats.lock().expect("stats poisoned");
        let lat = self.shared.latencies.lock().expect("latencies poisoned");
        ServiceStats {
            submitted: s.submitted,
            ok: s.ok,
            degraded_ok: s.degraded_ok,
            shed: s.shed,
            failed: s.failed,
            attempts: s.attempts,
            retries: s.retries,
            timeouts: s.timeouts,
            worker_panics: s.worker_panics,
            job_cache_hits: s.job_cache_hits,
            compile_cache: s.compile_cache,
            p50_ms: lat.percentile(0.50),
            p99_ms: lat.percentile(0.99),
        }
    }

    /// Drains, stops the pool, joins every healthy thread, and returns
    /// the final stats. Workers poisoned by the watchdog are detached
    /// rather than joined (they may still be wedged in an abandoned
    /// attempt; their eventual results are already discarded).
    pub fn join(mut self) -> ServiceStats {
        self.drain();
        self.stop_threads();
        self.stats()
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        let _ = self
            .shared
            .events
            .lock()
            .expect("events poisoned")
            .send(Event::Shutdown);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let slots: Vec<WorkerSlot> =
            std::mem::take(&mut *self.shared.workers.lock().expect("workers poisoned"));
        for mut slot in slots {
            if let Some(h) = slot.handle.take() {
                if slot.poisoned.load(Ordering::SeqCst) {
                    drop(h); // detached; see `join` docs
                } else {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            self.stop_threads();
        }
    }
}

/// Convenience driver: starts a service, submits `jobs` in order (so job
/// ids are the vector indices), waits for every outcome, and joins.
/// This fixed submission order is what makes a whole batch reproducible
/// from `(cfg.seed, cfg.faults, jobs)` alone.
pub fn run_jobs(cfg: ServiceConfig, jobs: Vec<JobSpec>) -> (Vec<JobOutcome>, ServiceStats) {
    let svc = Service::start(cfg);
    let tickets: Vec<JobTicket> = jobs.into_iter().map(|j| svc.submit(j)).collect();
    let outcomes: Vec<JobOutcome> = tickets.into_iter().map(|t| t.wait()).collect();
    (outcomes, svc.join())
}

// ---------------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------------

fn worker_loop(
    me: usize,
    shared: Arc<Shared>,
    poisoned: Arc<AtomicBool>,
    events: mpsc::Sender<Event>,
) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if poisoned.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue poisoned");
            }
        };
        run_job(me, &shared, &poisoned, &events, job);
        if poisoned.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Runs one job's retry ladder inline until it is finalized, abandoned
/// out from under us, or handed back (never: requeue only happens on
/// abandonment, which poisons this worker).
fn run_job(
    me: usize,
    shared: &Arc<Shared>,
    poisoned: &Arc<AtomicBool>,
    events: &mpsc::Sender<Event>,
    job: SharedJob,
) {
    loop {
        // Snapshot what this attempt needs, then drop the lock for the
        // (potentially long) compile.
        let (job_id, attempt, spec) = {
            let st = job.lock().expect("job poisoned");
            if st.done {
                return;
            }
            (st.id, st.attempts.len(), st.spec.clone())
        };
        let retry = shared.cfg.retry;
        let rung = retry.rung_for_attempt(attempt);
        let backoff_ms = retry.backoff_ms(shared.cfg.seed, job_id, attempt);
        if backoff_ms > 0 {
            thread::sleep(Duration::from_millis(backoff_ms));
        }

        if let Some(timeout_ms) = shared.cfg.timeout_ms {
            let _ = events.send(Event::Started {
                worker: me,
                job: job_id,
                attempt,
                deadline: Instant::now() + Duration::from_millis(timeout_ms),
                state: Arc::clone(&job),
            });
        }
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute_attempt(shared, &spec, job_id, attempt, rung)
        }));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if shared.cfg.timeout_ms.is_some() {
            let _ = events.send(Event::Finished {
                job: job_id,
                attempt,
            });
        }
        if poisoned.load(Ordering::SeqCst) {
            // The watchdog abandoned this attempt (and recorded it);
            // discard our result and let the replacement carry on.
            return;
        }

        let mut st = job.lock().expect("job poisoned");
        if st.done || st.abandoned.contains(&attempt) || st.attempts.len() > attempt {
            return; // finalized or abandoned while we raced the watchdog
        }
        let outcome = match result {
            Err(panic) => Err(FaultCause::Panic(panic_message(panic))),
            Ok(r) => r,
        };
        match outcome {
            Ok(out) => {
                shared.record_attempt(
                    &mut st,
                    AttemptRecord {
                        rung,
                        backoff_ms,
                        fault: None,
                        degradations: out.degradations.clone(),
                        compile_cache: out.compile_cache,
                        ms,
                    },
                );
                let attempts = st.attempts.clone();
                let terminal = if rung.output_preserving() && out.clean {
                    JobOutcome::Ok {
                        output: out.output,
                        attempts,
                    }
                } else {
                    JobOutcome::DegradedOk {
                        output: out.output,
                        attempts,
                    }
                };
                shared.finalize(&mut st, terminal);
                return;
            }
            Err(fault) => {
                shared.record_attempt(
                    &mut st,
                    AttemptRecord {
                        rung,
                        backoff_ms,
                        fault: Some(fault),
                        degradations: Vec::new(),
                        compile_cache: CompileCacheStats::default(),
                        ms,
                    },
                );
                if st.attempts.len() >= retry.max_attempts.max(1) {
                    let attempts = st.attempts.clone();
                    shared.finalize(&mut st, JobOutcome::Failed { attempts });
                    return;
                }
                // Fall through: next ladder rung, same worker.
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// attempt execution
// ---------------------------------------------------------------------------

struct AttemptOutput {
    output: String,
    degradations: Vec<passman::Degradation>,
    compile_cache: CompileCacheStats,
    /// No pass-level degradations, no early stop, lowering produced its
    /// module: the output is exactly what the submitted config yields.
    clean: bool,
}

/// Whole-job cache entry: only degradation-free outputs are reusable.
#[derive(Clone)]
enum JobCacheEntry {
    Clean(String),
    Uncacheable,
}

/// The baseline rung's pipeline: the default scalar pipeline with every
/// optional MEMOIR optimization off, keeping a bare `lower` stage iff
/// the submitted spec lowered.
fn baseline_spec(original: &PipelineSpec) -> PipelineSpec {
    let base = default_spec(OptLevel::O3(OptConfig::none()));
    match split_lowered_spec(original) {
        Ok(Some(_)) => PipelineSpec::parse(&format!("{base},lower"))
            .expect("baseline lowered spec is well-formed"),
        _ => base,
    }
}

fn execute_attempt(
    shared: &Shared,
    spec: &JobSpec,
    job: JobId,
    attempt: usize,
    rung: Rung,
) -> Result<AttemptOutput, FaultCause> {
    let cfg = &shared.cfg;
    let cache_installed = cfg.cache.is_some();
    for plan in &cfg.faults {
        if !plan.fires(job, attempt, rung, cache_installed) {
            continue;
        }
        match plan.kind {
            JobInjectKind::WorkerPanic => panic!("injected worker-panic@{job}#{attempt}"),
            JobInjectKind::PoisonCache => panic!("injected poison-cache@{job}#{attempt}"),
            JobInjectKind::SlowJob => {
                // Stall well past the watchdog deadline (bounded, so a
                // poisoned worker always exits eventually).
                let ms = cfg
                    .timeout_ms
                    .map(|t| (t.saturating_mul(2) + 50).min(2000))
                    .unwrap_or(100);
                thread::sleep(Duration::from_millis(ms));
            }
        }
    }

    let effective_spec = if rung == Rung::Baseline {
        baseline_spec(&spec.spec)
    } else {
        spec.spec.clone()
    };
    let threads = if rung == Rung::Full { spec.threads } else { 1 };
    let cache = if rung.uses_cache() {
        cfg.cache.clone()
    } else {
        None
    };
    let mut budgets = spec.budgets;
    if let Some(t) = cfg.timeout_ms {
        budgets.max_pipeline_millis = Some(match budgets.max_pipeline_millis {
            Some(b) => b.min(t),
            None => t,
        });
    }

    // Whole-job output cache: coherent because a clean output is a pure
    // function of (module text, effective spec).
    if cfg.job_cache && rung.uses_cache() {
        if let Some(cache) = &cache {
            let mut h = StableHasher::new();
            h.write_str(&memoir_ir::printer::print_module(&spec.module));
            h.write_str(&effective_spec.to_string());
            let fp = h.fingerprint();
            let mut fresh: Option<Result<AttemptOutput, FaultCause>> = None;
            let entry = cache.get_or_compute::<JobCacheEntry, _>("job", fp, || {
                let r = compile_attempt(spec, &effective_spec, threads, budgets, Some(cache));
                let e = match &r {
                    Ok(out) if out.clean => JobCacheEntry::Clean(out.output.clone()),
                    _ => JobCacheEntry::Uncacheable,
                };
                fresh = Some(r);
                e
            });
            return match fresh {
                Some(r) => r, // we were the producer
                None => match entry {
                    JobCacheEntry::Clean(output) => {
                        shared.stats.lock().expect("stats poisoned").job_cache_hits += 1;
                        Ok(AttemptOutput {
                            output,
                            degradations: Vec::new(),
                            compile_cache: CompileCacheStats {
                                hits: 1,
                                ..Default::default()
                            },
                            clean: true,
                        })
                    }
                    // A cached non-clean marker: recompute (the marker
                    // only says "don't reuse", not "will fail again").
                    JobCacheEntry::Uncacheable => {
                        compile_attempt(spec, &effective_spec, threads, budgets, Some(cache))
                    }
                },
            };
        }
    }
    compile_attempt(spec, &effective_spec, threads, budgets, cache.as_ref())
}

/// One pipeline run (MEMOIR-only or through-lowering) with the attempt's
/// effective configuration.
fn compile_attempt(
    spec: &JobSpec,
    effective_spec: &PipelineSpec,
    threads: usize,
    budgets: passman::Budgets,
    cache: Option<&CompileCache>,
) -> Result<AttemptOutput, FaultCause> {
    let mut m = spec.module.clone();
    let lowered = split_lowered_spec(effective_spec)
        .map_err(|e| FaultCause::PassFailed(format!("bad lowered spec: {e}")))?;
    match lowered {
        Some(pipeline) => {
            let lcfg = LowerConfig {
                policy: spec.policy,
                budgets,
                verify: None,
                inject: None,
                threads,
                cross_check: true,
                full_clone_snapshots: false,
                cache: cache.cloned(),
                adaptive: false,
            };
            let out = compile_lowered_with(&mut m, &pipeline, &lcfg)
                .map_err(|e| FaultCause::PassFailed(e.to_string()))?;
            match out.lowered {
                Some(lm) => Ok(AttemptOutput {
                    output: lir::printer::print_module(&lm),
                    clean: out.report.run.degradations.is_empty() && !out.report.run.stopped_early,
                    degradations: out.report.run.degradations,
                    compile_cache: out.report.run.compile_cache,
                }),
                // No low-level module means the job's contract (produce
                // lowered output) was not met: count it as a fault so
                // the ladder retries on a weaker rung.
                None => Err(FaultCause::PassFailed(
                    "lowering produced no output (stage degraded or pipeline stopped early)"
                        .to_string(),
                )),
            }
        }
        None => {
            let report = compile_spec_with(&mut m, effective_spec, |pm| {
                let mut pm = pm
                    .on_fault(spec.policy)
                    .with_budgets(budgets)
                    .with_threads(threads);
                if let Some(c) = cache {
                    pm = pm.with_compile_cache(c.clone());
                }
                pm
            })
            .map_err(|e| FaultCause::PassFailed(e.to_string()))?;
            Ok(AttemptOutput {
                output: memoir_ir::printer::print_module(&m),
                clean: report.run.degradations.is_empty() && !report.run.stopped_early,
                degradations: report.run.degradations,
                compile_cache: report.run.compile_cache,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// supervisor (watchdog)
// ---------------------------------------------------------------------------

struct Inflight {
    worker: usize,
    deadline: Instant,
    state: SharedJob,
}

fn supervisor_loop(shared: Arc<Shared>, rx: mpsc::Receiver<Event>) {
    let mut inflight: HashMap<(JobId, usize), Inflight> = HashMap::new();
    loop {
        let next_deadline = inflight.values().map(|i| i.deadline).min();
        let event = match next_deadline {
            Some(d) => {
                let wait = d.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ev) => Some(ev),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(ev) => Some(ev),
                Err(_) => return,
            },
        };
        if let Some(ev) = event {
            if !handle_event(&mut inflight, ev) {
                return;
            }
        }
        // Drain whatever else is queued before expiring deadlines, so a
        // Finished that raced the watchdog wins over the abandonment.
        while let Ok(ev) = rx.try_recv() {
            if !handle_event(&mut inflight, ev) {
                return;
            }
        }
        expire_due(&shared, &mut inflight);
    }
}

/// Returns `false` on shutdown.
fn handle_event(inflight: &mut HashMap<(JobId, usize), Inflight>, ev: Event) -> bool {
    match ev {
        Event::Started {
            worker,
            job,
            attempt,
            deadline,
            state,
        } => {
            inflight.insert(
                (job, attempt),
                Inflight {
                    worker,
                    deadline,
                    state,
                },
            );
            true
        }
        Event::Finished { job, attempt } => {
            inflight.remove(&(job, attempt));
            true
        }
        Event::Shutdown => false,
    }
}

fn expire_due(shared: &Arc<Shared>, inflight: &mut HashMap<(JobId, usize), Inflight>) {
    let now = Instant::now();
    let due: Vec<(JobId, usize)> = inflight
        .iter()
        .filter(|(_, i)| i.deadline <= now)
        .map(|(k, _)| *k)
        .collect();
    for key in due {
        let Some(inf) = inflight.remove(&key) else {
            continue;
        };
        let (job_id, attempt) = key;
        let timeout_ms = shared.cfg.timeout_ms.unwrap_or(0);
        let retry = shared.cfg.retry;

        let mut st = inf.state.lock().expect("job poisoned");
        if st.done || st.attempts.len() > attempt {
            continue; // the worker beat us to it
        }
        let actual_ms =
            (now - (inf.deadline - Duration::from_millis(timeout_ms))).as_millis() as u64;
        shared.record_attempt(
            &mut st,
            AttemptRecord {
                rung: retry.rung_for_attempt(attempt),
                backoff_ms: retry.backoff_ms(shared.cfg.seed, job_id, attempt),
                fault: Some(FaultCause::Budget(BudgetViolation::PipelineTime {
                    limit_ms: timeout_ms,
                    actual_ms,
                })),
                degradations: Vec::new(),
                compile_cache: CompileCacheStats::default(),
                ms: timeout_ms as f64,
            },
        );
        st.abandoned.insert(attempt);
        shared.stats.lock().expect("stats poisoned").timeouts += 1;

        // Poison the stuck worker and backfill the pool.
        {
            let workers = shared.workers.lock().expect("workers poisoned");
            if let Some(slot) = workers.get(inf.worker) {
                slot.poisoned.store(true, Ordering::SeqCst);
            }
        }
        shared.spawn_worker();

        if st.attempts.len() >= retry.max_attempts.max(1) {
            let attempts = st.attempts.clone();
            shared.finalize(&mut st, JobOutcome::Failed { attempts });
        } else {
            drop(st);
            shared.requeue(Arc::clone(&inf.state));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::synth_ir::build_synth_ir;

    fn job(n: usize, seed: u64, spec: &str) -> JobSpec {
        JobSpec::new(
            format!("synth({n},{seed})"),
            build_synth_ir(n, seed),
            PipelineSpec::parse(spec).unwrap(),
        )
    }

    const SPEC: &str = "ssa-construct,constprop,dce,ssa-destruct";

    #[test]
    fn happy_path_batch_is_all_ok() {
        let jobs: Vec<JobSpec> = (0..6).map(|i| job(3, i, SPEC)).collect();
        let (outcomes, stats) = run_jobs(
            ServiceConfig {
                workers: 3,
                ..Default::default()
            },
            jobs,
        );
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| o.kind() == "ok"), "{stats:?}");
        assert_eq!(stats.terminal(), 6);
        assert_eq!(stats.retries, 0);
        assert!(outcomes.iter().all(|o| o.output().is_some()));
    }

    #[test]
    fn worker_panic_is_contained_and_retried() {
        let jobs: Vec<JobSpec> = (0..3).map(|i| job(3, i, SPEC)).collect();
        let cfg = ServiceConfig {
            workers: 2,
            faults: vec!["worker-panic@1".parse().unwrap()],
            retry: RetryPolicy {
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (outcomes, stats) = run_jobs(cfg, jobs);
        // Job 1 panics on attempt 0, succeeds on the retry; the retry
        // rung (Full again: 1 same-config retry) is output-preserving,
        // so the job still reports Ok.
        assert_eq!(outcomes[1].kind(), "ok", "{:?}", outcomes[1].attempts());
        assert_eq!(outcomes[1].attempts().len(), 2);
        assert!(matches!(
            outcomes[1].attempts()[0].fault,
            Some(FaultCause::Panic(_))
        ));
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.retries, 1);
        // Fault evidence is aggregated, not dropped.
        assert_eq!(outcomes[1].all_degradations().len(), 1);
        assert_eq!(outcomes[1].all_degradations()[0].pass, "job");
        // The other jobs are untouched.
        assert_eq!(outcomes[0].kind(), "ok");
        assert_eq!(outcomes[2].kind(), "ok");
    }

    #[test]
    fn slow_job_times_out_and_recovers_on_retry() {
        let jobs: Vec<JobSpec> = (0..3).map(|i| job(3, i, SPEC)).collect();
        let cfg = ServiceConfig {
            workers: 2,
            timeout_ms: Some(150),
            faults: vec!["slow-job@0".parse().unwrap()],
            retry: RetryPolicy {
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (outcomes, stats) = run_jobs(cfg, jobs);
        assert_eq!(outcomes[0].kind(), "ok", "{:?}", outcomes[0].attempts());
        let first = &outcomes[0].attempts()[0];
        assert!(
            matches!(
                first.fault,
                Some(FaultCause::Budget(BudgetViolation::PipelineTime { .. }))
            ),
            "{first:?}"
        );
        assert!(stats.timeouts >= 1);
        assert_eq!(outcomes[1].kind(), "ok");
        assert_eq!(outcomes[2].kind(), "ok");
        assert_eq!(stats.terminal(), 3, "zero lost jobs under timeout");
    }

    #[test]
    fn poisoned_cache_escapes_via_the_no_cache_rung() {
        let cache = CompileCache::new();
        let jobs: Vec<JobSpec> = (0..2).map(|i| job(3, i, SPEC)).collect();
        let cfg = ServiceConfig {
            workers: 1,
            cache: Some(cache),
            faults: vec!["poison-cache@0".parse().unwrap()],
            retry: RetryPolicy {
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (outcomes, _stats) = run_jobs(cfg, jobs);
        // Job 0 panics on every cache-using rung (Full, Full, Serial)
        // and only succeeds once the ladder reaches NoCache — which is
        // still output-preserving, hence Ok.
        assert_eq!(outcomes[0].kind(), "ok", "{:?}", outcomes[0].attempts());
        let rungs: Vec<Rung> = outcomes[0].attempts().iter().map(|a| a.rung).collect();
        assert_eq!(
            rungs,
            vec![Rung::Full, Rung::Full, Rung::Serial, Rung::NoCache]
        );
        assert_eq!(outcomes[1].kind(), "ok");
    }

    #[test]
    fn queue_full_sheds_with_structured_outcome() {
        // Zero-capacity queue: everything is shed, nothing is lost.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_cap: 0,
            ..Default::default()
        });
        let t = svc.submit(job(2, 0, SPEC));
        let out = t.wait();
        match out {
            JobOutcome::Shed {
                reason: ShedReason::QueueFull,
                ..
            } => {}
            other => panic!("expected QueueFull shed, got {other:?}"),
        }
        let stats = svc.join();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.terminal(), 1);
    }

    #[test]
    fn exhausted_ladder_reports_failed_with_all_attempts() {
        let jobs = vec![job(2, 0, SPEC)];
        let cfg = ServiceConfig {
            workers: 1,
            faults: vec![
                "worker-panic@0#0".parse().unwrap(),
                "worker-panic@0#1".parse().unwrap(),
                "worker-panic@0#2".parse().unwrap(),
            ],
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (outcomes, stats) = run_jobs(cfg, jobs);
        assert_eq!(outcomes[0].kind(), "failed");
        assert_eq!(outcomes[0].attempts().len(), 3);
        assert_eq!(stats.failed, 1);
        assert_eq!(outcomes[0].all_degradations().len(), 3);
    }

    #[test]
    fn baseline_rung_reports_degraded_ok() {
        let jobs = vec![job(3, 1, SPEC)];
        let cfg = ServiceConfig {
            workers: 1,
            faults: vec![
                "worker-panic@0#0".parse().unwrap(),
                "worker-panic@0#1".parse().unwrap(),
                "worker-panic@0#2".parse().unwrap(),
                "worker-panic@0#3".parse().unwrap(),
            ],
            retry: RetryPolicy {
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (outcomes, _) = run_jobs(cfg, jobs);
        assert_eq!(
            outcomes[0].kind(),
            "degraded-ok",
            "{:?}",
            outcomes[0]
                .attempts()
                .iter()
                .map(|a| (a.rung, a.fault.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(outcomes[0].attempts().last().unwrap().rung, Rung::Baseline);
    }

    #[test]
    fn through_lowering_jobs_emit_lir() {
        let jobs = vec![job(
            3,
            0,
            "ssa-construct,dce,ssa-destruct,lower,mem2reg,dce",
        )];
        let (outcomes, _) = run_jobs(
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            jobs,
        );
        assert_eq!(outcomes[0].kind(), "ok");
        let out = outcomes[0].output().unwrap();
        assert!(
            out.contains("values {") && !out.starts_with("module "),
            "not lir output:\n{out}"
        );
    }

    #[test]
    fn fault_injection_does_not_change_output_bytes() {
        let mk = || (0..4).map(|i| job(3, i, SPEC)).collect::<Vec<_>>();
        let clean_cfg = ServiceConfig {
            workers: 2,
            seed: 7,
            retry: RetryPolicy {
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let faulty_cfg = ServiceConfig {
            timeout_ms: Some(200),
            faults: vec![
                "worker-panic@1".parse().unwrap(),
                "slow-job@2".parse().unwrap(),
            ],
            ..clean_cfg.clone()
        };
        let (clean, _) = run_jobs(clean_cfg, mk());
        let (faulty, _) = run_jobs(faulty_cfg, mk());
        for (i, (a, b)) in clean.iter().zip(&faulty).enumerate() {
            assert_eq!(a.output(), b.output(), "job {i} output diverged");
        }
    }

    #[test]
    fn job_cache_serves_repeat_outputs() {
        let cache = CompileCache::new();
        let jobs: Vec<JobSpec> = (0..4).map(|_| job(3, 9, SPEC)).collect();
        let cfg = ServiceConfig {
            workers: 1,
            cache: Some(cache),
            job_cache: true,
            ..Default::default()
        };
        let (outcomes, stats) = run_jobs(cfg, jobs);
        assert!(outcomes.iter().all(|o| o.kind() == "ok"));
        assert!(stats.job_cache_hits >= 1, "{stats:?}");
        let first = outcomes[0].output().unwrap();
        assert!(outcomes.iter().all(|o| o.output().unwrap() == first));
    }

    #[test]
    fn breaker_sheds_after_consecutive_failures() {
        // One worker + always-failing spec via worker-panic@* on every
        // attempt is awkward; instead fail deterministically by
        // exhausting a 1-attempt ladder with a panic on attempt 0.
        let cfg = ServiceConfig {
            workers: 1,
            breaker: Some(BreakerConfig {
                threshold: 2,
                cooldown: 2,
            }),
            faults: vec!["worker-panic@*#0".parse().unwrap()],
            retry: RetryPolicy {
                max_attempts: 1,
                base_backoff_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let svc = Service::start(cfg);
        // Serialize: wait each ticket before submitting the next so the
        // breaker sees a deterministic failure sequence.
        let mut kinds = Vec::new();
        for i in 0..5 {
            let t = svc.submit(job(2, i, SPEC));
            kinds.push(t.wait().kind());
        }
        let stats = svc.join();
        assert_eq!(
            kinds,
            vec!["failed", "failed", "shed", "shed", "failed"],
            "{stats:?}"
        );
        assert!(matches!(
            stats,
            ServiceStats {
                shed: 2,
                failed: 3,
                ..
            }
        ));
    }
}
