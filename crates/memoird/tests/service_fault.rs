//! Service-level robustness integration tests: determinism of the retry
//! envelope across runs and worker counts, and zero-lost-jobs under
//! mixed fault injection.

use memoird::{JobOutcome, JobSpec, RetryPolicy, ServiceConfig};
use passman::{CompileCache, FaultCause, PipelineSpec};
use proptest::prelude::*;
use workloads::synth_ir::build_synth_ir;

const SPEC: &str = "ssa-construct,constprop,dce,ssa-destruct";

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            JobSpec::new(
                format!("synth(3,{i})"),
                build_synth_ir(3, i as u64),
                PipelineSpec::parse(SPEC).unwrap(),
            )
        })
        .collect()
}

/// A stable rendering of a fault cause (injected panic messages are
/// deterministic; timing-carrying causes are normalized to their kind).
fn stable_fault(f: &FaultCause) -> String {
    match f {
        FaultCause::Budget(_) => "budget".to_string(),
        other => format!("{other:?}"),
    }
}

/// Everything about a batch that the determinism guarantee covers:
/// outcome kind, output bytes, and the per-attempt retry schedule
/// (rung, backoff, fault) — wall-clock numbers excluded.
type AttemptRecord = (String, u64, Option<String>);

fn batch_fingerprint(outcomes: &[JobOutcome]) -> Vec<(String, Option<String>, Vec<AttemptRecord>)> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.kind().to_string(),
                o.output().map(str::to_string),
                o.attempts()
                    .iter()
                    .map(|a| {
                        (
                            a.rung.name().to_string(),
                            a.backoff_ms,
                            a.fault.as_ref().map(stable_fault),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    // Each case runs three full service batches; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed + fault plan ⇒ identical retry schedule (rungs,
    /// backoff delays, faults) and identical outcomes/outputs across
    /// repeat runs AND across worker-thread counts.
    #[test]
    fn retry_schedule_is_deterministic_across_runs_and_threads(
        seed in any::<u64>(),
        base_backoff in 1u64..16,
        plan_pick in any::<u64>(),
        target in 0u64..4,
        attempt_pick in 0u64..3,
    ) {
        let plan = match plan_pick % 3 {
            0 => Some(format!("worker-panic@{target}#{attempt_pick}")),
            1 => Some(format!("poison-cache@{target}")),
            _ => None,
        };
        let cfg = |workers: usize| ServiceConfig {
            workers,
            seed,
            cache: Some(CompileCache::new()),
            retry: RetryPolicy {
                base_backoff_ms: base_backoff,
                max_backoff_ms: 50,
                ..Default::default()
            },
            faults: plan.iter().map(|p| p.parse().unwrap()).collect(),
            ..Default::default()
        };
        let (serial_a, _) = memoird::run_jobs(cfg(1), jobs(4));
        let (serial_b, _) = memoird::run_jobs(cfg(1), jobs(4));
        let (wide, _) = memoird::run_jobs(cfg(4), jobs(4));
        let fp = batch_fingerprint(&serial_a);
        prop_assert_eq!(&fp, &batch_fingerprint(&serial_b), "run-to-run");
        prop_assert_eq!(&fp, &batch_fingerprint(&wide), "workers=1 vs workers=4");
        // And every job resolved, whatever the plan did.
        prop_assert_eq!(serial_a.len(), 4);
        prop_assert!(serial_a.iter().all(|o| o.kind() != "shed"));
    }
}

/// The CI service-integration smoke: a mixed batch under slow-job and
/// worker-panic injection with the watchdog armed loses no jobs, and
/// recovered jobs report byte-identical output to a clean run.
#[test]
fn envelope_zero_lost_jobs_under_mixed_injection() {
    let clean_cfg = ServiceConfig {
        workers: 3,
        seed: 11,
        retry: RetryPolicy {
            base_backoff_ms: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let faulty_cfg = ServiceConfig {
        timeout_ms: Some(250),
        faults: vec![
            "slow-job@1".parse().unwrap(),
            "worker-panic@3".parse().unwrap(),
            "worker-panic@4#1".parse().unwrap(),
        ],
        ..clean_cfg.clone()
    };
    let (clean, _) = memoird::run_jobs(clean_cfg, jobs(6));
    let (faulty, stats) = memoird::run_jobs(faulty_cfg, jobs(6));

    assert_eq!(stats.terminal(), 6, "zero lost jobs: {stats:?}");
    assert_eq!(stats.submitted, 6);
    assert!(stats.timeouts >= 1, "slow-job@1 should trip the watchdog");
    assert!(stats.worker_panics >= 1);
    for (i, (a, b)) in clean.iter().zip(&faulty).enumerate() {
        assert_eq!(a.kind(), "ok", "clean job {i}");
        assert_eq!(
            a.output(),
            b.output(),
            "job {i} output diverged under injection"
        );
    }
    // Fault evidence from every attempt is preserved on the outcome.
    assert!(!faulty[3].all_degradations().is_empty());
}
