//! Lazily computed, cached, invalidation-aware analyses.
//!
//! Passes request analyses through an [`AnalysisManager`] instead of
//! computing them inline. The manager caches each result per function (or
//! per module for [`ModuleAnalysis`]) and returns `Rc` clones, so a pass
//! can hold a result while mutating unrelated state. Results stay valid
//! until a pass *declares* it mutated the function
//! ([`Mutation`](crate::Mutation) in its
//! [`PassOutcome`](crate::PassOutcome)); only then are the function's
//! cached analyses dropped.
//!
//! The manager keeps hit/miss counters per analysis, plus a high-water
//! mark of how many times any single `(function, analysis)` pair was
//! computed between invalidations — the caching contract says this must
//! be 1, and tests assert it stays there.

use crate::IrUnit;
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// A per-function analysis over an IR unit.
///
/// Implementations are zero-sized marker types; the computed result is
/// `Output`. The `NAME` is used for cache counters and reports.
pub trait Analysis<M: IrUnit>: 'static {
    /// The computed result type.
    type Output: 'static;

    /// Stable, human-readable analysis name (e.g. `"dom-tree"`).
    const NAME: &'static str;

    /// Computes the analysis for one function.
    fn compute(m: &M, f: M::FuncKey) -> Self::Output;
}

/// A module-wide analysis over an IR unit (e.g. field affinity, which
/// aggregates accesses across all functions).
pub trait ModuleAnalysis<M: IrUnit>: 'static {
    /// The computed result type.
    type Output: 'static;

    /// Stable, human-readable analysis name.
    const NAME: &'static str;

    /// Computes the analysis for the whole module.
    fn compute(m: &M) -> Self::Output;
}

/// Hit/miss counters for one analysis kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounter {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// Maximum number of computes observed for a single
    /// `(function, analysis)` pair between invalidations of that
    /// function. The caching contract keeps this at 1.
    pub max_computes_between_invalidations: u64,
}

/// Caches per-function and module-wide analysis results.
pub struct AnalysisManager<M: IrUnit> {
    cache: HashMap<(M::FuncKey, TypeId), Rc<dyn Any>>,
    module_cache: HashMap<TypeId, Rc<dyn Any>>,
    counters: BTreeMap<&'static str, CacheCounter>,
    /// Per-function invalidation generation; bumped by `invalidate`.
    generation: HashMap<M::FuncKey, u64>,
    /// Global epoch; bumped by `invalidate_all`.
    epoch: u64,
    /// Computes per `(function, analysis)` in the current generation.
    computes: HashMap<(M::FuncKey, TypeId), (u64, u64, u64)>, // (epoch, gen, count)
    invalidation_events: u64,
}

impl<M: IrUnit> std::fmt::Debug for AnalysisManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisManager")
            .field("cached_entries", &self.cache.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl<M: IrUnit> Default for AnalysisManager<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: IrUnit> AnalysisManager<M> {
    /// An empty manager.
    pub fn new() -> Self {
        AnalysisManager {
            cache: HashMap::new(),
            module_cache: HashMap::new(),
            counters: BTreeMap::new(),
            generation: HashMap::new(),
            epoch: 0,
            computes: HashMap::new(),
            invalidation_events: 0,
        }
    }

    /// Returns the cached result of analysis `A` for function `f`,
    /// computing (and caching) it on first request.
    pub fn get<A: Analysis<M>>(&mut self, m: &M, f: M::FuncKey) -> Rc<A::Output> {
        let key = (f, TypeId::of::<A>());
        if let Some(hit) = self.cache.get(&key) {
            self.counters.entry(A::NAME).or_default().hits += 1;
            return Rc::clone(hit)
                .downcast::<A::Output>()
                .expect("analysis cache type");
        }
        let value: Rc<A::Output> = Rc::new(A::compute(m, f));
        let gen = self.generation.get(&f).copied().unwrap_or(0);
        let entry = self.computes.entry(key).or_insert((self.epoch, gen, 0));
        if entry.0 == self.epoch && entry.1 == gen {
            entry.2 += 1;
        } else {
            *entry = (self.epoch, gen, 1);
        }
        let count = entry.2;
        let ctr = self.counters.entry(A::NAME).or_default();
        ctr.misses += 1;
        ctr.max_computes_between_invalidations = ctr.max_computes_between_invalidations.max(count);
        self.cache.insert(key, Rc::clone(&value) as Rc<dyn Any>);
        value
    }

    /// Returns the cached result of module-wide analysis `A`, computing
    /// (and caching) it on first request.
    pub fn get_module<A: ModuleAnalysis<M>>(&mut self, m: &M) -> Rc<A::Output> {
        let key = TypeId::of::<A>();
        if let Some(hit) = self.module_cache.get(&key) {
            self.counters.entry(A::NAME).or_default().hits += 1;
            return Rc::clone(hit)
                .downcast::<A::Output>()
                .expect("analysis cache type");
        }
        let value: Rc<A::Output> = Rc::new(A::compute(m));
        self.counters.entry(A::NAME).or_default().misses += 1;
        self.module_cache
            .insert(key, Rc::clone(&value) as Rc<dyn Any>);
        value
    }

    /// Drops every cached analysis for function `f` (and all module-wide
    /// analyses, which may depend on it).
    pub fn invalidate(&mut self, f: M::FuncKey) {
        *self.generation.entry(f).or_insert(0) += 1;
        self.invalidation_events += 1;
        self.cache.retain(|(k, _), _| *k != f);
        self.module_cache.clear();
    }

    /// Drops every cached analysis.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.invalidation_events += 1;
        self.cache.clear();
        self.module_cache.clear();
    }

    /// Hit/miss counters per analysis name.
    pub fn counters(&self) -> &BTreeMap<&'static str, CacheCounter> {
        &self.counters
    }

    /// Counter for one analysis name (zeroed if never requested).
    pub fn counter(&self, name: &str) -> CacheCounter {
        self.counters.get(name).copied().unwrap_or_default()
    }

    /// Number of invalidation events so far.
    pub fn invalidation_events(&self) -> u64 {
        self.invalidation_events
    }

    /// Number of live cached per-function entries (for tests).
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }
}
