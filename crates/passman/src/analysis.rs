//! Lazily computed, cached, fingerprint-validated analyses — the
//! demand-driven half of the incremental query layer.
//!
//! Passes request analyses through an [`AnalysisManager`] instead of
//! computing them inline. The manager caches each result per function (or
//! per module for [`ModuleAnalysis`]) and returns `Rc` clones, so a pass
//! can hold a result while mutating unrelated state.
//!
//! ## Invalidation: fingerprints first, generations as fallback
//!
//! Historically the manager *push*-invalidated: a pass declaring
//! [`Mutation`] dropped every cached result for the
//! declared functions (or for everything, under `Mutation::All`/`None`),
//! even when the pass left most functions byte-identical. Since the
//! query-layer refactor, mutation declarations only mark the manager
//! *stale* ([`note_mutation`](AnalysisManager::note_mutation)); the next
//! query recomputes the module's [`Fingerprint`]s and drops **only** the
//! entries whose function's fingerprint actually changed — a recomputed
//! fingerprint that matches keeps the cached dom tree/liveness/escape
//! result even though a pass reported `changed`. Because fingerprints
//! fold in transitive callee fingerprints, a `Mutation::Funcs`-scoped
//! pass that changes a callee automatically invalidates the *callers'*
//! entries too (the callgraph-edge audit gap).
//!
//! IR units that do not implement
//! [`IrUnit::fingerprints`] keep the legacy
//! generation-counter behaviour unchanged. Explicit
//! [`invalidate`](AnalysisManager::invalidate) /
//! [`invalidate_all`](AnalysisManager::invalidate_all) always force-drop
//! regardless of fingerprints — they remain the escape hatch for passes
//! that know better (`Mutation::Handled`) and for fault rollback.
//!
//! The manager keeps hit/miss counters per analysis, plus a high-water
//! mark of how many times any single `(function, analysis)` pair was
//! computed between invalidations — the caching contract says this must
//! be 1, and tests assert it stays there. A fingerprint-driven drop
//! counts as an invalidation of that function for this contract.
//!
//! The manager also carries the (optional) cross-job
//! [`CompileCache`] handle, so sharded executors can
//! reach it — the manager is the only state passes see.

use crate::cache::{CompileCache, CompileCacheStats};
use crate::fingerprint::Fingerprint;
use crate::pass::Mutation;
use crate::IrUnit;
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// A per-function analysis over an IR unit.
///
/// Implementations are zero-sized marker types; the computed result is
/// `Output`. The `NAME` is used for cache counters and reports.
pub trait Analysis<M: IrUnit>: 'static {
    /// The computed result type.
    type Output: 'static;

    /// Stable, human-readable analysis name (e.g. `"dom-tree"`).
    const NAME: &'static str;

    /// Computes the analysis for one function.
    fn compute(m: &M, f: M::FuncKey) -> Self::Output;
}

/// A module-wide analysis over an IR unit (e.g. field affinity, which
/// aggregates accesses across all functions).
pub trait ModuleAnalysis<M: IrUnit>: 'static {
    /// The computed result type.
    type Output: 'static;

    /// Stable, human-readable analysis name.
    const NAME: &'static str;

    /// Computes the analysis for the whole module.
    fn compute(m: &M) -> Self::Output;
}

/// Hit/miss counters for one analysis kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounter {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// Maximum number of computes observed for a single
    /// `(function, analysis)` pair between invalidations of that
    /// function. The caching contract keeps this at 1.
    pub max_computes_between_invalidations: u64,
}

/// Counters for the fingerprint-driven retention machinery, reported per
/// run alongside the per-analysis [`CacheCounter`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FingerprintStats {
    /// Module-wide fingerprint recomputations (one per batch of mutation
    /// declarations, performed lazily at the next query).
    pub refreshes: u64,
    /// Cached per-function entries that *survived* a refresh because
    /// their function's fingerprint was unchanged — each one an analysis
    /// the legacy scheme would have recomputed.
    pub retained: u64,
    /// Cached per-function entries dropped because their function's
    /// fingerprint changed (or the function disappeared).
    pub dropped: u64,
}

impl FingerprintStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: FingerprintStats) {
        self.refreshes += other.refreshes;
        self.retained += other.retained;
        self.dropped += other.dropped;
    }

    /// Counter-wise difference (`self - earlier`).
    pub fn since(&self, earlier: FingerprintStats) -> FingerprintStats {
        FingerprintStats {
            refreshes: self.refreshes - earlier.refreshes,
            retained: self.retained - earlier.retained,
            dropped: self.dropped - earlier.dropped,
        }
    }
}

/// A cached per-function analysis result, stamped with the fingerprint
/// of the function it was computed for.
type StampedResult = (Fingerprint, Rc<dyn Any>);

/// Caches per-function and module-wide analysis results (see the module
/// docs for the fingerprint-based invalidation scheme).
pub struct AnalysisManager<M: IrUnit> {
    /// Per-function results, stamped with the fingerprint of the function
    /// they were computed for (`Fingerprint(0)` when the IR does not
    /// support fingerprints).
    cache: HashMap<(M::FuncKey, TypeId), StampedResult>,
    module_cache: HashMap<TypeId, Rc<dyn Any>>,
    counters: BTreeMap<&'static str, CacheCounter>,
    /// Per-function invalidation generation; bumped by `invalidate` and
    /// by fingerprint-driven drops.
    generation: HashMap<M::FuncKey, u64>,
    /// Global epoch; bumped by `invalidate_all`.
    epoch: u64,
    /// Computes per `(function, analysis)` in the current generation.
    computes: HashMap<(M::FuncKey, TypeId), (u64, u64, u64)>, // (epoch, gen, count)
    invalidation_events: u64,
    /// Last known per-function fingerprints (empty until first refresh).
    fingerprints: HashMap<M::FuncKey, Fingerprint>,
    fp_initialized: bool,
    /// Set by `note_mutation`/`invalidate*`; the next query refreshes.
    fp_dirty: bool,
    /// All mutations since the last refresh were `Mutation::Handled`
    /// (the pass kept the cache coherent itself): re-stamp instead of
    /// dropping.
    pending_handled_only: bool,
    fp_stats: FingerprintStats,
    /// Cross-job pass-output/lowering cache, when one is installed.
    compile_cache: Option<CompileCache>,
    cc_stats: CompileCacheStats,
}

impl<M: IrUnit> std::fmt::Debug for AnalysisManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisManager")
            .field("cached_entries", &self.cache.len())
            .field("counters", &self.counters)
            .field("fingerprints", &self.fp_stats)
            .finish()
    }
}

impl<M: IrUnit> Default for AnalysisManager<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: IrUnit> AnalysisManager<M> {
    /// An empty manager.
    pub fn new() -> Self {
        AnalysisManager {
            cache: HashMap::new(),
            module_cache: HashMap::new(),
            counters: BTreeMap::new(),
            generation: HashMap::new(),
            epoch: 0,
            computes: HashMap::new(),
            invalidation_events: 0,
            fingerprints: HashMap::new(),
            fp_initialized: false,
            fp_dirty: true,
            pending_handled_only: true,
            fp_stats: FingerprintStats::default(),
            compile_cache: None,
            cc_stats: CompileCacheStats::default(),
        }
    }

    /// Recomputes fingerprints if a mutation was declared since the last
    /// refresh, dropping exactly the entries whose function content
    /// changed. No-op for IRs without fingerprint support.
    fn refresh(&mut self, m: &M) {
        if !self.fp_dirty || !m.supports_fingerprints() {
            return;
        }
        self.fp_dirty = false;
        let rebind = std::mem::replace(&mut self.pending_handled_only, true);
        let new: HashMap<M::FuncKey, Fingerprint> = m.fingerprints().into_iter().collect();
        if !self.fp_initialized {
            self.fp_initialized = true;
            self.fingerprints = new;
            return;
        }
        self.fp_stats.refreshes += 1;
        if rebind {
            // Every mutation since the last refresh was `Handled`: the
            // pass kept results valid, so keep them and re-stamp to the
            // new content.
            for ((f, _), entry) in self.cache.iter_mut() {
                if let Some(&fp) = new.get(f) {
                    entry.0 = fp;
                }
            }
            self.fingerprints = new;
            return;
        }
        let changed: HashSet<M::FuncKey> = self
            .fingerprints
            .iter()
            .filter(|(f, old)| new.get(f) != Some(old))
            .map(|(f, _)| *f)
            .chain(
                new.keys()
                    .filter(|f| !self.fingerprints.contains_key(f))
                    .copied(),
            )
            .collect();
        let before = self.cache.len();
        self.cache.retain(|(f, _), _| !changed.contains(f));
        let dropped = (before - self.cache.len()) as u64;
        self.fp_stats.dropped += dropped;
        self.fp_stats.retained += self.cache.len() as u64;
        if dropped > 0 {
            self.invalidation_events += 1;
        }
        // A fingerprint-driven drop is an invalidation for the caching
        // contract: recomputes start a fresh generation.
        for f in changed {
            *self.generation.entry(f).or_insert(0) += 1;
        }
        self.fingerprints = new;
    }

    /// Marks the manager stale after a pass reported `changed` with the
    /// given mutation scope. For fingerprint-capable IRs every scope
    /// (including the wholesale `All`/`None`) resolves lazily to
    /// "drop what actually changed" at the next query; other IRs keep the
    /// legacy push-invalidation semantics.
    pub fn note_mutation(&mut self, m: &M, mutated: &Mutation<M>) {
        if m.supports_fingerprints() {
            self.fp_dirty = true;
            if !matches!(mutated, Mutation::Handled) {
                self.pending_handled_only = false;
                // Module-wide analyses may aggregate anything (including
                // shell state fingerprints cannot see): stay conservative.
                self.module_cache.clear();
            }
            return;
        }
        match mutated {
            Mutation::None | Mutation::All => self.invalidate_all(),
            Mutation::Funcs(fs) => {
                for &f in fs {
                    self.invalidate(f);
                }
            }
            Mutation::Handled => {}
        }
    }

    /// Returns the current fingerprint of function `f`, refreshing if
    /// stale. `None` when the IR does not support fingerprints or the
    /// function is unknown.
    pub fn fingerprint_of(&mut self, m: &M, f: M::FuncKey) -> Option<Fingerprint> {
        if !m.supports_fingerprints() {
            return None;
        }
        self.refresh(m);
        if !self.fp_initialized {
            // No mutation was ever declared: compute the initial map now.
            self.fp_dirty = true;
            self.refresh(m);
        }
        self.fingerprints.get(&f).copied()
    }

    /// Returns the cached result of analysis `A` for function `f`,
    /// computing (and caching) it on first request.
    pub fn get<A: Analysis<M>>(&mut self, m: &M, f: M::FuncKey) -> Rc<A::Output> {
        self.refresh(m);
        let key = (f, TypeId::of::<A>());
        if let Some((_, hit)) = self.cache.get(&key) {
            self.counters.entry(A::NAME).or_default().hits += 1;
            return Rc::clone(hit)
                .downcast::<A::Output>()
                .expect("analysis cache type");
        }
        let value: Rc<A::Output> = Rc::new(A::compute(m, f));
        let gen = self.generation.get(&f).copied().unwrap_or(0);
        let entry = self.computes.entry(key).or_insert((self.epoch, gen, 0));
        if entry.0 == self.epoch && entry.1 == gen {
            entry.2 += 1;
        } else {
            *entry = (self.epoch, gen, 1);
        }
        let count = entry.2;
        let ctr = self.counters.entry(A::NAME).or_default();
        ctr.misses += 1;
        ctr.max_computes_between_invalidations = ctr.max_computes_between_invalidations.max(count);
        let stamp = self.fingerprints.get(&f).copied().unwrap_or_default();
        self.cache
            .insert(key, (stamp, Rc::clone(&value) as Rc<dyn Any>));
        value
    }

    /// Returns the cached result of module-wide analysis `A`, computing
    /// (and caching) it on first request.
    pub fn get_module<A: ModuleAnalysis<M>>(&mut self, m: &M) -> Rc<A::Output> {
        self.refresh(m);
        let key = TypeId::of::<A>();
        if let Some(hit) = self.module_cache.get(&key) {
            self.counters.entry(A::NAME).or_default().hits += 1;
            return Rc::clone(hit)
                .downcast::<A::Output>()
                .expect("analysis cache type");
        }
        let value: Rc<A::Output> = Rc::new(A::compute(m));
        self.counters.entry(A::NAME).or_default().misses += 1;
        self.module_cache
            .insert(key, Rc::clone(&value) as Rc<dyn Any>);
        value
    }

    /// Force-drops every cached analysis for function `f` (and all
    /// module-wide analyses, which may depend on it), regardless of
    /// fingerprints.
    pub fn invalidate(&mut self, f: M::FuncKey) {
        *self.generation.entry(f).or_insert(0) += 1;
        self.invalidation_events += 1;
        self.cache.retain(|(k, _), _| *k != f);
        self.module_cache.clear();
        // The content may have changed under us: re-fingerprint lazily.
        self.fp_dirty = true;
        self.pending_handled_only = false;
    }

    /// Force-drops every cached analysis.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.invalidation_events += 1;
        self.cache.clear();
        self.module_cache.clear();
        self.fp_dirty = true;
        self.pending_handled_only = false;
    }

    /// Hit/miss counters per analysis name.
    pub fn counters(&self) -> &BTreeMap<&'static str, CacheCounter> {
        &self.counters
    }

    /// Counter for one analysis name (zeroed if never requested).
    pub fn counter(&self, name: &str) -> CacheCounter {
        self.counters.get(name).copied().unwrap_or_default()
    }

    /// Number of invalidation events so far (explicit invalidations plus
    /// fingerprint refreshes that dropped at least one entry).
    pub fn invalidation_events(&self) -> u64 {
        self.invalidation_events
    }

    /// Number of live cached per-function entries (for tests).
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative fingerprint-retention counters.
    pub fn fingerprint_stats(&self) -> FingerprintStats {
        self.fp_stats
    }

    /// Installs the cross-job compile cache sharded executors consult.
    pub fn set_compile_cache(&mut self, cache: CompileCache) {
        self.compile_cache = Some(cache);
    }

    /// The installed compile cache, if any.
    pub fn compile_cache(&self) -> Option<&CompileCache> {
        self.compile_cache.as_ref()
    }

    /// Cumulative compile-cache counters recorded against this manager.
    pub fn compile_cache_stats(&self) -> CompileCacheStats {
        self.cc_stats
    }

    /// Records compile-cache lookup outcomes (called by the sharded
    /// executors after consulting the cache).
    pub fn note_compile_cache(&mut self, delta: CompileCacheStats) {
        self.cc_stats.merge(delta);
    }
}
