//! Pipeline and per-pass resource budgets.
//!
//! Budgets turn a runaway pass — a fixpoint group that never converges,
//! a rewrite that superlinearly duplicates code, a pass that spins — into
//! a *contained* fault the [`FaultPolicy`](crate::FaultPolicy) can
//! handle, instead of a hang or memory blowup.
//!
//! Three budget axes are enforced by the runner:
//!
//! * **fixpoint iterations** — the per-group cap (`fixpoint<max=4>(...)`
//!   or [`Budgets::max_fixpoint_iters`]);
//! * **wall-clock time** — per pass ([`Budgets::max_pass_millis`] or
//!   `pass<max-ms=50>`) and per pipeline
//!   ([`Budgets::max_pipeline_millis`]). Enforcement is post-hoc: the
//!   runner never pre-empts a pass mid-body (even function-sharded
//!   passes run their shards to completion), but the first pass to
//!   exceed its budget is rolled back and the pipeline degrades instead
//!   of compounding the overrun;
//! * **instruction-count growth** — per pass, as a factor over the
//!   pre-pass [`IrUnit::size_hint`](crate::IrUnit::size_hint)
//!   ([`Budgets::max_growth`] or `pass<max-growth=2.0>`).

use std::fmt;

/// Pipeline-wide default budgets (per-pass spec options override the
/// per-pass axes; see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budgets {
    /// Wall-clock budget for any single pass, in milliseconds.
    pub max_pass_millis: Option<u64>,
    /// Wall-clock budget for the whole pipeline, in milliseconds.
    pub max_pipeline_millis: Option<u64>,
    /// Instruction-count growth factor allowed for a single pass
    /// (e.g. `2.0` = a pass may at most double the module).
    pub max_growth: Option<f64>,
    /// Default iteration cap for `fixpoint(...)` groups (overridden per
    /// group by `fixpoint<max=N>(...)`).
    pub max_fixpoint_iters: Option<usize>,
}

impl Budgets {
    /// No limits.
    pub fn none() -> Self {
        Budgets::default()
    }

    /// Whether every axis is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == Budgets::default()
    }

    /// Parses a `key=value,...` budget list, the `--budget=` CLI syntax:
    /// `pass-ms=50,pipeline-ms=2000,growth=2.0,fixpoint=4`. The word
    /// `unlimited` — what [`Budgets::none`] displays as — parses back to
    /// no limits, so `parse . to_string` round-trips.
    ///
    /// ```
    /// use passman::Budgets;
    ///
    /// let b = Budgets::parse("pass-ms=50,growth=2.5").unwrap();
    /// assert_eq!(b.max_pass_millis, Some(50));
    /// assert_eq!(Budgets::parse(&b.to_string()).unwrap(), b);
    /// assert_eq!(Budgets::parse("unlimited").unwrap(), Budgets::none());
    /// assert!(Budgets::parse("growth=nan").is_err(), "bounds must be finite");
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.trim() == "unlimited" {
            return Ok(Budgets::none());
        }
        let mut b = Budgets::none();
        for item in s.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("budget `{item}` is not of the form key=value"))?;
            let bad = || format!("budget `{item}` has an unparsable value");
            match key.trim() {
                "pass-ms" => b.max_pass_millis = Some(value.trim().parse().map_err(|_| bad())?),
                "pipeline-ms" => {
                    b.max_pipeline_millis = Some(value.trim().parse().map_err(|_| bad())?)
                }
                "growth" => {
                    let g: f64 = value.trim().parse().map_err(|_| bad())?;
                    // NaN never trips a comparison (and breaks display
                    // round-tripping); infinities are "no limit" spelled
                    // confusingly. Insist on a real bound.
                    if !g.is_finite() {
                        return Err(format!("budget `{item}` must be finite"));
                    }
                    b.max_growth = Some(g);
                }
                "fixpoint" => b.max_fixpoint_iters = Some(value.trim().parse().map_err(|_| bad())?),
                other => {
                    return Err(format!(
                        "unknown budget `{other}` (expected pass-ms|pipeline-ms|growth|fixpoint)"
                    ))
                }
            }
        }
        Ok(b)
    }
}

impl fmt::Display for Budgets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(v) = self.max_pass_millis {
            parts.push(format!("pass-ms={v}"));
        }
        if let Some(v) = self.max_pipeline_millis {
            parts.push(format!("pipeline-ms={v}"));
        }
        if let Some(v) = self.max_growth {
            parts.push(format!("growth={v}"));
        }
        if let Some(v) = self.max_fixpoint_iters {
            parts.push(format!("fixpoint={v}"));
        }
        if parts.is_empty() {
            f.write_str("unlimited")
        } else {
            f.write_str(&parts.join(","))
        }
    }
}

/// A budget that was exceeded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetViolation {
    /// A single pass ran longer than its wall-clock budget.
    PassTime {
        /// The budget, in milliseconds.
        limit_ms: u64,
        /// What the pass actually took.
        actual_ms: u64,
    },
    /// The pipeline as a whole ran longer than its wall-clock budget.
    PipelineTime {
        /// The budget, in milliseconds.
        limit_ms: u64,
        /// Elapsed pipeline time when the violation was detected.
        actual_ms: u64,
    },
    /// A pass grew the module beyond the allowed factor.
    Growth {
        /// The allowed growth factor.
        limit: f64,
        /// Instruction count before the pass.
        before: usize,
        /// Instruction count after the pass.
        after: usize,
    },
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetViolation::PassTime {
                limit_ms,
                actual_ms,
            } => write!(f, "pass time {actual_ms}ms exceeded budget {limit_ms}ms"),
            BudgetViolation::PipelineTime {
                limit_ms,
                actual_ms,
            } => write!(
                f,
                "pipeline time {actual_ms}ms exceeded budget {limit_ms}ms"
            ),
            BudgetViolation::Growth {
                limit,
                before,
                after,
            } => write!(
                f,
                "module grew {before} → {after} insts, over the {limit}× growth budget"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budget_lists() {
        let b = Budgets::parse("pass-ms=50,pipeline-ms=2000,growth=2.5,fixpoint=4").unwrap();
        assert_eq!(b.max_pass_millis, Some(50));
        assert_eq!(b.max_pipeline_millis, Some(2000));
        assert_eq!(b.max_growth, Some(2.5));
        assert_eq!(b.max_fixpoint_iters, Some(4));
        assert_eq!(Budgets::parse("").unwrap(), Budgets::none());
        assert_eq!(Budgets::parse(" growth=2 ").unwrap().max_growth, Some(2.0));
        assert!(Budgets::parse("nope=1").is_err());
        assert!(Budgets::parse("pass-ms").is_err());
        assert!(Budgets::parse("pass-ms=abc").is_err());
        assert!(Budgets::parse("growth=nan").is_err());
        assert!(Budgets::parse("growth=inf").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in ["pass-ms=50", "growth=2.5,fixpoint=4", "", ",", "unlimited"] {
            let b = Budgets::parse(text).unwrap();
            let shown = b.to_string();
            if b.is_unlimited() {
                assert_eq!(shown, "unlimited");
            }
            // `parse . to_string` must close, unlimited included.
            assert_eq!(Budgets::parse(&shown).unwrap(), b);
        }
    }
}
