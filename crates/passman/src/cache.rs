//! The cross-job compile cache: fingerprint-keyed pass outputs and
//! lowered bodies that outlive a single `compile` call.
//!
//! A [`CompileCache`] is a cheaply clonable handle (`Arc<Mutex<..>>`)
//! shared across compile jobs — the `memoir-opt` CLI installs one per
//! `--cache` job stream, the fuzzer's cached-vs-cold oracle shares one
//! between two compiles of the same program, and a future `memoird`
//! daemon would hold one for its lifetime. Entries are keyed by
//! `(domain, fingerprint)`:
//!
//! * *domain* names the producer — `"pass:<ir>:<name>"` for a
//!   function-sharded pass, `"lower:<options>"` for a lowered body — so
//!   results from different transformations never alias;
//! * *fingerprint* is the [`Fingerprint`] of the **input** function
//!   (content + types + transitive callees), so a hit guarantees the
//!   producer would recompute byte-identical output.
//!
//! The payload is opaque (`Box<dyn Any + Send>`); producers store small
//! `Clone`able records (transformed body, per-function stats, changed
//! bit) and [`lookup`](CompileCache::lookup) hands back a clone.
//!
//! Coherence rules (DESIGN.md §14): a cached entry must be a pure
//! function of `(domain, fingerprint)`. Anything that makes a pass's
//! output depend on more than the input function — fault *injection*
//! plans, module-shell identifiers baked into the output (lowered call
//! indices) — must either bypass the cache or fold the extra input into
//! the key.

use crate::fingerprint::Fingerprint;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Hit/skip/miss counters for the compile cache, reported per run in
/// [`RunReport`](crate::RunReport) and merged across jobs by the CLI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Lookups that found a cached *changed* result and applied the
    /// cached body instead of re-running the producer.
    pub hits: u64,
    /// Lookups that found a cached *unchanged* result — the function was
    /// skipped outright (nothing to apply, nothing to run).
    pub skips: u64,
    /// Lookups that found nothing; the producer ran and (on success)
    /// populated the entry.
    pub misses: u64,
    /// Cache operations that found the lock held by another thread and
    /// had to block — a measure of inter-worker contention on the shared
    /// cache, not of lookup success (contended operations still hit or
    /// miss normally and are counted above too).
    pub contended: u64,
}

impl CompileCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.skips + self.misses
    }

    /// Fraction of lookups served from cache (hits + skips), `0.0` when
    /// there were none.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.skips) as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: CompileCacheStats) {
        self.hits += other.hits;
        self.skips += other.skips;
        self.misses += other.misses;
        self.contended += other.contended;
    }

    /// Counter-wise difference (`self - earlier`), for per-run deltas of
    /// an accumulating counter.
    pub fn since(&self, earlier: CompileCacheStats) -> CompileCacheStats {
        CompileCacheStats {
            hits: self.hits - earlier.hits,
            skips: self.skips - earlier.skips,
            misses: self.misses - earlier.misses,
            contended: self.contended - earlier.contended,
        }
    }
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<(String, Fingerprint), Box<dyn Any + Send>>,
    /// Keys whose value is being computed right now by some thread
    /// inside [`CompileCache::get_or_compute`]; other threads wait on
    /// the condvar instead of recomputing.
    pending: HashSet<(String, Fingerprint)>,
}

/// A shared, thread-safe, fingerprint-keyed result cache that outlives a
/// single pipeline run. See the module docs for keying and coherence.
#[derive(Clone, Default)]
pub struct CompileCache {
    inner: Arc<Mutex<CacheInner>>,
    /// Signalled whenever a pending computation finishes (or is
    /// abandoned), waking `get_or_compute` waiters.
    settled: Arc<Condvar>,
    /// Times any operation found the inner lock already held and had to
    /// block (see [`CompileCacheStats::contended`]).
    contention: Arc<AtomicU64>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// Acquires the inner lock, counting the acquisition as contended if
    /// another thread held it at the moment we asked.
    fn lock_counted(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.inner.lock().expect("compile cache poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("compile cache poisoned"),
        }
    }

    /// Looks up the entry for `(domain, fp)`, returning a clone of the
    /// stored value if present and of type `T`.
    pub fn lookup<T: Clone + Send + 'static>(&self, domain: &str, fp: Fingerprint) -> Option<T> {
        let inner = self.lock_counted();
        inner
            .entries
            .get(&(domain.to_string(), fp))
            .and_then(|b| b.downcast_ref::<T>())
            .cloned()
    }

    /// Stores `value` under `(domain, fp)`, replacing any previous entry.
    pub fn store<T: Clone + Send + 'static>(&self, domain: &str, fp: Fingerprint, value: T) {
        let mut inner = self.lock_counted();
        inner
            .entries
            .insert((domain.to_string(), fp), Box::new(value));
    }

    /// Returns the cached value for `(domain, fp)`, computing and
    /// storing it with `compute` on a miss — and, crucially, computing
    /// it **at most once** across concurrent callers: while one thread
    /// runs `compute`, other threads asking for the same key block until
    /// the value lands instead of recomputing it. `compute` runs without
    /// the cache lock held, so unrelated keys proceed in parallel.
    ///
    /// If `compute` panics, the pending reservation is released (waiters
    /// fall back to computing themselves) and the panic propagates.
    /// Waiters also re-check periodically, so a computing thread that is
    /// killed mid-flight cannot strand them.
    pub fn get_or_compute<T, F>(&self, domain: &str, fp: Fingerprint, compute: F) -> T
    where
        T: Clone + Send + 'static,
        F: FnOnce() -> T,
    {
        let key = (domain.to_string(), fp);
        let mut inner = self.lock_counted();
        loop {
            if let Some(v) = inner.entries.get(&key).and_then(|b| b.downcast_ref::<T>()) {
                return v.clone();
            }
            if !inner.pending.contains(&key) {
                break;
            }
            // Someone else is computing this key: wait for them, but
            // with a timeout so an abandoned reservation (computing
            // thread killed without unwinding) degrades to a recompute
            // rather than a deadlock.
            let (guard, _timeout) = self
                .settled
                .wait_timeout(inner, Duration::from_millis(50))
                .expect("compile cache poisoned");
            inner = guard;
        }
        inner.pending.insert(key.clone());
        drop(inner);

        // Release the reservation even if `compute` panics, so waiters
        // are not stranded behind a key nobody is computing.
        struct PendingGuard<'a> {
            cache: &'a CompileCache,
            key: Option<(String, Fingerprint)>,
        }
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    let mut inner = self.cache.lock_counted();
                    inner.pending.remove(&key);
                    drop(inner);
                    self.cache.settled.notify_all();
                }
            }
        }
        let mut guard = PendingGuard {
            cache: self,
            key: Some(key.clone()),
        };

        let value = compute();

        let mut inner = self.lock_counted();
        inner.entries.insert(key.clone(), Box::new(value.clone()));
        inner.pending.remove(&key);
        guard.key = None;
        drop(inner);
        self.settled.notify_all();
        value
    }

    /// Times any cache operation found the lock held by another thread
    /// (cumulative over the cache's lifetime; see
    /// [`CompileCacheStats::contended`] for per-run deltas).
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock_counted().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters held elsewhere are unaffected).
    pub fn clear(&self) {
        self.lock_counted().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_lookup_roundtrip_and_domain_separation() {
        let c = CompileCache::new();
        let fp = Fingerprint(42);
        c.store("pass:a", fp, vec![1u32, 2, 3]);
        assert_eq!(c.lookup::<Vec<u32>>("pass:a", fp), Some(vec![1, 2, 3]));
        assert_eq!(c.lookup::<Vec<u32>>("pass:b", fp), None);
        assert_eq!(c.lookup::<Vec<u32>>("pass:a", Fingerprint(43)), None);
        // Wrong payload type: miss, not panic.
        assert_eq!(c.lookup::<String>("pass:a", fp), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn handles_are_shared() {
        let a = CompileCache::new();
        let b = a.clone();
        a.store("d", Fingerprint(1), 7i64);
        assert_eq!(b.lookup::<i64>("d", Fingerprint(1)), Some(7));
        b.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn stats_math() {
        let mut s = CompileCacheStats {
            hits: 8,
            skips: 1,
            misses: 1,
            contended: 3,
        };
        assert_eq!(s.lookups(), 10);
        assert!((s.reuse_rate() - 0.9).abs() < 1e-9);
        s.merge(CompileCacheStats {
            hits: 2,
            skips: 0,
            misses: 0,
            contended: 1,
        });
        assert_eq!(s.hits, 10);
        assert_eq!(s.contended, 4);
        let d = s.since(CompileCacheStats {
            hits: 8,
            skips: 1,
            misses: 1,
            contended: 3,
        });
        assert_eq!(
            d,
            CompileCacheStats {
                hits: 2,
                skips: 0,
                misses: 0,
                contended: 1,
            }
        );
        assert_eq!(CompileCacheStats::default().reuse_rate(), 0.0);
    }

    /// The satellite contract: two workers racing on the same
    /// `(domain, fingerprint)` must not both run the producer.
    #[test]
    fn concurrent_get_or_compute_runs_the_producer_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache = CompileCache::new();
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(4);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let computes = &computes;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        cache.get_or_compute("pass:x", Fingerprint(7), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so coalescing is
                            // actually exercised, not just possible.
                            std::thread::sleep(Duration::from_millis(20));
                            vec![1u32, 2, 3]
                        })
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![1, 2, 3]);
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "same (domain, fingerprint) computed more than once"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_compute_releases_pending_on_panic() {
        let cache = CompileCache::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute("d", Fingerprint(1), || -> u32 { panic!("producer died") })
        }));
        assert!(boom.is_err());
        // The reservation must be gone: a retry computes normally.
        assert_eq!(cache.get_or_compute("d", Fingerprint(1), || 9u32), 9);
    }

    #[test]
    fn contention_counter_moves_under_load() {
        let cache = CompileCache::new();
        assert_eq!(cache.contention(), 0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        cache.store("d", Fingerprint(t * 1000 + i), i);
                        let _ = cache.lookup::<u64>("d", Fingerprint(i));
                    }
                });
            }
        });
        // 4 threads hammering one lock: some acquisition almost surely
        // blocked, but the counter is best-effort — just check it never
        // moves without multi-threaded traffic elsewhere.
        let after_parallel = cache.contention();
        let solo_before = after_parallel;
        for i in 0..100u64 {
            let _ = cache.lookup::<u64>("d", Fingerprint(i));
        }
        assert_eq!(cache.contention(), solo_before);
    }
}
