//! The cross-job compile cache: fingerprint-keyed pass outputs and
//! lowered bodies that outlive a single `compile` call.
//!
//! A [`CompileCache`] is a cheaply clonable handle (`Arc<Mutex<..>>`)
//! shared across compile jobs — the `memoir-opt` CLI installs one per
//! `--cache` job stream, the fuzzer's cached-vs-cold oracle shares one
//! between two compiles of the same program, and a future `memoird`
//! daemon would hold one for its lifetime. Entries are keyed by
//! `(domain, fingerprint)`:
//!
//! * *domain* names the producer — `"pass:<ir>:<name>"` for a
//!   function-sharded pass, `"lower:<options>"` for a lowered body — so
//!   results from different transformations never alias;
//! * *fingerprint* is the [`Fingerprint`] of the **input** function
//!   (content + types + transitive callees), so a hit guarantees the
//!   producer would recompute byte-identical output.
//!
//! The payload is opaque (`Box<dyn Any + Send>`); producers store small
//! `Clone`able records (transformed body, per-function stats, changed
//! bit) and [`lookup`](CompileCache::lookup) hands back a clone.
//!
//! Coherence rules (DESIGN.md §14): a cached entry must be a pure
//! function of `(domain, fingerprint)`. Anything that makes a pass's
//! output depend on more than the input function — fault *injection*
//! plans, module-shell identifiers baked into the output (lowered call
//! indices) — must either bypass the cache or fold the extra input into
//! the key.

use crate::fingerprint::Fingerprint;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hit/skip/miss counters for the compile cache, reported per run in
/// [`RunReport`](crate::RunReport) and merged across jobs by the CLI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Lookups that found a cached *changed* result and applied the
    /// cached body instead of re-running the producer.
    pub hits: u64,
    /// Lookups that found a cached *unchanged* result — the function was
    /// skipped outright (nothing to apply, nothing to run).
    pub skips: u64,
    /// Lookups that found nothing; the producer ran and (on success)
    /// populated the entry.
    pub misses: u64,
}

impl CompileCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.skips + self.misses
    }

    /// Fraction of lookups served from cache (hits + skips), `0.0` when
    /// there were none.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.skips) as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: CompileCacheStats) {
        self.hits += other.hits;
        self.skips += other.skips;
        self.misses += other.misses;
    }

    /// Counter-wise difference (`self - earlier`), for per-run deltas of
    /// an accumulating counter.
    pub fn since(&self, earlier: CompileCacheStats) -> CompileCacheStats {
        CompileCacheStats {
            hits: self.hits - earlier.hits,
            skips: self.skips - earlier.skips,
            misses: self.misses - earlier.misses,
        }
    }
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<(String, Fingerprint), Box<dyn Any + Send>>,
}

/// A shared, thread-safe, fingerprint-keyed result cache that outlives a
/// single pipeline run. See the module docs for keying and coherence.
#[derive(Clone, Default)]
pub struct CompileCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// Looks up the entry for `(domain, fp)`, returning a clone of the
    /// stored value if present and of type `T`.
    pub fn lookup<T: Clone + Send + 'static>(&self, domain: &str, fp: Fingerprint) -> Option<T> {
        let inner = self.inner.lock().expect("compile cache poisoned");
        inner
            .entries
            .get(&(domain.to_string(), fp))
            .and_then(|b| b.downcast_ref::<T>())
            .cloned()
    }

    /// Stores `value` under `(domain, fp)`, replacing any previous entry.
    pub fn store<T: Clone + Send + 'static>(&self, domain: &str, fp: Fingerprint, value: T) {
        let mut inner = self.inner.lock().expect("compile cache poisoned");
        inner
            .entries
            .insert((domain.to_string(), fp), Box::new(value));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("compile cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters held elsewhere are unaffected).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("compile cache poisoned")
            .entries
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_lookup_roundtrip_and_domain_separation() {
        let c = CompileCache::new();
        let fp = Fingerprint(42);
        c.store("pass:a", fp, vec![1u32, 2, 3]);
        assert_eq!(c.lookup::<Vec<u32>>("pass:a", fp), Some(vec![1, 2, 3]));
        assert_eq!(c.lookup::<Vec<u32>>("pass:b", fp), None);
        assert_eq!(c.lookup::<Vec<u32>>("pass:a", Fingerprint(43)), None);
        // Wrong payload type: miss, not panic.
        assert_eq!(c.lookup::<String>("pass:a", fp), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn handles_are_shared() {
        let a = CompileCache::new();
        let b = a.clone();
        a.store("d", Fingerprint(1), 7i64);
        assert_eq!(b.lookup::<i64>("d", Fingerprint(1)), Some(7));
        b.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn stats_math() {
        let mut s = CompileCacheStats {
            hits: 8,
            skips: 1,
            misses: 1,
        };
        assert_eq!(s.lookups(), 10);
        assert!((s.reuse_rate() - 0.9).abs() < 1e-9);
        s.merge(CompileCacheStats {
            hits: 2,
            skips: 0,
            misses: 0,
        });
        assert_eq!(s.hits, 10);
        let d = s.since(CompileCacheStats {
            hits: 8,
            skips: 1,
            misses: 1,
        });
        assert_eq!(
            d,
            CompileCacheStats {
                hits: 2,
                skips: 0,
                misses: 0
            }
        );
        assert_eq!(CompileCacheStats::default().reuse_rate(), 0.0);
    }
}
