//! Deterministic fault injection.
//!
//! The recovery machinery (snapshots, rollback, degradation reports) is
//! itself code that must be exercised; real pass crashes are rare and
//! non-deterministic. A [`FaultPlan`] installed with
//! [`PassManager::with_fault_injection`](crate::PassManager::with_fault_injection)
//! makes the runner inject a chosen fault — a panic, a forced verifier
//! failure, or a synthetic budget blowup — whenever a pass invocation
//! matches the plan, so recovery paths can be tested deterministically
//! and fuzz harnesses can seed reproducible crashes.
//!
//! This hook is intended for tests and the `memoir-fuzz` triage harness;
//! production drivers should never install a plan.

use std::fmt;
use std::str::FromStr;

/// Which fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectKind {
    /// Panic inside the pass body (exercises `catch_unwind` + rollback).
    Panic,
    /// Force the inter-pass verifier to report a failure after the pass.
    VerifyFail,
    /// Report a synthetic pass-time budget violation after the pass.
    BudgetBlowup,
}

impl fmt::Display for InjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectKind::Panic => "panic",
            InjectKind::VerifyFail => "verify",
            InjectKind::BudgetBlowup => "budget",
        })
    }
}

/// When and what to inject. A plan fires when *all* of its set
/// conditions match the current pass invocation; a plan with no
/// conditions never fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: InjectKind,
    /// Fire only when the running pass has this spec name.
    pub pass: Option<String>,
    /// Fire only at this 0-based pass invocation index (counted across
    /// the whole pipeline run, fixpoint iterations included).
    pub at_invocation: Option<usize>,
    /// For [`InjectKind::Panic`] on a function-sharded pass: panic while
    /// processing the function at this 0-based index of the stable
    /// function order, instead of before the pass body. Lets tests fault
    /// one shard and watch the others survive.
    pub func: Option<usize>,
}

impl FaultPlan {
    /// A plan injecting `kind` every time the named pass runs.
    pub fn at_pass(kind: InjectKind, pass: impl Into<String>) -> Self {
        FaultPlan {
            kind,
            pass: Some(pass.into()),
            at_invocation: None,
            func: None,
        }
    }

    /// A plan injecting `kind` at the Nth (0-based) pass invocation.
    pub fn at_invocation(kind: InjectKind, n: usize) -> Self {
        FaultPlan {
            kind,
            pass: None,
            at_invocation: Some(n),
            func: None,
        }
    }

    /// Narrows a panic plan to the function at stable index `i`.
    pub fn on_func(mut self, i: usize) -> Self {
        self.func = Some(i);
        self
    }

    /// Whether the plan fires for invocation `index` of pass `name`.
    pub fn fires(&self, index: usize, name: &str) -> bool {
        if self.pass.is_none() && self.at_invocation.is_none() {
            return false;
        }
        self.pass.as_deref().is_none_or(|p| p == name)
            && self.at_invocation.is_none_or(|n| n == index)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@", self.kind)?;
        match (&self.pass, self.at_invocation) {
            (Some(p), Some(n)) => write!(f, "{p}#{n}")?,
            (Some(p), None) => write!(f, "{p}")?,
            (None, Some(n)) => write!(f, "#{n}")?,
            (None, None) => write!(f, "never")?,
        }
        if let Some(i) = self.func {
            write!(f, "%{i}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses `kind@target`: `panic@dee`, `verify@dce`, `budget@#5`
    /// (5th invocation), `panic@dee#2` (only when the 2nd invocation is
    /// `dee`), `panic@simplify%1` (panic while `simplify` processes the
    /// function at stable index 1).
    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, target) = s
            .split_once('@')
            .ok_or_else(|| format!("fault plan `{s}` is not of the form kind@target"))?;
        let kind = match kind {
            "panic" => InjectKind::Panic,
            "verify" => InjectKind::VerifyFail,
            "budget" => InjectKind::BudgetBlowup,
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        let (target, func) = match target.split_once('%') {
            Some((t, i)) => {
                let i: usize = i
                    .parse()
                    .map_err(|_| format!("fault plan `{s}` has a bad function index"))?;
                (t, Some(i))
            }
            None => (target, None),
        };
        let (pass, at_invocation) = match target.split_once('#') {
            Some((p, n)) => {
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("fault plan `{s}` has a bad invocation index"))?;
                let p = if p.is_empty() {
                    None
                } else {
                    Some(p.to_string())
                };
                (p, Some(n))
            }
            None => {
                if target.is_empty() {
                    return Err(format!("fault plan `{s}` names no pass or invocation"));
                }
                (Some(target.to_string()), None)
            }
        };
        Ok(FaultPlan {
            kind,
            pass,
            at_invocation,
            func,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_plans() {
        for (text, pass, inv) in [
            ("panic@dee", Some("dee"), None),
            ("verify@dce", Some("dce"), None),
            ("budget@#5", None, Some(5)),
            ("panic@dee#2", Some("dee"), Some(2)),
        ] {
            let plan: FaultPlan = text.parse().unwrap();
            assert_eq!(plan.pass.as_deref(), pass, "{text}");
            assert_eq!(plan.at_invocation, inv, "{text}");
            assert_eq!(plan.to_string(), text, "round trip");
        }
        assert!("panic".parse::<FaultPlan>().is_err());
        assert!("panic@".parse::<FaultPlan>().is_err());
        assert!("nuke@dee".parse::<FaultPlan>().is_err());
        assert!("panic@#x".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn firing_conditions_conjoin() {
        let by_pass = FaultPlan::at_pass(InjectKind::Panic, "dee");
        assert!(by_pass.fires(0, "dee") && by_pass.fires(7, "dee"));
        assert!(!by_pass.fires(0, "dce"));

        let by_index = FaultPlan::at_invocation(InjectKind::Panic, 3);
        assert!(by_index.fires(3, "anything"));
        assert!(!by_index.fires(2, "anything"));

        let both: FaultPlan = "panic@dee#3".parse().unwrap();
        assert!(both.fires(3, "dee"));
        assert!(!both.fires(3, "dce"));
        assert!(!both.fires(2, "dee"));

        let never = FaultPlan {
            kind: InjectKind::Panic,
            pass: None,
            at_invocation: None,
            func: None,
        };
        assert!(!never.fires(0, "dee"));
    }

    #[test]
    fn function_targets_parse_and_round_trip() {
        for (text, pass, inv, func) in [
            ("panic@simplify%1", Some("simplify"), None, Some(1)),
            ("panic@dee#2%0", Some("dee"), Some(2), Some(0)),
            ("panic@#3%4", None, Some(3), Some(4)),
        ] {
            let plan: FaultPlan = text.parse().unwrap();
            assert_eq!(plan.pass.as_deref(), pass, "{text}");
            assert_eq!(plan.at_invocation, inv, "{text}");
            assert_eq!(plan.func, func, "{text}");
            assert_eq!(plan.to_string(), text, "round trip");
        }
        assert!("panic@dee%x".parse::<FaultPlan>().is_err());
        // The function target does not change *when* the plan fires.
        let plan: FaultPlan = "panic@dee%1".parse().unwrap();
        assert!(plan.fires(0, "dee") && !plan.fires(0, "dce"));
    }
}
