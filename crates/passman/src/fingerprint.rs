//! Structural content fingerprints — the cache key of the incremental
//! query layer.
//!
//! A [`Fingerprint`] is a stable structural hash of a function's
//! *content*: its operations, the structure of every type it touches,
//! and — transitively, via the callgraph — the fingerprints of every
//! function it calls. Two functions with the same fingerprint are
//! structurally identical for every per-function analysis and
//! transformation in the workspace, so analysis results, pass outputs,
//! and lowered bodies can be keyed by fingerprint and reused across
//! pipeline iterations and even across compile jobs (see
//! [`CompileCache`](crate::CompileCache)).
//!
//! The contract (DESIGN.md §14):
//!
//! * **Deterministic** — independent of process, run, thread count, and
//!   hash-map iteration order. The hasher below is a fixed-seed mixer,
//!   never `std`'s randomly keyed `SipHash`.
//! * **Renumbering-insensitive** — value ids are canonicalized by
//!   definition order before hashing, so a print/parse round trip or a
//!   compaction that renumbers values does not change the fingerprint.
//! * **Content-sensitive** — any edit to an op, an immediate, a referenced
//!   type's structure, or any (transitive) callee's body changes the
//!   fingerprint. Callee sensitivity is what lets the analysis manager
//!   invalidate *dependents* of a changed function without a separate
//!   dependency graph.
//!
//! The IR crates implement the actual walks
//! (`memoir_ir::fingerprint`, `lir::fingerprint`) on top of the
//! [`StableHasher`] and the leaves-first [`sccs`] condensation here.

use std::fmt;

/// A stable structural content hash of one function (plus its type and
/// callee context). See the module docs for the contract.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fingerprint(pub u64);

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Combines two fingerprints order-sensitively (`combine(a, b) !=
    /// combine(b, a)`).
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_u64(self.0);
        h.write_u64(other.0);
        Fingerprint(h.finish())
    }

    /// Combines a set of fingerprints commutatively (order-insensitive) —
    /// used for SCC summaries, where member order is id-dependent.
    pub fn combine_commutative(fps: impl IntoIterator<Item = Fingerprint>) -> Fingerprint {
        let (mut xor, mut sum, mut n) = (0u64, 0u64, 0u64);
        for fp in fps {
            xor ^= fp.0;
            sum = sum.wrapping_add(mix64(fp.0));
            n += 1;
        }
        let mut h = StableHasher::new();
        h.write_u64(xor);
        h.write_u64(sum);
        h.write_u64(n);
        Fingerprint(h.finish())
    }
}

/// 64-bit finalization mixer (the murmur3/splitmix avalanche step).
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A deterministic, fixed-seed word hasher.
///
/// Unlike `std::hash::DefaultHasher` (randomly keyed per process), this
/// produces the same digest for the same write sequence in every run on
/// every machine — the property fingerprints need to serve as cross-job
/// cache keys. Not cryptographic; collision resistance is "good 64-bit
/// mixing", which is plenty for cache keying.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher with the fixed seed.
    pub fn new() -> Self {
        StableHasher {
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Feeds one 64-bit word.
    pub fn write_u64(&mut self, x: u64) {
        self.state = mix64(self.state.rotate_left(23) ^ x).wrapping_add(0x2545_f491_4f6c_dd1d);
    }

    /// Feeds a 32-bit word.
    pub fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    /// Feeds a `usize`.
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Feeds a signed 64-bit word.
    pub fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, x: u8) {
        self.write_u64(x as u64);
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, x: bool) {
        self.write_u64(x as u64);
    }

    /// Feeds a string, length-prefixed (so `"ab", "c"` and `"a", "bc"`
    /// digest differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }

    /// The digest as a [`Fingerprint`].
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint(self.finish())
    }
}

/// Strongly connected components of a directed graph over nodes
/// `0..n`, returned **leaves-first** (every edge leaving a component
/// points to an earlier component in the returned order). Within a
/// component, nodes appear in a deterministic (input-index) order.
///
/// This is the condensation both IR crates run callee-fingerprint
/// propagation over: process SCCs leaves-first, so every cross-SCC
/// callee already has a final fingerprint, and summarize intra-SCC
/// (recursive) edges commutatively.
///
/// Iterative Tarjan — fuzzed modules can have deep call chains, so no
/// recursion.
pub fn sccs(n: usize, edges: &dyn Fn(usize) -> Vec<usize>) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, its edge list, next edge position).
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = vec![(root, edges(root), 0)];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.2 < frame.1.len() {
                let w = frame.1[frame.2];
                frame.2 += 1;
                if w >= n {
                    continue; // dangling edge (broken IR): ignore
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, edges(w), 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn str_hashing_is_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn commutative_combine_ignores_order() {
        let fps = [Fingerprint(3), Fingerprint(9), Fingerprint(27)];
        let a = Fingerprint::combine_commutative(fps);
        let b = Fingerprint::combine_commutative([fps[2], fps[0], fps[1]]);
        assert_eq!(a, b);
        let c = Fingerprint::combine_commutative([fps[0], fps[1]]);
        assert_ne!(a, c);
    }

    #[test]
    fn sccs_leaves_first() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 3 isolated.
        let edges = |v: usize| -> Vec<usize> {
            match v {
                0 => vec![1],
                1 => vec![2],
                2 => vec![1],
                _ => vec![],
            }
        };
        let comps = sccs(4, &edges);
        let pos = |v: usize| comps.iter().position(|c| c.contains(&v)).unwrap();
        assert!(pos(1) < pos(0), "callee SCC must precede caller");
        assert_eq!(pos(1), pos(2), "cycle is one component");
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 4);
    }

    #[test]
    fn sccs_handles_self_loop_and_dangling_edges() {
        let edges = |v: usize| -> Vec<usize> {
            match v {
                0 => vec![0, 7],
                _ => vec![],
            }
        };
        let comps = sccs(2, &edges);
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 2);
    }
}
