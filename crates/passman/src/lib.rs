//! # passman
//!
//! A generic pass-manager framework shared by the MEMOIR pipeline
//! (`memoir-opt`) and the low-level IR pipeline (`lir`).
//!
//! The framework replaces hand-rolled pass sequences (each timing itself,
//! each recomputing every analysis from scratch) with four cooperating
//! pieces:
//!
//! * [`Pass`] — a named transformation over an IR unit, reporting a
//!   changed-bit, flat serde-friendly statistics, and which functions it
//!   mutated (its *analysis invalidation* declaration);
//! * [`AnalysisManager`] — lazily computes and caches per-function
//!   [`Analysis`] results (and module-wide [`ModuleAnalysis`] results),
//!   invalidating them only when a pass declares a mutation, with hit/miss
//!   counters surfaced in the final report;
//! * [`PipelineSpec`] — an LLVM `-passes=`-style textual pipeline
//!   description, e.g. `"constprop,dee,fixpoint(simplify,sink,dce)"`,
//!   where `fixpoint(...)` iterates its body to convergence using each
//!   pass's changed-bit;
//! * [`PassManager`] — runs a spec against a [`PassRegistry`], timing
//!   every pass, optionally verifying the IR between passes (naming the
//!   offending pass on failure), and producing a unified [`RunReport`].
//!
//! The framework is IR-agnostic: anything implementing [`IrUnit`] (a way
//! to enumerate function keys) can be driven by it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod budget;
pub mod cache;
pub mod fault;
pub mod fingerprint;
pub mod parallel;
pub mod pass;
pub mod query;
pub mod recover;
pub mod runner;
pub mod snapshot;
pub mod spec;
pub mod stage;

pub use analysis::{Analysis, AnalysisManager, CacheCounter, FingerprintStats, ModuleAnalysis};
pub use budget::{BudgetViolation, Budgets};
pub use cache::{CompileCache, CompileCacheStats};
pub use fault::{FaultPlan, InjectKind};
pub use fingerprint::{Fingerprint, StableHasher};
pub use parallel::{
    ContainedFault, ExecContext, FuncOutcome, FuncPass, FuncPassAdapter, FuncPassProfile,
    ShardStat, ShardedIr,
};
pub use pass::{FnPass, Mutation, Pass, PassError, PassOutcome, PassRegistry};
pub use query::QueryCtx;
pub use recover::{Degradation, FaultCause, FaultPolicy, RecoveryAction};
pub use runner::{PassManager, PassRun, RunError, RunReport};
pub use snapshot::{CowEngine, FullCloneEngine, SnapshotCost, SnapshotEngine, SnapshotStats};
pub use spec::{PassCall, PassOptions, PipelineSpec, SpecParseError, SpecStep};
pub use stage::{LowerStage, StageOutcome};

use std::fmt::Debug;
use std::hash::Hash;

/// An IR unit a pass pipeline can run over: a module-like container with
/// enumerable per-function keys.
///
/// `FuncKey` is `Ord + Send + Sync` so the sharded executor
/// ([`parallel`]) can partition the key set deterministically and share
/// it across scoped worker threads.
pub trait IrUnit {
    /// Stable identifier for a function within the unit.
    type FuncKey: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static;

    /// All function keys currently in the unit.
    fn func_keys(&self) -> Vec<Self::FuncKey>;

    /// A cheap size measure (typically the instruction count) used by
    /// growth budgets. Units returning the default `0` opt out of growth
    /// budgeting.
    fn size_hint(&self) -> usize {
        0
    }

    /// Whether this IR produces content [`Fingerprint`]s — the cheap
    /// probe callers check before paying for
    /// [`fingerprints`](IrUnit::fingerprints). Defaults to `false`:
    /// units that opt out keep the analysis manager's legacy
    /// generation-counter invalidation.
    fn supports_fingerprints(&self) -> bool {
        false
    }

    /// Structural content fingerprints for every function, in any order
    /// (see [`fingerprint`] for the contract: deterministic,
    /// renumbering-insensitive, sensitive to op/type/callee edits).
    /// Must return one entry per key of [`func_keys`](IrUnit::func_keys)
    /// when [`supports_fingerprints`](IrUnit::supports_fingerprints) is
    /// `true`.
    fn fingerprints(&self) -> Vec<(Self::FuncKey, Fingerprint)> {
        Vec::new()
    }
}
