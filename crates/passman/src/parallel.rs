//! Function-scoped passes and the sharded parallel executor.
//!
//! A [`FuncPass`] is a transformation that touches exactly one function
//! at a time and never the module shell (types, externs, entry): the
//! per-function specialization of [`Pass`] whose
//! `Mutation::Funcs` declaration the analysis manager already exploits.
//! [`FuncPassAdapter`] lifts a `FuncPass` into a regular [`Pass`] by
//! detaching the module's functions, partitioning them into contiguous
//! shards in stable key order, and running the shards on scoped threads
//! (`std::thread::scope` — the workspace is offline, so no rayon).
//!
//! Determinism: shards are a pure partition of disjoint functions, the
//! pass sees an immutable module shell, and outcomes are merged in stable
//! function-key order — so the resulting IR, the changed-key set, and the
//! merged statistics are bit-identical no matter how many worker threads
//! ran (only wall-clock timings differ).
//!
//! Fault containment: when the runner is under a recovering
//! [`FaultPolicy`](crate::FaultPolicy), each function is cloned before
//! the pass runs on it and a panic inside one function rolls back *that
//! function only* — the other functions (and the other shards) keep
//! their results, and the fault surfaces as a per-function
//! [`ContainedFault`] in the pass profile instead of a whole-pass
//! rollback.

use crate::cache::CompileCacheStats;
use crate::fingerprint::Fingerprint;
use crate::pass::{Mutation, Pass, PassError, PassOutcome};
use crate::query::QueryCtx;
use crate::AnalysisManager;
use crate::IrUnit;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Per-invocation execution context the runner hands to every pass via
/// [`Pass::prepare`] right before running it.
///
/// Module-level passes ignore it; [`FuncPassAdapter`] reads the worker
/// count, the fault-containment flag, and the (test-only) per-function
/// panic injection target from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecContext {
    /// Worker threads available to the pass (`1` = run serially).
    pub threads: usize,
    /// Whether a recovering fault policy is active: function-sharded
    /// passes then snapshot each function and contain per-function
    /// panics instead of letting them tear down the whole pass.
    pub contain_faults: bool,
    /// Test-only injection: panic while processing the function at this
    /// index of the stable key order (see
    /// [`FaultPlan::func`](crate::FaultPlan::func)).
    pub inject_func_panic: Option<usize>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            threads: 1,
            contain_faults: false,
            inject_func_panic: None,
        }
    }
}

/// An [`IrUnit`] whose functions can be detached from the module shell,
/// worked on independently, and re-attached — the capability behind both
/// the sharded executor and per-function copy-on-write snapshots.
///
/// Invariants implementors must uphold:
///
/// * `detach_funcs` returns every function in stable ascending key order
///   and leaves the shell intact (types, externs, entry survive);
/// * `attach_funcs(detach_funcs())` round-trips to an identical module;
/// * `clone_func`/`restore_func` address functions in place without
///   disturbing any other function.
pub trait ShardedIr: IrUnit + Sync {
    /// One detached function body (`'static` so cached pass outputs can
    /// live in the type-erased [`CompileCache`](crate::CompileCache)).
    type Func: Send + Clone + 'static;

    /// Removes all functions, returning `(key, function)` pairs in
    /// stable ascending key order. The shell stays behind.
    fn detach_funcs(&mut self) -> Vec<(Self::FuncKey, Self::Func)>;

    /// Re-attaches functions previously returned by
    /// [`detach_funcs`](ShardedIr::detach_funcs), in the same order.
    fn attach_funcs(&mut self, funcs: Vec<(Self::FuncKey, Self::Func)>);

    /// Clones one function out of the module (for snapshots).
    fn clone_func(&self, key: Self::FuncKey) -> Self::Func;

    /// Overwrites one function in place (for snapshot restore).
    fn restore_func(&mut self, key: Self::FuncKey, func: Self::Func);

    /// A cheap per-function size measure (typically the instruction
    /// count), the unit of the snapshot-cost counters. Defaults to `0`
    /// (opting out of size accounting).
    fn func_size_hint(&self, _key: Self::FuncKey) -> usize {
        0
    }
}

/// The result of running a [`FuncPass`] on one function.
#[derive(Clone, Debug, Default)]
pub struct FuncOutcome {
    /// Whether this function was mutated.
    pub changed: bool,
    /// Flat `(key, value)` statistics; merged across functions by
    /// summation, in stable function order.
    pub stats: Vec<(&'static str, i64)>,
}

impl FuncOutcome {
    /// An outcome that changed nothing.
    pub fn unchanged() -> Self {
        FuncOutcome::default()
    }

    /// An outcome computed from statistics: changed iff any stat is
    /// nonzero.
    pub fn from_stats(stats: Vec<(&'static str, i64)>) -> Self {
        FuncOutcome {
            changed: stats.iter().any(|&(_, v)| v != 0),
            stats,
        }
    }
}

/// A transformation over a single function. `run_on` receives the module
/// *shell* (functions detached — types/externs/entry only) and one
/// mutable function; it must not assume any other function is visible.
///
/// Implementations are shared across worker threads, hence `Send + Sync`
/// and `&self` (per-function state belongs in locals, not fields).
///
/// Passes that consume cached analyses implement
/// [`prefetch`](FuncPass::prefetch): it runs on the *main* thread with
/// the module still whole and the [`AnalysisManager`] in hand, and
/// whatever it returns is handed back to `run_on` for that function as
/// the `ctx` argument — the bridge between the single-threaded `Rc`
/// analysis cache and the `Send` worker shards.
pub trait FuncPass<M: ShardedIr>: Send + Sync {
    /// The registry/spec name of this pass.
    fn name(&self) -> &'static str;

    /// Fetches (typically from the analysis cache, via the
    /// [`QueryCtx`] query bridge) whatever per-function context `run_on`
    /// wants. Called once per function, in stable key order, before the
    /// functions are detached — the only point in a sharded pass where
    /// both the whole module and the analysis cache are visible. The
    /// default prefetches nothing.
    fn prefetch(&self, _q: &mut QueryCtx<'_, M>) -> Option<Box<dyn std::any::Any + Send + Sync>> {
        None
    }

    /// Transforms one function. `ctx` is what
    /// [`prefetch`](FuncPass::prefetch) returned for this function;
    /// passes must treat it as an optimization and fall back to
    /// recomputing when it is `None`.
    fn run_on(
        &self,
        shell: &M,
        key: M::FuncKey,
        func: &mut M::Func,
        ctx: Option<&(dyn std::any::Any + Send + Sync)>,
    ) -> FuncOutcome;
}

/// Per-shard utilization: how many functions the shard processed and how
/// long its worker was busy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStat {
    /// Functions assigned to this shard.
    pub funcs: usize,
    /// Wall-clock time the shard's worker spent processing them.
    pub busy: Duration,
}

/// A per-function fault the executor contained: the function was rolled
/// back to its pre-pass state and the rest of the pass kept its results.
#[derive(Clone, Debug)]
pub struct ContainedFault {
    /// Index of the function in the stable key order (the sort key for
    /// deterministic reports).
    pub func_index: usize,
    /// Rendered function key (e.g. `fn3`).
    pub func: String,
    /// The panic message.
    pub message: String,
}

/// Per-pass execution profile of a function-sharded pass: per-function
/// wall-clock in stable key order, per-shard utilization, and any
/// contained per-function faults.
#[derive(Clone, Debug, Default)]
pub struct FuncPassProfile {
    /// `(rendered key, wall time)` per function, in stable key order.
    pub func_times: Vec<(String, Duration)>,
    /// One entry per shard that ran, in shard order.
    pub shards: Vec<ShardStat>,
    /// Contained per-function faults, in stable key order.
    pub contained: Vec<ContainedFault>,
}

impl FuncPassProfile {
    /// Shard utilization as `busiest / total busy` (1.0 = perfectly
    /// balanced across one shard, lower = more parallel headroom used).
    pub fn max_shard_fraction(&self) -> f64 {
        let total: f64 = self.shards.iter().map(|s| s.busy.as_secs_f64()).sum();
        let max = self
            .shards
            .iter()
            .map(|s| s.busy.as_secs_f64())
            .fold(0.0, f64::max);
        if total > 0.0 {
            max / total
        } else {
            1.0
        }
    }
}

/// What one function produced inside a shard worker.
struct FuncResult {
    changed: bool,
    stats: Vec<(&'static str, i64)>,
    time: Duration,
    /// Panic message, if the function faulted (contained or not).
    panic: Option<String>,
    /// The raw panic payload when faults are *not* contained — carried
    /// back to the calling thread and resumed there, preserving the
    /// legacy fail-fast behaviour under [`FaultPolicy::Abort`](crate::FaultPolicy).
    payload: Option<Box<dyn std::any::Any + Send>>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// Lifts a [`FuncPass`] into a [`Pass`] that shards the module's
/// functions across scoped worker threads (see the module docs for the
/// determinism and containment guarantees).
pub struct FuncPassAdapter<M: ShardedIr, P: FuncPass<M>> {
    pass: P,
    cx: ExecContext,
    _ir: PhantomData<fn(&mut M)>,
}

impl<M: ShardedIr, P: FuncPass<M>> std::fmt::Debug for FuncPassAdapter<M, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuncPassAdapter")
            .field("pass", &self.pass.name())
            .field("cx", &self.cx)
            .finish()
    }
}

impl<M: ShardedIr, P: FuncPass<M>> FuncPassAdapter<M, P> {
    /// Wraps a function pass. The executor defaults to serial; the
    /// runner raises the worker count via [`Pass::prepare`].
    pub fn new(pass: P) -> Self {
        FuncPassAdapter {
            pass,
            cx: ExecContext::default(),
            _ir: PhantomData,
        }
    }
}

/// A cached per-function pass output: what the
/// [`CompileCache`](crate::CompileCache) stores under
/// `("pass:<ir>:<name>", input fingerprint)`. `func` is `Some` only when
/// the pass changed the function (an unchanged function needs nothing
/// applied — the lookup is a *skip*).
#[derive(Clone)]
struct PassEntry<F> {
    changed: bool,
    stats: Vec<(&'static str, i64)>,
    func: Option<F>,
}

/// One sharded work item: a function (with its key) tagged with its
/// global index in the module's stable function order.
type IndexedFunc<'a, M> = (
    usize,
    &'a mut (<M as IrUnit>::FuncKey, <M as ShardedIr>::Func),
);

/// Runs one shard: every `(global index, (key, func))` item, writing
/// per-function results into the parallel `results` slice (`ctxs`
/// carries each item's prefetched analysis context, same order). Items
/// are the *cache misses* in stable key order; the global index keys
/// fault injection and profile reporting, so shard layout and cache hits
/// never shift which function an injection targets.
fn run_shard<M: ShardedIr, P: FuncPass<M>>(
    pass: &P,
    shell: &M,
    items: &mut [IndexedFunc<'_, M>],
    ctxs: &[Option<Box<dyn std::any::Any + Send + Sync>>],
    results: &mut [Option<FuncResult>],
    cx: ExecContext,
    stat: &mut ShardStat,
) {
    let t0 = Instant::now();
    for (li, (global_index, slot)) in items.iter_mut().enumerate() {
        let global_index = *global_index;
        let (key, func) = (&slot.0, &mut slot.1);
        let backup = if cx.contain_faults {
            Some(func.clone())
        } else {
            None
        };
        let ft0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if cx.inject_func_panic == Some(global_index) {
                panic!(
                    "fault injection: panic in `{}` on function {:?}",
                    pass.name(),
                    *key
                );
            }
            pass.run_on(shell, *key, func, ctxs[li].as_deref())
        }));
        let time = ft0.elapsed();
        results[li] = Some(match outcome {
            Ok(out) => FuncResult {
                changed: out.changed,
                stats: out.stats,
                time,
                panic: None,
                payload: None,
            },
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if let Some(b) = backup {
                    // Contain: this function reverts, the rest stand.
                    *func = b;
                }
                FuncResult {
                    changed: false,
                    stats: Vec::new(),
                    time,
                    panic: Some(message),
                    payload: if cx.contain_faults {
                        None
                    } else {
                        Some(payload)
                    },
                }
            }
        });
        // Fail fast within the shard when faults are not contained: the
        // panic is re-raised on the calling thread after re-attachment.
        if results[li].as_ref().is_some_and(|r| r.payload.is_some()) {
            break;
        }
    }
    stat.funcs = items.len();
    stat.busy = t0.elapsed();
}

impl<M: ShardedIr, P: FuncPass<M>> Pass<M> for FuncPassAdapter<M, P> {
    fn name(&self) -> &'static str {
        self.pass.name()
    }

    fn prepare(&mut self, cx: ExecContext) {
        self.cx = cx;
    }

    fn may_mutate(&self, m: &M) -> Mutation<M> {
        let mut keys = m.func_keys();
        keys.sort_unstable();
        Mutation::Funcs(keys)
    }

    fn run(&mut self, m: &mut M, am: &mut AnalysisManager<M>) -> Result<PassOutcome<M>, PassError> {
        let mut keys = m.func_keys();
        keys.sort_unstable();
        let n = keys.len();

        // Consult the cross-job compile cache first: a function whose
        // (pass, input-fingerprint) entry exists needs no prefetch and no
        // worker — its cached output is applied (hit) or it is skipped
        // outright (skip). Fault *injection* makes the pass's output
        // depend on more than the input function, so it bypasses the
        // cache (see cache.rs coherence rules); contained *real* panics
        // are deterministic and simply never populate an entry.
        let cache = am.compile_cache().cloned();
        let use_cache =
            cache.is_some() && m.supports_fingerprints() && self.cx.inject_func_panic.is_none();
        let domain = format!("pass:{}:{}", std::any::type_name::<M>(), self.pass.name());
        let mut fps: Vec<Option<Fingerprint>> = vec![None; n];
        let mut cached: Vec<Option<PassEntry<M::Func>>> = Vec::new();
        cached.resize_with(n, || None);
        if use_cache {
            let cache = cache.as_ref().expect("use_cache implies cache");
            let mut delta = CompileCacheStats::default();
            for (i, &k) in keys.iter().enumerate() {
                let Some(fp) = am.fingerprint_of(m, k) else {
                    continue;
                };
                fps[i] = Some(fp);
                match cache.lookup::<PassEntry<M::Func>>(&domain, fp) {
                    Some(e) => {
                        if e.changed {
                            delta.hits += 1;
                        } else {
                            delta.skips += 1;
                        }
                        cached[i] = Some(e);
                    }
                    None => delta.misses += 1,
                }
            }
            am.note_compile_cache(delta);
        }

        // Prefetch (misses only) while the module is still whole
        // (analyses index into the attached functions) and the
        // `Rc`-based cache is still on this thread, via the query
        // bridge. Stable key order matches the detach order below.
        let mut miss_ctxs: Vec<Option<Box<dyn std::any::Any + Send + Sync>>> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if cached[i].is_none() {
                let mut q = QueryCtx::new(m, k, am);
                miss_ctxs.push(self.pass.prefetch(&mut q));
            }
        }

        let mut funcs = m.detach_funcs();
        funcs.sort_by_key(|a| a.0);
        debug_assert!(funcs.iter().map(|(k, _)| *k).eq(keys.iter().copied()));
        let mut results: Vec<Option<FuncResult>> = Vec::new();
        results.resize_with(n, || None);

        // Apply cached outputs in place; everything else is a miss that
        // still runs through the sharded workers.
        let mut applied = vec![false; n];
        for i in 0..n {
            if let Some(e) = cached[i].take() {
                if let Some(body) = e.func {
                    funcs[i].1 = body;
                }
                applied[i] = true;
                results[i] = Some(FuncResult {
                    changed: e.changed,
                    stats: e.stats,
                    time: Duration::ZERO,
                    panic: None,
                    payload: None,
                });
            }
        }

        let mut profile = FuncPassProfile::default();
        {
            let mut miss_items: Vec<IndexedFunc<'_, M>> = funcs
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| results[*i].is_none())
                .collect();
            let miss_n = miss_items.len();
            debug_assert_eq!(miss_n, miss_ctxs.len());
            let mut miss_results: Vec<Option<FuncResult>> = Vec::new();
            miss_results.resize_with(miss_n, || None);
            if miss_n > 0 {
                let threads = self.cx.threads.max(1).min(miss_n);
                let chunk = miss_n.div_ceil(threads);
                let shards = miss_n.div_ceil(chunk);
                let mut shard_stats = vec![ShardStat::default(); shards];
                let shell: &M = m;
                let pass = &self.pass;
                let cx = self.cx;
                if threads == 1 {
                    run_shard(
                        pass,
                        shell,
                        &mut miss_items,
                        &miss_ctxs,
                        &mut miss_results,
                        cx,
                        &mut shard_stats[0],
                    );
                } else {
                    std::thread::scope(|s| {
                        for (((ichunk, cchunk), rchunk), stat) in miss_items
                            .chunks_mut(chunk)
                            .zip(miss_ctxs.chunks(chunk))
                            .zip(miss_results.chunks_mut(chunk))
                            .zip(shard_stats.iter_mut())
                        {
                            s.spawn(move || {
                                run_shard(pass, shell, ichunk, cchunk, rchunk, cx, stat)
                            });
                        }
                    });
                }
                profile.shards = shard_stats;
            }
            // Scatter worker results back to stable positions.
            for ((gi, _), r) in miss_items.iter().zip(miss_results.iter_mut()) {
                results[*gi] = r.take();
            }
        }

        // Populate the compile cache from fresh (non-faulted) results
        // before stats are consumed by the merge below.
        if use_cache {
            let cache = cache.as_ref().expect("use_cache implies cache");
            for (i, fp) in fps.iter().enumerate() {
                let (Some(fp), Some(r)) = (fp, results[i].as_ref()) else {
                    continue;
                };
                if r.panic.is_some() || r.payload.is_some() || applied[i] {
                    continue; // faulted, or was itself a cache application
                }
                cache.store(
                    &domain,
                    *fp,
                    PassEntry::<M::Func> {
                        changed: r.changed,
                        stats: r.stats.clone(),
                        func: r.changed.then(|| funcs[i].1.clone()),
                    },
                );
            }
        }

        // Merge in stable key order: IR, changed keys, and stats come out
        // identical regardless of the shard layout.
        let mut changed_keys: Vec<M::FuncKey> = Vec::new();
        let mut stats: Vec<(&'static str, i64)> = Vec::new();
        let mut first_payload: Option<Box<dyn std::any::Any + Send>> = None;
        for (gi, ((key, _), result)) in funcs.iter().zip(results).enumerate() {
            let Some(r) = result else {
                continue; // shard failed fast before reaching this one
            };
            profile.func_times.push((format!("{key:?}"), r.time));
            for (k, v) in r.stats {
                match stats.iter_mut().find(|(sk, _)| *sk == k) {
                    Some(slot) => slot.1 += v,
                    None => stats.push((k, v)),
                }
            }
            if r.changed {
                changed_keys.push(*key);
            }
            if let Some(message) = r.panic {
                profile.contained.push(ContainedFault {
                    func_index: gi,
                    func: format!("{key:?}"),
                    message,
                });
            }
            if first_payload.is_none() {
                first_payload = r.payload;
            }
        }
        m.attach_funcs(funcs);
        if let Some(payload) = first_payload {
            // Faults were not contained (Abort): re-raise the first panic
            // in stable function order, module structurally re-attached.
            std::panic::resume_unwind(payload);
        }

        let changed = !changed_keys.is_empty();
        Ok(PassOutcome {
            changed,
            mutated: if changed {
                Mutation::Funcs(changed_keys)
            } else {
                Mutation::None
            },
            stats,
            profile: Some(profile),
        })
    }
}
