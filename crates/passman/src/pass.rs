//! The [`Pass`] trait, pass outcomes, and the name → constructor registry.

use crate::analysis::AnalysisManager;
use crate::parallel::{ExecContext, FuncPassProfile};
use crate::spec::PassOptions;
use crate::IrUnit;
use std::any::Any;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which functions a pass mutated — its analysis-invalidation declaration.
///
/// The [`AnalysisManager`] drops cached analyses only for the declared
/// functions; an imprecise pass should declare [`Mutation::All`].
pub enum Mutation<M: IrUnit> {
    /// Nothing changed; all cached analyses stay valid.
    None,
    /// Exactly these functions were mutated.
    Funcs(Vec<M::FuncKey>),
    /// Assume everything changed (also covers added/removed functions).
    All,
    /// The pass invalidated the manager itself as it rewrote (the
    /// pattern for iterative passes that refetch analyses mid-run); the
    /// runner must not invalidate again, or the final — still valid —
    /// cached analyses would be lost.
    Handled,
}

impl<M: IrUnit> Clone for Mutation<M> {
    fn clone(&self) -> Self {
        match self {
            Mutation::None => Mutation::None,
            Mutation::Funcs(fs) => Mutation::Funcs(fs.clone()),
            Mutation::All => Mutation::All,
            Mutation::Handled => Mutation::Handled,
        }
    }
}

impl<M: IrUnit> std::fmt::Debug for Mutation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::None => f.write_str("None"),
            Mutation::Funcs(fs) => f.debug_tuple("Funcs").field(fs).finish(),
            Mutation::All => f.write_str("All"),
            Mutation::Handled => f.write_str("Handled"),
        }
    }
}

impl<M: IrUnit> PartialEq for Mutation<M> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Mutation::None, Mutation::None)
            | (Mutation::All, Mutation::All)
            | (Mutation::Handled, Mutation::Handled) => true,
            (Mutation::Funcs(a), Mutation::Funcs(b)) => a == b,
            _ => false,
        }
    }
}

impl<M: IrUnit> Eq for Mutation<M> {}

/// The result of running one pass: a changed-bit, flat statistics for the
/// unified report, and the invalidation declaration.
pub struct PassOutcome<M: IrUnit> {
    /// Whether the pass changed the IR at all (drives `fixpoint(...)`).
    pub changed: bool,
    /// Which functions were mutated.
    pub mutated: Mutation<M>,
    /// Flat, serde-friendly `(key, value)` statistics.
    pub stats: Vec<(&'static str, i64)>,
    /// Per-function execution profile, populated by function-sharded
    /// passes (see [`FuncPassAdapter`](crate::parallel::FuncPassAdapter)).
    pub profile: Option<FuncPassProfile>,
}

impl<M: IrUnit> Clone for PassOutcome<M> {
    fn clone(&self) -> Self {
        PassOutcome {
            changed: self.changed,
            mutated: self.mutated.clone(),
            stats: self.stats.clone(),
            profile: self.profile.clone(),
        }
    }
}

impl<M: IrUnit> std::fmt::Debug for PassOutcome<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassOutcome")
            .field("changed", &self.changed)
            .field("mutated", &self.mutated)
            .field("stats", &self.stats)
            .field("profile", &self.profile)
            .finish()
    }
}

impl<M: IrUnit> PassOutcome<M> {
    /// An outcome that changed nothing.
    pub fn unchanged() -> Self {
        PassOutcome {
            changed: false,
            mutated: Mutation::None,
            stats: Vec::new(),
            profile: None,
        }
    }

    /// An outcome computed from statistics: changed iff any stat is
    /// nonzero; a change invalidates all functions unless narrowed with
    /// [`PassOutcome::with_mutated`].
    pub fn from_stats(stats: Vec<(&'static str, i64)>) -> Self {
        let changed = stats.iter().any(|&(_, v)| v != 0);
        PassOutcome {
            changed,
            mutated: if changed {
                Mutation::All
            } else {
                Mutation::None
            },
            stats,
            profile: None,
        }
    }

    /// Overrides the changed-bit (for passes whose stats do not capture
    /// every mutation).
    pub fn with_changed(mut self, changed: bool) -> Self {
        self.changed = changed;
        if changed && self.mutated == Mutation::None {
            self.mutated = Mutation::All;
        }
        self
    }

    /// Narrows the invalidation declaration.
    pub fn with_mutated(mut self, mutated: Mutation<M>) -> Self {
        self.mutated = mutated;
        self
    }
}

/// A failure inside a pass (e.g. SSA construction rejecting the input).
///
/// Carries an optional typed payload so drivers can surface their own
/// error types (`compile` downcasts it back to `ConstructError`).
#[derive(Debug)]
pub struct PassError {
    /// Human-readable failure description.
    pub message: String,
    /// Optional typed payload for the driver.
    pub payload: Option<Box<dyn Any>>,
}

impl PassError {
    /// A message-only failure.
    pub fn msg(message: impl Into<String>) -> Self {
        PassError {
            message: message.into(),
            payload: None,
        }
    }

    /// A failure carrying a typed payload.
    pub fn with_payload(message: impl Into<String>, payload: impl Any) -> Self {
        PassError {
            message: message.into(),
            payload: Some(Box::new(payload)),
        }
    }
}

/// A named transformation over an IR unit.
pub trait Pass<M: IrUnit> {
    /// The registry/spec name of this pass (e.g. `"constprop"`).
    fn name(&self) -> &'static str;

    /// Hands the pass its per-invocation [`ExecContext`] (worker thread
    /// count, fault-containment flag) right before [`run`](Pass::run).
    /// Module-level passes can ignore it; the default does nothing.
    fn prepare(&mut self, _cx: ExecContext) {}

    /// Which functions [`run`](Pass::run) *may* mutate — the snapshot
    /// scope for the fault-recovery path. A pass returning
    /// `Mutation::Funcs(keys)` additionally promises it will not touch
    /// the module shell (types, externs, entry) nor add or remove
    /// functions. The conservative default is everything.
    fn may_mutate(&self, _m: &M) -> Mutation<M> {
        Mutation::All
    }

    /// Runs the pass. Analyses should be requested through `am` so they
    /// are shared with other passes; the runner invalidates `am`
    /// according to the outcome's [`Mutation`].
    fn run(&mut self, m: &mut M, am: &mut AnalysisManager<M>) -> Result<PassOutcome<M>, PassError>;
}

/// A [`Pass`] built from a name and a closure (the common adapter shape).
pub struct FnPass<M: IrUnit> {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    f: Box<dyn FnMut(&mut M, &mut AnalysisManager<M>) -> Result<PassOutcome<M>, PassError>>,
}

impl<M: IrUnit> std::fmt::Debug for FnPass<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnPass").field("name", &self.name).finish()
    }
}

impl<M: IrUnit> FnPass<M> {
    /// Wraps a closure as a pass.
    pub fn new(
        name: &'static str,
        f: impl FnMut(&mut M, &mut AnalysisManager<M>) -> Result<PassOutcome<M>, PassError> + 'static,
    ) -> Self {
        FnPass {
            name,
            f: Box::new(f),
        }
    }

    /// Wraps an infallible closure as a pass.
    pub fn infallible(
        name: &'static str,
        mut f: impl FnMut(&mut M, &mut AnalysisManager<M>) -> PassOutcome<M> + 'static,
    ) -> Self {
        FnPass {
            name,
            f: Box::new(move |m, am| Ok(f(m, am))),
        }
    }
}

impl<M: IrUnit> Pass<M> for FnPass<M> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&mut self, m: &mut M, am: &mut AnalysisManager<M>) -> Result<PassOutcome<M>, PassError> {
        (self.f)(m, am)
    }
}

type Ctor<M> = Rc<dyn Fn(&PassOptions) -> Result<Box<dyn Pass<M>>, String>>;

/// Maps spec names to pass constructors.
///
/// Constructors receive the [`PassOptions`] attached at the spec call
/// site (minus the runner-reserved budget keys). Passes registered with
/// [`register`](PassRegistry::register) accept no options and reject any
/// they are given; option-aware passes use
/// [`register_with`](PassRegistry::register_with).
pub struct PassRegistry<M: IrUnit> {
    ctors: BTreeMap<&'static str, Ctor<M>>,
}

impl<M: IrUnit> std::fmt::Debug for PassRegistry<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl<M: IrUnit> Default for PassRegistry<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: IrUnit> PassRegistry<M> {
    /// An empty registry.
    pub fn new() -> Self {
        PassRegistry {
            ctors: BTreeMap::new(),
        }
    }

    /// Registers an option-free pass constructor under `name`. Later
    /// registrations shadow earlier ones. The pass rejects any call-site
    /// option (other than the runner-reserved budget keys) with an error
    /// naming the pass, so `constprop<bogus>` fails loudly instead of
    /// silently ignoring the typo.
    pub fn register(&mut self, name: &'static str, ctor: impl Fn() -> Box<dyn Pass<M>> + 'static) {
        self.ctors.insert(
            name,
            Rc::new(move |opts: &PassOptions| {
                if let Some((key, _)) = opts.iter().next() {
                    return Err(format!("pass `{name}` takes no options (got `{key}`)"));
                }
                Ok(ctor())
            }),
        );
    }

    /// Registers an option-aware pass constructor under `name`. The
    /// constructor receives call-site options (reserved budget keys
    /// already stripped) and should reject unknown keys.
    pub fn register_with(
        &mut self,
        name: &'static str,
        ctor: impl Fn(&PassOptions) -> Result<Box<dyn Pass<M>>, String> + 'static,
    ) {
        self.ctors.insert(name, Rc::new(ctor));
    }

    /// Instantiates the pass registered under `name` with no options.
    pub fn create(&self, name: &str) -> Option<Box<dyn Pass<M>>> {
        self.create_with(name, &PassOptions::none())
            .and_then(Result::ok)
    }

    /// Instantiates the pass registered under `name` with the given
    /// options. `None` if the name is unknown; `Some(Err(_))` if the
    /// constructor rejected the options.
    pub fn create_with(
        &self,
        name: &str,
        opts: &PassOptions,
    ) -> Option<Result<Box<dyn Pass<M>>, String>> {
        self.ctors.get(name).map(|c| c(opts))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.ctors.keys().copied().collect()
    }
}
