//! The demand-driven query bridge between sharded workers and the
//! analysis cache.
//!
//! The `Rc`-based [`AnalysisManager`] lives on the main thread; sharded
//! executors ([`FuncPassAdapter`](crate::FuncPassAdapter), the sharded
//! lower stage) run workers that must not touch it. A [`QueryCtx`] is
//! the seam between the two: it is constructed on the main thread — one
//! per function, in stable key order, while the module is still whole —
//! and hands the consumer scoped access to the module, the function's
//! [`Fingerprint`], and any cached [`Analysis`]/[`ModuleAnalysis`]
//! result. Whatever the consumer *clones out* of the ctx (an owned dom
//! tree, an escape summary) travels into the worker as its prefetched
//! context.
//!
//! This generalizes the original `FuncPass::prefetch(m, key, am)`
//! signature: instead of the raw manager, prefetchers now see a ctx that
//! also answers fingerprint queries — which is how the executors key
//! their [`CompileCache`](crate::CompileCache) lookups — and that can be
//! constructed by *any* sharded consumer (the lowering stage uses it the
//! same way the pass executor does).

use crate::analysis::{Analysis, AnalysisManager, ModuleAnalysis};
use crate::fingerprint::Fingerprint;
use crate::IrUnit;
use std::rc::Rc;

/// Scoped, demand-driven access to one function's analyses, fingerprint,
/// and module — handed to prefetch hooks on the main thread.
pub struct QueryCtx<'q, M: IrUnit> {
    m: &'q M,
    key: M::FuncKey,
    am: &'q mut AnalysisManager<M>,
}

impl<M: IrUnit> std::fmt::Debug for QueryCtx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCtx").field("key", &self.key).finish()
    }
}

impl<'q, M: IrUnit> QueryCtx<'q, M> {
    /// A query context for `key`, borrowing the module and the manager.
    pub fn new(m: &'q M, key: M::FuncKey, am: &'q mut AnalysisManager<M>) -> Self {
        QueryCtx { m, key, am }
    }

    /// The (whole, still-attached) module.
    pub fn module(&self) -> &M {
        self.m
    }

    /// The function this context is scoped to.
    pub fn key(&self) -> M::FuncKey {
        self.key
    }

    /// The function's current content fingerprint (`None` when the IR
    /// does not support fingerprints).
    pub fn fingerprint(&mut self) -> Option<Fingerprint> {
        self.am.fingerprint_of(self.m, self.key)
    }

    /// The cached result of per-function analysis `A` for this function,
    /// computing it on first request.
    pub fn analysis<A: Analysis<M>>(&mut self) -> Rc<A::Output> {
        self.am.get::<A>(self.m, self.key)
    }

    /// The cached result of module-wide analysis `A`.
    pub fn module_analysis<A: ModuleAnalysis<M>>(&mut self) -> Rc<A::Output> {
        self.am.get_module::<A>(self.m)
    }
}
