//! Fault policies and degradation records.
//!
//! A *fault* is anything that would previously have aborted a pipeline:
//! a pass panicking, a pass returning an error, the inter-pass verifier
//! rejecting the IR, or a budget being exceeded. The [`FaultPolicy`]
//! decides what the runner does with a fault; under the recovering
//! policies the module is rolled back to the snapshot taken before the
//! offending pass (the last verified IR) and the fault is recorded as a
//! [`Degradation`] in the [`RunReport`](crate::RunReport) instead of
//! tearing the pipeline down.

use crate::budget::BudgetViolation;
use std::fmt;
use std::str::FromStr;

/// What the runner does when a pass faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Fail fast (the pre-fault-tolerance behaviour): pass errors and
    /// verifier failures become [`RunError`](crate::RunError)s, panics
    /// propagate, and the module is left as the failing pass left it.
    #[default]
    Abort,
    /// Roll the module back to the snapshot taken before the faulting
    /// pass, record a [`Degradation`], and continue with the next pass.
    SkipPass,
    /// Roll back like [`FaultPolicy::SkipPass`], but stop the pipeline:
    /// the module is left in its last verified state and the report is
    /// marked as stopped early.
    StopPipeline,
}

impl FromStr for FaultPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "abort" => Ok(FaultPolicy::Abort),
            "skip" | "skip-pass" => Ok(FaultPolicy::SkipPass),
            "stop" | "stop-pipeline" => Ok(FaultPolicy::StopPipeline),
            other => Err(format!(
                "unknown fault policy `{other}` (expected abort|skip|stop)"
            )),
        }
    }
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultPolicy::Abort => "abort",
            FaultPolicy::SkipPass => "skip",
            FaultPolicy::StopPipeline => "stop",
        })
    }
}

/// Why a pass was degraded.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultCause {
    /// The pass body panicked; the payload's message, if extractable.
    Panic(String),
    /// The pass returned a [`PassError`](crate::PassError).
    PassFailed(String),
    /// The inter-pass verifier rejected the IR the pass produced.
    VerifyFailed(String),
    /// A per-pass or pipeline budget was exceeded.
    Budget(BudgetViolation),
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Panic(msg) => write!(f, "panic: {msg}"),
            FaultCause::PassFailed(msg) => write!(f, "pass error: {msg}"),
            FaultCause::VerifyFailed(msg) => write!(f, "verifier: {msg}"),
            FaultCause::Budget(v) => write!(f, "budget: {v}"),
        }
    }
}

/// What the runner did about a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Module rolled back to the pre-pass snapshot; pipeline continued.
    RolledBack,
    /// Module rolled back (where applicable) and the pipeline stopped.
    Stopped,
}

/// One contained fault: which pass, why, and what was done.
#[derive(Clone, Debug, PartialEq)]
pub struct Degradation {
    /// The faulting pass (spec name).
    pub pass: String,
    /// 0-based pass invocation index the fault happened at (the primary
    /// sort key of the deterministic degradation ordering).
    pub invocation: usize,
    /// Why it faulted.
    pub cause: FaultCause,
    /// `Some(i)` if the fault happened in iteration `i` of a
    /// `fixpoint(...)` group.
    pub fixpoint_iteration: Option<usize>,
    /// For a fault contained to one function of a sharded pass: the
    /// function's index in the stable function order (the secondary sort
    /// key). `None` for whole-pass faults, which sort first.
    pub func_index: Option<usize>,
    /// Rendered function key (e.g. `fn3`) for contained faults.
    pub func: Option<String>,
    /// What the runner did.
    pub action: RecoveryAction,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` degraded ({})", self.pass, self.cause)?;
        if let Some(func) = &self.func {
            write!(f, " [func {func}]")?;
        }
        if let Some(i) = self.fixpoint_iteration {
            write!(f, " [fix #{i}]")?;
        }
        match self.action {
            RecoveryAction::RolledBack => write!(f, " — rolled back, pipeline continued"),
            RecoveryAction::Stopped => write!(f, " — pipeline stopped"),
        }
    }
}
