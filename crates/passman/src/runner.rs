//! The pass-manager runner: executes a [`PipelineSpec`] against a
//! [`PassRegistry`], timing each pass, invalidating cached analyses
//! according to each pass's declaration, optionally verifying the IR
//! between passes, enforcing [`Budgets`], and accumulating a unified
//! [`RunReport`].
//!
//! With a recovering [`FaultPolicy`] installed (see
//! [`PassManager::on_fault`]), every pass runs under `catch_unwind` with
//! its declared mutation scope snapshotted beforehand (whole-module
//! clone by default, per-function copy-on-write via
//! [`PassManager::with_cow_snapshots`]): a panicking, erroring,
//! verifier-failing, or over-budget pass is rolled back to the last
//! verified IR and recorded as a [`Degradation`], and the pipeline either
//! continues (`SkipPass`) or stops cleanly (`StopPipeline`).
//!
//! Function-sharded passes (see [`crate::parallel`]) additionally run
//! their per-function bodies on [`PassManager::with_threads`] worker
//! threads, with bit-identical results to serial runs, and surface a
//! per-function wall-clock/shard-utilization profile through each
//! [`PassRun`].

use crate::analysis::{AnalysisManager, CacheCounter, FingerprintStats};
use crate::budget::{BudgetViolation, Budgets};
use crate::cache::{CompileCache, CompileCacheStats};
use crate::fault::{FaultPlan, InjectKind};
use crate::parallel::{ExecContext, FuncPassProfile, ShardedIr};
use crate::pass::{Pass, PassError, PassRegistry};
use crate::recover::{Degradation, FaultCause, FaultPolicy, RecoveryAction};
use crate::snapshot::{CowEngine, FullCloneEngine, SnapshotCost, SnapshotEngine, SnapshotStats};
use crate::spec::{PassCall, PipelineSpec, SpecStep};
use crate::IrUnit;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One executed pass instance in the report.
#[derive(Clone, Debug)]
pub struct PassRun {
    /// Pass name.
    pub name: String,
    /// Wall time of the pass body (excluding verification).
    pub time: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Flat statistics reported by the pass.
    pub stats: Vec<(&'static str, i64)>,
    /// `Some(i)` if this run happened in iteration `i` (0-based) of a
    /// `fixpoint(...)` group.
    pub fixpoint_iteration: Option<usize>,
    /// Driver-attached annotations (e.g. collection censuses).
    pub annotations: Vec<(String, String)>,
    /// Cost of the pre-pass snapshot (recovering policies only).
    pub snapshot: Option<SnapshotCost>,
    /// Per-function execution profile (function-sharded passes only).
    pub profile: Option<FuncPassProfile>,
}

impl PassRun {
    /// Looks up a statistic by key.
    pub fn stat(&self, key: &str) -> Option<i64> {
        self.stats.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// The unified report of a pipeline run: per-pass timing and stats plus
/// analysis-cache counters and any contained faults.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Every executed pass, in execution order (fixpoint iterations
    /// appear once per execution). Degraded passes appear with
    /// `changed = false` and a `degraded` annotation.
    pub passes: Vec<PassRun>,
    /// Total wall time, including verification.
    pub total: Duration,
    /// Analysis-cache hit/miss counters by analysis name.
    pub cache: Vec<(String, CacheCounter)>,
    /// Number of analysis-cache invalidation events.
    pub invalidation_events: u64,
    /// Faults contained by the fault policy, sorted by pass invocation
    /// index then function index — deterministic, so parallel and serial
    /// runs diff clean.
    pub degradations: Vec<Degradation>,
    /// Whether the pipeline stopped before completing the spec (the
    /// `StopPipeline` policy fired, or the pipeline time budget ran out).
    pub stopped_early: bool,
    /// Worker threads the manager was configured with.
    pub threads: usize,
    /// Cumulative snapshot-engine counters (zeroed under
    /// [`FaultPolicy::Abort`], which never snapshots).
    pub snapshots: SnapshotStats,
    /// Cross-job compile-cache hit/skip/miss counters for this run
    /// (all-zero when no [`CompileCache`] was installed).
    pub compile_cache: CompileCacheStats,
    /// Fingerprint-retention counters for this run (all-zero for IRs
    /// without fingerprint support).
    pub fingerprints: FingerprintStats,
}

impl RunReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }

    /// `(name, time)` pairs in execution order (the legacy
    /// `PipelineReport::pass_times` shape).
    pub fn pass_times(&self) -> Vec<(String, Duration)> {
        self.passes
            .iter()
            .map(|p| (p.name.clone(), p.time))
            .collect()
    }

    /// The last run of the named pass, if any.
    pub fn last_run(&self, name: &str) -> Option<&PassRun> {
        self.passes.iter().rev().find(|p| p.name == name)
    }

    /// Cache counter for one analysis name (zeroed if never requested).
    pub fn cache_counter(&self, name: &str) -> CacheCounter {
        self.cache
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or_default()
    }

    /// Whether any fault was contained during the run.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The degradation recorded for the named pass, if any.
    pub fn degradation_of(&self, pass: &str) -> Option<&Degradation> {
        self.degradations.iter().find(|d| d.pass == pass)
    }

    /// Renders a plain-text per-pass table (for debugging and bench
    /// binaries).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10}  {:>7}  stats\n",
            "pass", "time", "changed"
        ));
        for p in &self.passes {
            let mut stats: Vec<String> = p.stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            if let Some(s) = &p.snapshot {
                if s.full {
                    stats.push(format!("[snap full {}u]", s.units_cloned));
                } else if s.funcs_cloned + s.funcs_reused > 0 {
                    stats.push(format!(
                        "[snap {}c/{}r {}u]",
                        s.funcs_cloned, s.funcs_reused, s.units_cloned
                    ));
                }
            }
            if let Some(prof) = &p.profile {
                if prof.shards.len() > 1 {
                    stats.push(format!(
                        "[{} funcs / {} shards, max {:.0}%]",
                        prof.func_times.len(),
                        prof.shards.len(),
                        prof.max_shard_fraction() * 100.0
                    ));
                }
            }
            let name = match p.fixpoint_iteration {
                Some(i) => format!("{} [fix #{i}]", p.name),
                None => p.name.clone(),
            };
            out.push_str(&format!(
                "{:<24} {:>8.3}ms  {:>7}  {}\n",
                name,
                p.time.as_secs_f64() * 1e3,
                p.changed,
                stats.join(" ")
            ));
        }
        for (name, c) in &self.cache {
            out.push_str(&format!(
                "analysis {:<15} hits={} misses={}\n",
                name, c.hits, c.misses
            ));
        }
        if self.compile_cache.lookups() > 0 {
            let cc = &self.compile_cache;
            out.push_str(&format!(
                "compile-cache hits={} skips={} misses={} contended={} (reused {:.0}%)\n",
                cc.hits,
                cc.skips,
                cc.misses,
                cc.contended,
                cc.reuse_rate() * 100.0
            ));
        }
        if self.fingerprints.refreshes > 0 {
            let fp = &self.fingerprints;
            out.push_str(&format!(
                "fingerprints refreshes={} retained={} dropped={}\n",
                fp.refreshes, fp.retained, fp.dropped
            ));
        }
        for d in &self.degradations {
            out.push_str(&format!("degraded {d}\n"));
        }
        if self.threads > 1 {
            out.push_str(&format!("threads {}\n", self.threads));
        }
        if self.snapshots.captures > 0 {
            let s = &self.snapshots;
            out.push_str(&format!(
                "snapshots captures={} full={} cloned={} reused={} units={} restores={}\n",
                s.captures,
                s.full_clones,
                s.funcs_cloned,
                s.funcs_reused,
                s.units_cloned,
                s.restores
            ));
        }
        if self.stopped_early {
            out.push_str("pipeline stopped early\n");
        }
        out
    }
}

/// A pipeline-run failure (under the [`FaultPolicy::Abort`] policy;
/// recovering policies turn most of these into
/// [`Degradation`]s instead).
#[derive(Debug)]
pub enum RunError {
    /// The spec referenced a pass the registry does not know.
    UnknownPass {
        /// The unknown name.
        name: String,
        /// All registered names, for the error message.
        known: Vec<&'static str>,
    },
    /// A pass constructor rejected its spec options.
    InvalidOptions {
        /// The pass whose options were rejected.
        pass: String,
        /// The constructor's message.
        message: String,
    },
    /// A pass failed (e.g. SSA construction rejected the input).
    PassFailed {
        /// The failing pass.
        pass: String,
        /// The failure.
        error: PassError,
    },
    /// Inter-pass verification failed right after the named pass.
    VerifyFailed {
        /// The pass after which verification failed.
        pass: String,
        /// The verifier's message.
        message: String,
    },
    /// A budget was exceeded by (or right after) the named pass.
    BudgetExceeded {
        /// The pass charged with the violation.
        pass: String,
        /// The violated budget.
        violation: BudgetViolation,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownPass { name, known } => {
                write!(
                    f,
                    "unknown pass `{name}`; known passes: {}",
                    known.join(", ")
                )
            }
            RunError::InvalidOptions { pass, message } => {
                write!(f, "invalid options for pass `{pass}`: {message}")
            }
            RunError::PassFailed { pass, error } => {
                write!(f, "pass `{pass}` failed: {}", error.message)
            }
            RunError::VerifyFailed { pass, message } => {
                write!(f, "IR verification failed after pass `{pass}`: {message}")
            }
            RunError::BudgetExceeded { pass, violation } => {
                write!(f, "budget exceeded at pass `{pass}`: {violation}")
            }
        }
    }
}

impl std::error::Error for RunError {}

type Verifier<M> = Rc<dyn Fn(&M, &mut AnalysisManager<M>) -> Result<(), String>>;
type Observer<M> = Rc<dyn Fn(&M, &mut PassRun)>;
type SymCheck<M> = Rc<dyn Fn(&M, &M, u64) -> Result<(), String>>;

/// The per-pass symbolic equivalence verifier (see
/// [`PassManager::with_sym_verifier`]): a capture hook cloning the IR
/// before a pass runs, and a check proving pre-pass ≡ post-pass under a
/// path budget (`0` = the verifier's default budget).
struct SymVerifier<M> {
    capture: Rc<dyn Fn(&M) -> M>,
    check: SymCheck<M>,
}

/// What [`PassManager::run_one`] tells the step loop.
enum StepOutcome {
    /// The pass ran (or was degraded under `SkipPass`); the flag is its
    /// changed-bit (`false` for a degraded pass).
    Ran(bool),
    /// The pipeline must stop (`StopPipeline` fired).
    Stop,
}

/// Drives pipeline specs over an IR unit.
pub struct PassManager<M: IrUnit> {
    registry: PassRegistry<M>,
    verifier: Option<Verifier<M>>,
    verify_between_passes: bool,
    max_fixpoint_iters: usize,
    observer: Option<Observer<M>>,
    policy: FaultPolicy,
    budgets: Budgets,
    snapshots: Option<RefCell<Box<dyn SnapshotEngine<M>>>>,
    injection: Option<FaultPlan>,
    /// Worker threads for function-sharded passes (1 = serial).
    threads: usize,
    /// 0-based index of the next pass invocation (reset per run).
    invocations: Cell<usize>,
    /// Cross-job compile cache installed into each run's analysis
    /// manager (unless the manager already carries one).
    compile_cache: Option<CompileCache>,
    /// Symbolic per-pass equivalence verifier, consulted only by pass
    /// invocations carrying the `verify-sym` spec option.
    sym_verifier: Option<SymVerifier<M>>,
}

impl<M: IrUnit> std::fmt::Debug for PassManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("registry", &self.registry)
            .field("verify_between_passes", &self.verify_between_passes)
            .field("max_fixpoint_iters", &self.max_fixpoint_iters)
            .field("policy", &self.policy)
            .field("budgets", &self.budgets)
            .field("injection", &self.injection)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<M: IrUnit> PassManager<M> {
    /// A manager over the given registry. Inter-pass verification
    /// defaults to on in debug builds and off in release builds; the
    /// fault policy defaults to [`FaultPolicy::Abort`] (fail fast, no
    /// snapshotting cost) and budgets default to unlimited.
    pub fn new(registry: PassRegistry<M>) -> Self {
        PassManager {
            registry,
            verifier: None,
            verify_between_passes: cfg!(debug_assertions),
            max_fixpoint_iters: 8,
            observer: None,
            policy: FaultPolicy::Abort,
            budgets: Budgets::none(),
            snapshots: None,
            injection: None,
            threads: 1,
            invocations: Cell::new(0),
            compile_cache: None,
            sym_verifier: None,
        }
    }

    /// Installs the symbolic per-pass equivalence verifier behind the
    /// `verify-sym` spec option: for each invocation carrying the
    /// option (`dce<verify-sym>`, `fusion<verify-sym=128>`), `capture`
    /// clones the IR before the pass body and `check(before, after,
    /// budget)` must prove the two equivalent afterwards. The budget is
    /// the option's value (`0` for the bare flag — the checker's
    /// default). A failed check is classified exactly like an IR
    /// verifier failure: [`RunError::VerifyFailed`] under
    /// [`FaultPolicy::Abort`], rollback + degradation under recovering
    /// policies. Passes without the option never pay the capture cost.
    pub fn with_sym_verifier(
        mut self,
        capture: impl Fn(&M) -> M + 'static,
        check: impl Fn(&M, &M, u64) -> Result<(), String> + 'static,
    ) -> Self {
        self.sym_verifier = Some(SymVerifier {
            capture: Rc::new(capture),
            check: Rc::new(check),
        });
        self
    }

    /// Installs a cross-job [`CompileCache`]: function-sharded passes
    /// then skip functions whose `(pass, input-fingerprint)` output is
    /// already cached — across fixpoint iterations, across `run_with`
    /// calls, and across jobs sharing the cache handle. Requires the IR
    /// to support fingerprints ([`IrUnit::fingerprints`]); without them
    /// the cache is never consulted.
    pub fn with_compile_cache(mut self, cache: CompileCache) -> Self {
        self.compile_cache = Some(cache);
        self
    }

    /// Sets the worker-thread count for function-sharded passes (see
    /// [`FuncPassAdapter`](crate::parallel::FuncPassAdapter)). Results
    /// are bit-identical to serial runs; only wall-clock changes. The
    /// per-call spec option `parallel=N` overrides this for one
    /// invocation. Default 1 (serial).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the IR verifier run between passes.
    pub fn with_verifier(mut self, v: impl Fn(&M) -> Result<(), String> + 'static) -> Self {
        self.verifier = Some(Rc::new(move |m, _am| v(m)));
        self
    }

    /// Sets an IR verifier that may consult (and populate) the run's
    /// [`AnalysisManager`] — e.g. to reuse cached dominator trees for
    /// functions no pass has touched since they were last verified. Safe
    /// with rollback: a failed verification restores the snapshot and
    /// then drops *every* cached analysis, so nothing the verifier
    /// computed against the discarded state survives.
    pub fn with_verifier_am(
        mut self,
        v: impl Fn(&M, &mut AnalysisManager<M>) -> Result<(), String> + 'static,
    ) -> Self {
        self.verifier = Some(Rc::new(v));
        self
    }

    /// Forces inter-pass verification on or off (overriding the
    /// debug-build default).
    pub fn verify_between_passes(mut self, on: bool) -> Self {
        self.verify_between_passes = on;
        self
    }

    /// Caps `fixpoint(...)` iteration counts (default 8; overridden per
    /// group by `fixpoint<max=N>(...)` and by
    /// [`Budgets::max_fixpoint_iters`]).
    pub fn max_fixpoint_iters(mut self, n: usize) -> Self {
        self.max_fixpoint_iters = n.max(1);
        self
    }

    /// Installs a post-pass observer, called with the module and the
    /// just-recorded [`PassRun`] (e.g. to attach censuses).
    pub fn with_observer(mut self, obs: impl Fn(&M, &mut PassRun) + 'static) -> Self {
        self.observer = Some(Rc::new(obs));
        self
    }

    /// Sets the fault policy. The recovering policies snapshot what each
    /// pass may mutate before running it (hence the `Clone` bound) and
    /// roll back on any contained fault; [`FaultPolicy::Abort`] restores
    /// the legacy fail-fast behaviour and costs nothing.
    ///
    /// If no snapshot engine is installed yet, this installs the
    /// whole-module [`FullCloneEngine`]; a previously installed engine
    /// (e.g. [`with_cow_snapshots`](PassManager::with_cow_snapshots)) is
    /// kept.
    pub fn on_fault(mut self, policy: FaultPolicy) -> Self
    where
        M: Clone + 'static,
    {
        self.policy = policy;
        if self.snapshots.is_none() {
            self.snapshots = Some(RefCell::new(Box::new(FullCloneEngine::<M>::new())));
        }
        self
    }

    /// Installs the per-function copy-on-write [`CowEngine`]: recovering
    /// policies then clone only the functions a pass declares it may
    /// mutate (reusing clones of still-clean functions across passes)
    /// instead of the whole module. Overrides any earlier engine.
    pub fn with_cow_snapshots(mut self) -> Self
    where
        M: ShardedIr + Clone + 'static,
    {
        self.snapshots = Some(RefCell::new(Box::new(CowEngine::<M>::new())));
        self
    }

    /// Forces the legacy whole-module [`FullCloneEngine`] (the baseline
    /// the compile-time bench compares CoW against). Overrides any
    /// earlier engine.
    pub fn with_full_clone_snapshots(mut self) -> Self
    where
        M: Clone + 'static,
    {
        self.snapshots = Some(RefCell::new(Box::new(FullCloneEngine::<M>::new())));
        self
    }

    /// Sets pipeline-wide default budgets (per-pass spec options like
    /// `dce<max-ms=50>` override the per-pass axes).
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Installs a deterministic fault-injection plan (tests and fuzz
    /// harnesses only — see [`crate::fault`]).
    pub fn with_fault_injection(mut self, plan: FaultPlan) -> Self {
        self.injection = Some(plan);
        self
    }

    /// The underlying registry.
    pub fn registry(&self) -> &PassRegistry<M> {
        &self.registry
    }

    /// The active fault policy.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Validates that every pass named in `spec` is registered.
    pub fn validate(&self, spec: &PipelineSpec) -> Result<(), RunError> {
        for name in spec.pass_names() {
            if !self.registry.contains(name) {
                return Err(RunError::UnknownPass {
                    name: name.to_string(),
                    known: self.registry.names(),
                });
            }
        }
        Ok(())
    }

    /// Runs a spec with a fresh analysis manager.
    pub fn run(&self, m: &mut M, spec: &PipelineSpec) -> Result<RunReport, RunError> {
        let mut am = AnalysisManager::new();
        self.run_with(m, spec, &mut am)
    }

    /// Runs a spec against an existing analysis manager (so cached
    /// analyses survive across multiple `run_with` calls).
    pub fn run_with(
        &self,
        m: &mut M,
        spec: &PipelineSpec,
        am: &mut AnalysisManager<M>,
    ) -> Result<RunReport, RunError> {
        self.validate(spec)?;
        let start = Instant::now();
        self.invocations.set(0);
        if let (Some(cache), None) = (&self.compile_cache, am.compile_cache()) {
            am.set_compile_cache(cache.clone());
        }
        // Per-run deltas: the manager's counters accumulate across
        // `run_with` calls.
        let cc_before = am.compile_cache_stats();
        let fp_before = am.fingerprint_stats();
        // Contention is counted by the shared cache handle itself (it is
        // a property of the lock, not of this manager), so delta it too.
        let contention_before = am.compile_cache().map_or(0, |c| c.contention());
        let mut report = RunReport::default();
        // Pass instances are created once per distinct spec call (name +
        // options) and reused across fixpoint iterations, so stateful
        // passes can accumulate.
        let mut instances: HashMap<String, Box<dyn Pass<M>>> = HashMap::new();

        'steps: for step in &spec.steps {
            match step {
                SpecStep::Pass(call) => {
                    match self.run_one(m, am, &mut instances, call, None, &mut report, start)? {
                        StepOutcome::Ran(_) => {}
                        StepOutcome::Stop => {
                            report.stopped_early = true;
                            break 'steps;
                        }
                    }
                }
                SpecStep::Fixpoint { opts, body } => {
                    let cap = match opts.get_parsed::<usize>("max") {
                        Ok(Some(n)) => n.max(1),
                        Ok(None) => self
                            .budgets
                            .max_fixpoint_iters
                            .unwrap_or(self.max_fixpoint_iters),
                        Err(message) => {
                            return Err(RunError::InvalidOptions {
                                pass: "fixpoint".into(),
                                message,
                            })
                        }
                    };
                    for iter in 0..cap {
                        let mut any_changed = false;
                        for call in body {
                            match self.run_one(
                                m,
                                am,
                                &mut instances,
                                call,
                                Some(iter),
                                &mut report,
                                start,
                            )? {
                                StepOutcome::Ran(changed) => any_changed |= changed,
                                StepOutcome::Stop => {
                                    report.stopped_early = true;
                                    break 'steps;
                                }
                            }
                        }
                        if !any_changed {
                            break;
                        }
                    }
                }
            }
        }

        report.total = start.elapsed();
        report.cache = am
            .counters()
            .iter()
            .map(|(&n, &c)| (n.to_string(), c))
            .collect();
        report.invalidation_events = am.invalidation_events();
        report.compile_cache = am.compile_cache_stats().since(cc_before);
        report.compile_cache.contended += am
            .compile_cache()
            .map_or(0, |c| c.contention())
            .saturating_sub(contention_before);
        report.fingerprints = am.fingerprint_stats().since(fp_before);
        report.threads = self.threads;
        if let Some(engine) = &self.snapshots {
            report.snapshots = engine.borrow().stats();
        }
        // Deterministic ordering: pass invocation index, then function
        // index (whole-pass faults first). Pushes already happen in this
        // order, so the (stable) sort is a guard, not a shuffle.
        report
            .degradations
            .sort_by_key(|d| (d.invocation, d.func_index));
        Ok(report)
    }

    /// Instantiates (or reuses) the pass for `call`.
    fn instance<'i>(
        &self,
        instances: &'i mut HashMap<String, Box<dyn Pass<M>>>,
        call: &PassCall,
    ) -> Result<&'i mut Box<dyn Pass<M>>, RunError> {
        let key = call.to_string();
        if !instances.contains_key(&key) {
            let created = self
                .registry
                .create_with(&call.name, &call.opts.without_reserved())
                .ok_or_else(|| RunError::UnknownPass {
                    name: call.name.clone(),
                    known: self.registry.names(),
                })?;
            let pass = created.map_err(|message| RunError::InvalidOptions {
                pass: call.name.clone(),
                message,
            })?;
            instances.insert(key.clone(), pass);
        }
        Ok(instances.get_mut(&key).expect("just inserted"))
    }

    /// The effective per-pass budgets for `call` (spec options override
    /// the pipeline-wide defaults).
    fn pass_budgets(&self, call: &PassCall) -> Result<(Option<u64>, Option<f64>), RunError> {
        let bad = |message| RunError::InvalidOptions {
            pass: call.name.clone(),
            message,
        };
        let ms = call
            .opts
            .get_parsed::<u64>("max-ms")
            .map_err(bad)?
            .or(self.budgets.max_pass_millis);
        let growth = call
            .opts
            .get_parsed::<f64>("max-growth")
            .map_err(bad)?
            .or(self.budgets.max_growth);
        Ok((ms, growth))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        m: &mut M,
        am: &mut AnalysisManager<M>,
        instances: &mut HashMap<String, Box<dyn Pass<M>>>,
        call: &PassCall,
        fixpoint_iteration: Option<usize>,
        report: &mut RunReport,
        pipeline_start: Instant,
    ) -> Result<StepOutcome, RunError> {
        let name = call.name.as_str();
        let (max_ms, max_growth) = self.pass_budgets(call)?;
        let threads = match call.opts.get_parsed::<usize>("parallel") {
            Ok(Some(n)) => n.max(1),
            Ok(None) => self.threads,
            Err(message) => {
                return Err(RunError::InvalidOptions {
                    pass: name.to_string(),
                    message,
                })
            }
        };
        // Per-pass symbolic verification (`verify-sym` / `verify-sym=N`).
        let sym_requested = call.opts.iter().any(|(k, _)| k == "verify-sym");
        let sym_budget = match call.opts.get_parsed::<u64>("verify-sym") {
            Ok(v) => v.unwrap_or(0),
            Err(message) => {
                return Err(RunError::InvalidOptions {
                    pass: name.to_string(),
                    message,
                })
            }
        };
        let sym = if sym_requested {
            match &self.sym_verifier {
                Some(sv) => Some(sv),
                None => {
                    return Err(RunError::InvalidOptions {
                        pass: name.to_string(),
                        message: "option `verify-sym` requires a symbolic verifier \
                                  (see PassManager::with_sym_verifier)"
                            .into(),
                    })
                }
            }
        } else {
            None
        };
        let pass = self.instance(instances, call)?;

        let invocation = self.invocations.get();
        self.invocations.set(invocation + 1);
        let plan = self
            .injection
            .as_ref()
            .filter(|plan| plan.fires(invocation, name));
        let injected = plan.map(|plan| plan.kind);
        // A function-targeted panic is injected inside the sharded
        // executor (via the ExecContext), not ahead of the pass body.
        let injected_func = plan.and_then(|plan| plan.func);

        let recovering = self.policy != FaultPolicy::Abort;
        let size_before = if max_growth.is_some() {
            m.size_hint()
        } else {
            0
        };
        pass.prepare(ExecContext {
            threads,
            contain_faults: recovering,
            inject_func_panic: if injected == Some(InjectKind::Panic) {
                injected_func
            } else {
                None
            },
        });
        let snapshot_cost = if recovering {
            let engine = self
                .snapshots
                .as_ref()
                .expect("recovering policies are installed with a snapshot engine");
            let scope = pass.may_mutate(m);
            let mut engine = engine.borrow_mut();
            engine.capture(m, &scope);
            Some(engine.last_cost())
        } else {
            None
        };

        // The symbolic verifier needs the pre-pass IR to prove against.
        let sym_before = sym.map(|sv| (sv.capture)(m));

        // --- run the pass body ---------------------------------------
        let t0 = Instant::now();
        let body = |m: &mut M, am: &mut AnalysisManager<M>, pass: &mut Box<dyn Pass<M>>| {
            if injected == Some(InjectKind::Panic) && injected_func.is_none() {
                panic!("fault injection: panic in `{name}` at invocation {invocation}");
            }
            pass.run(m, am)
        };
        let result: Result<Result<_, PassError>, String> = if recovering {
            catch_unwind(AssertUnwindSafe(|| body(m, am, pass))).map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string())
            })
        } else {
            // Abort: let panics propagate with their original backtrace.
            Ok(body(m, am, pass))
        };
        let time = t0.elapsed();

        // --- classify the outcome into (success, fault) ---------------
        let mut fault: Option<FaultCause> = None;
        let mut success: Option<crate::pass::PassOutcome<M>> = None;
        match result {
            Err(panic_msg) => fault = Some(FaultCause::Panic(panic_msg)),
            Ok(Err(error)) => {
                if recovering {
                    fault = Some(FaultCause::PassFailed(error.message.clone()));
                } else {
                    return Err(RunError::PassFailed {
                        pass: name.to_string(),
                        error,
                    });
                }
            }
            Ok(Ok(outcome)) => {
                if outcome.changed {
                    // Fingerprint-capable IRs resolve every scope lazily
                    // ("drop what actually changed") at the next query;
                    // others get the legacy push-invalidation (wholesale
                    // for `None`/`All`, per-function for `Funcs`,
                    // nothing for `Handled`).
                    am.note_mutation(m, &outcome.mutated);
                }

                // Verification (a forced injection counts as a failure).
                let verify_msg = if injected == Some(InjectKind::VerifyFail) {
                    Some(format!(
                        "fault injection: forced verifier failure after `{name}`"
                    ))
                } else if self.verify_between_passes {
                    match &self.verifier {
                        Some(v) => v(m, am).err(),
                        None => None,
                    }
                } else {
                    None
                };
                // Symbolic per-pass verification, only once the plain
                // verifier accepted the IR: prove pre-pass ≡ post-pass.
                // An unchanged pass is trivially equivalent — skip it.
                let verify_msg = verify_msg.or_else(|| match (&sym, &sym_before) {
                    (Some(sv), Some(before)) if outcome.changed => {
                        (sv.check)(before, m, sym_budget)
                            .err()
                            .map(|e| format!("verify-sym: {e}"))
                    }
                    _ => None,
                });

                if let Some(message) = verify_msg {
                    fault = Some(FaultCause::VerifyFailed(message));
                } else if let Some(v) =
                    self.budget_violation(injected, time, max_ms, max_growth, size_before, m)
                {
                    fault = Some(FaultCause::Budget(v));
                } else {
                    success = Some(outcome);
                }
            }
        }

        // --- fault handling -------------------------------------------
        if let Some(cause) = fault {
            if !recovering {
                return Err(match cause {
                    FaultCause::Panic(message) => {
                        unreachable!("panics are not caught under Abort: {message}")
                    }
                    FaultCause::PassFailed(message) => RunError::PassFailed {
                        pass: name.to_string(),
                        error: PassError::msg(message),
                    },
                    FaultCause::VerifyFailed(message) => RunError::VerifyFailed {
                        pass: name.to_string(),
                        message,
                    },
                    FaultCause::Budget(violation) => RunError::BudgetExceeded {
                        pass: name.to_string(),
                        violation,
                    },
                });
            }

            // Roll back to the last verified IR; every cached analysis
            // may describe the discarded state, so drop them all.
            self.snapshots
                .as_ref()
                .expect("recovering policies are installed with a snapshot engine")
                .borrow_mut()
                .restore(m);
            am.invalidate_all();

            let action = match self.policy {
                FaultPolicy::SkipPass => RecoveryAction::RolledBack,
                FaultPolicy::StopPipeline => RecoveryAction::Stopped,
                FaultPolicy::Abort => unreachable!("handled above"),
            };
            report.passes.push(PassRun {
                name: name.to_string(),
                time,
                changed: false,
                stats: Vec::new(),
                fixpoint_iteration,
                annotations: vec![("degraded".into(), cause.to_string())],
                snapshot: snapshot_cost,
                profile: None,
            });
            report.degradations.push(Degradation {
                pass: name.to_string(),
                invocation,
                cause,
                fixpoint_iteration,
                func_index: None,
                func: None,
                action,
            });
            return Ok(match action {
                RecoveryAction::RolledBack => StepOutcome::Ran(false),
                RecoveryAction::Stopped => StepOutcome::Stop,
            });
        }

        // --- success ---------------------------------------------------
        let outcome = success.expect("no fault implies a successful outcome");
        if let Some(engine) = &self.snapshots {
            if recovering {
                engine
                    .borrow_mut()
                    .commit(&outcome.mutated, outcome.changed);
            }
        }
        let changed = outcome.changed;
        let mut run = PassRun {
            name: name.to_string(),
            time,
            changed,
            stats: outcome.stats,
            fixpoint_iteration,
            annotations: Vec::new(),
            snapshot: snapshot_cost,
            profile: outcome.profile.clone(),
        };
        if let Some(obs) = &self.observer {
            obs(m, &mut run);
        }
        report.passes.push(run);

        // Faults a sharded pass contained to single functions: the pass
        // as a whole succeeded (and verified) with those functions rolled
        // back to their pre-pass state; record them as function-scoped
        // degradations.
        let contained = outcome
            .profile
            .as_ref()
            .map(|p| p.contained.clone())
            .unwrap_or_default();
        if !contained.is_empty() {
            let action = match self.policy {
                FaultPolicy::SkipPass => RecoveryAction::RolledBack,
                FaultPolicy::StopPipeline => RecoveryAction::Stopped,
                FaultPolicy::Abort => unreachable!("faults are only contained when recovering"),
            };
            for c in contained {
                report.degradations.push(Degradation {
                    pass: name.to_string(),
                    invocation,
                    cause: FaultCause::Panic(c.message),
                    fixpoint_iteration,
                    func_index: Some(c.func_index),
                    func: Some(c.func),
                    action,
                });
            }
            if action == RecoveryAction::Stopped {
                return Ok(StepOutcome::Stop);
            }
        }

        // Pipeline time budget: checked between passes, charged to the
        // pass that crossed the line. The pass itself succeeded and
        // verified, so there is nothing to roll back — the pipeline just
        // ends here (or errors under Abort).
        if let Some(limit_ms) = self.budgets.max_pipeline_millis {
            let elapsed = pipeline_start.elapsed();
            if elapsed > Duration::from_millis(limit_ms) {
                let violation = BudgetViolation::PipelineTime {
                    limit_ms,
                    actual_ms: (elapsed.as_millis() as u64).max(1),
                };
                if !recovering {
                    return Err(RunError::BudgetExceeded {
                        pass: name.to_string(),
                        violation,
                    });
                }
                report.degradations.push(Degradation {
                    pass: name.to_string(),
                    invocation,
                    cause: FaultCause::Budget(violation),
                    fixpoint_iteration,
                    func_index: None,
                    func: None,
                    action: RecoveryAction::Stopped,
                });
                return Ok(StepOutcome::Stop);
            }
        }

        Ok(StepOutcome::Ran(changed))
    }

    /// Checks the per-pass budgets (and the injected blowup) after a
    /// successful pass body.
    fn budget_violation(
        &self,
        injected: Option<InjectKind>,
        time: Duration,
        max_ms: Option<u64>,
        max_growth: Option<f64>,
        size_before: usize,
        m: &M,
    ) -> Option<BudgetViolation> {
        if injected == Some(InjectKind::BudgetBlowup) {
            return Some(BudgetViolation::PassTime {
                limit_ms: 0,
                actual_ms: (time.as_millis() as u64).max(1),
            });
        }
        if let Some(limit_ms) = max_ms {
            if time > Duration::from_millis(limit_ms) {
                return Some(BudgetViolation::PassTime {
                    limit_ms,
                    actual_ms: (time.as_millis() as u64).max(1),
                });
            }
        }
        if let Some(limit) = max_growth {
            if size_before > 0 {
                let after = m.size_hint();
                if after as f64 > size_before as f64 * limit {
                    return Some(BudgetViolation::Growth {
                        limit,
                        before: size_before,
                        after,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{FnPass, PassOutcome};
    use crate::spec::PassOptions;

    /// A toy IR: one "function" per vector slot holding a counter.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    struct Toy {
        vals: Vec<i64>,
    }

    impl IrUnit for Toy {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
        fn size_hint(&self) -> usize {
            self.vals.len()
        }
    }

    struct Sum;
    impl crate::Analysis<Toy> for Sum {
        type Output = i64;
        const NAME: &'static str = "sum";
        fn compute(m: &Toy, f: usize) -> i64 {
            m.vals[f]
        }
    }

    fn registry() -> PassRegistry<Toy> {
        let mut r = PassRegistry::new();
        // Decrements every positive slot by one.
        r.register("dec", || {
            Box::new(FnPass::infallible("dec", |m: &mut Toy, _am| {
                let mut n = 0;
                for v in &mut m.vals {
                    if *v > 0 {
                        *v -= 1;
                        n += 1;
                    }
                }
                PassOutcome::from_stats(vec![("decremented", n)])
            }))
        });
        // Reads the analysis but changes nothing.
        r.register("observe", || {
            Box::new(FnPass::infallible("observe", |m: &mut Toy, am| {
                for f in m.func_keys() {
                    let _ = am.get::<Sum>(m, f);
                }
                PassOutcome::unchanged()
            }))
        });
        // Doubles the slot count (for growth-budget tests).
        r.register("grow", || {
            Box::new(FnPass::infallible("grow", |m: &mut Toy, _am| {
                let extra: Vec<i64> = m.vals.clone();
                m.vals.extend(extra);
                PassOutcome::from_stats(vec![("grown", m.vals.len() as i64 / 2)])
            }))
        });
        // Panics when any slot is negative, after corrupting the state —
        // rollback must discard the corruption.
        r.register("landmine", || {
            Box::new(FnPass::infallible("landmine", |m: &mut Toy, _am| {
                if m.vals.iter().any(|&v| v < 0) {
                    m.vals.push(777); // half-done mutation a panic leaves behind
                    panic!("landmine stepped on");
                }
                PassOutcome::unchanged()
            }))
        });
        // Option-aware pass: `bump<by=N>` adds N to every slot.
        r.register_with("bump", |opts: &PassOptions| {
            if let Some(bad) = opts.unknown_keys(&["by"]).first() {
                return Err(format!("unknown option `{bad}` (expected `by`)"));
            }
            let by = opts.get_parsed::<i64>("by")?.unwrap_or(1);
            Ok(Box::new(FnPass::infallible(
                "bump",
                move |m: &mut Toy, _| {
                    for v in &mut m.vals {
                        *v += by;
                    }
                    PassOutcome::from_stats(vec![("bumped", by)])
                },
            )))
        });
        r
    }

    #[test]
    fn fixpoint_iterates_to_convergence() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![3, 1] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0, 0]);
        // 3 changing iterations + 1 confirming iteration.
        assert_eq!(report.passes.len(), 4);
        assert!(!report.passes.last().unwrap().changed);
        assert_eq!(report.passes[0].fixpoint_iteration, Some(0));
    }

    #[test]
    fn fixpoint_iteration_cap_holds() {
        let pm = PassManager::new(registry()).max_fixpoint_iters(2);
        let mut m = Toy { vals: vec![100] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(report.passes.len(), 2);
        assert_eq!(m.vals, vec![98]);
    }

    #[test]
    fn fixpoint_cap_from_spec_options_wins() {
        let pm = PassManager::new(registry()).max_fixpoint_iters(8);
        let mut m = Toy { vals: vec![100] };
        let spec = PipelineSpec::parse("fixpoint<max=3>(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(report.passes.len(), 3);
        assert_eq!(m.vals, vec![97]);
    }

    #[test]
    fn unknown_pass_is_reported_with_known_names() {
        let pm = PassManager::new(registry());
        let mut m = Toy::default();
        let spec = PipelineSpec::parse("dec,nope").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown pass `nope`"), "{msg}");
        assert!(msg.contains("dec"), "{msg}");
        // Validation fails before anything runs.
        assert_eq!(m.vals, Vec::<i64>::new());
    }

    #[test]
    fn pass_options_reach_the_constructor() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![10] };
        let spec = PipelineSpec::parse("bump<by=5>,bump").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![16], "bump<by=5> then default bump<by=1>");
    }

    #[test]
    fn bad_options_error_names_the_pass() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1] };
        // Unknown key on an option-aware pass.
        let spec = PipelineSpec::parse("bump<wat=3>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(
            matches!(&err, RunError::InvalidOptions { pass, .. } if pass == "bump"),
            "{err}"
        );
        // Any non-budget key on an option-free pass.
        let spec = PipelineSpec::parse("dec<fast>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(err.to_string().contains("takes no options"), "{err}");
        // Budget keys are fine on option-free passes.
        let spec = PipelineSpec::parse("dec<max-ms=10000>").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0]);
    }

    #[test]
    fn analyses_cache_until_mutation() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1, 2] };
        // observe,observe: second is all hits. dec mutates, then observe
        // must recompute.
        let spec = PipelineSpec::parse("observe,observe,dec,observe").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        let c = report.cache_counter("sum");
        assert_eq!(c.misses, 4, "2 funcs × (initial + post-mutation)");
        assert_eq!(c.hits, 2, "second observe is fully cached");
        assert_eq!(c.max_computes_between_invalidations, 1);
    }

    #[test]
    fn verifier_names_offending_pass() {
        let mut r = registry();
        r.register("break", || {
            Box::new(FnPass::infallible("break", |m: &mut Toy, _| {
                m.vals.push(-999);
                PassOutcome::from_stats(vec![("broke", 1)])
            }))
        });
        let pm = PassManager::new(r)
            .verify_between_passes(true)
            .with_verifier(|m: &Toy| {
                if m.vals.contains(&-999) {
                    Err("slot holds sentinel -999".into())
                } else {
                    Ok(())
                }
            });
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("dec,break,dec").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        match err {
            RunError::VerifyFailed { pass, message } => {
                assert_eq!(pass, "break");
                assert!(message.contains("sentinel"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }

    // ---- per-pass symbolic verification ------------------------------

    /// A Toy "equivalence" oracle: a pass is equivalence-preserving iff
    /// it keeps the slot count (dec/bump qualify, grow does not).
    fn slot_count_oracle(before: &Toy, after: &Toy) -> Result<(), String> {
        if before.vals.len() == after.vals.len() {
            Ok(())
        } else {
            Err(format!(
                "slot count {} -> {}",
                before.vals.len(),
                after.vals.len()
            ))
        }
    }

    #[test]
    fn verify_sym_option_checks_pass_equivalence() {
        let seen_budget = Rc::new(Cell::new(None));
        let sb = Rc::clone(&seen_budget);
        let pm = PassManager::new(registry()).with_sym_verifier(
            |m: &Toy| m.clone(),
            move |before, after, budget| {
                sb.set(Some(budget));
                slot_count_oracle(before, after)
            },
        );
        let mut m = Toy { vals: vec![2, 3] };
        let spec = PipelineSpec::parse("dec<verify-sym=128>").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(seen_budget.get(), Some(128), "option value is the budget");
        assert_eq!(m.vals, vec![1, 2]);

        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("grow<verify-sym>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        match err {
            RunError::VerifyFailed { pass, message } => {
                assert_eq!(pass, "grow");
                assert!(message.contains("verify-sym"), "{message}");
                assert!(message.contains("1 -> 2"), "{message}");
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
        assert_eq!(seen_budget.get(), Some(0), "bare flag means default budget");
    }

    #[test]
    fn verify_sym_failure_degrades_and_rolls_back() {
        let pm = PassManager::new(registry())
            .with_sym_verifier(|m: &Toy| m.clone(), |b, a, _| slot_count_oracle(b, a))
            .on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![3, 1] };
        let spec = PipelineSpec::parse("grow<verify-sym>,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![2, 0], "grow rolled back, dec still ran");
        let d = report.degradation_of("grow").unwrap();
        assert!(
            matches!(&d.cause, FaultCause::VerifyFailed(msg) if msg.contains("verify-sym")),
            "{d:?}"
        );
    }

    #[test]
    fn verify_sym_requires_an_installed_verifier() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("dec<verify-sym>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(
            matches!(&err, RunError::InvalidOptions { pass, .. } if pass == "dec"),
            "{err}"
        );
        assert!(err.to_string().contains("with_sym_verifier"), "{err}");
        assert_eq!(m.vals, vec![1], "nothing ran");
    }

    #[test]
    fn sym_verifier_only_runs_when_requested_and_changed() {
        let calls = Rc::new(Cell::new(0usize));
        let c = Rc::clone(&calls);
        let pm = PassManager::new(registry()).with_sym_verifier(
            |m: &Toy| m.clone(),
            move |_, _, _| {
                c.set(c.get() + 1);
                Ok(())
            },
        );
        let mut m = Toy { vals: vec![1] };
        // grow without the option: never checked. observe<verify-sym>
        // reports no change: trivially equivalent, skipped. Only
        // dec<verify-sym> (requested + changed) pays for a proof.
        let spec = PipelineSpec::parse("grow,observe<verify-sym>,dec<verify-sym>").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(calls.get(), 1);
    }

    // ---- fault tolerance ---------------------------------------------

    #[test]
    fn injected_panic_rolls_back_bit_identical_to_skipping_the_pass() {
        let spec = PipelineSpec::parse("dec,grow,dec").unwrap();
        // Inject a panic at each invocation in turn; the result must be
        // bit-identical to the spec with that step removed.
        for n in 0..3usize {
            let pm = PassManager::new(registry())
                .on_fault(FaultPolicy::SkipPass)
                .with_fault_injection(FaultPlan::at_invocation(InjectKind::Panic, n));
            let mut faulted = Toy {
                vals: vec![3, 0, 5],
            };
            let report = pm.run(&mut faulted, &spec).unwrap();

            let mut steps = spec.steps.clone();
            steps.remove(n);
            let skipped_spec = PipelineSpec::new(steps);
            let pm2 = PassManager::new(registry());
            let mut skipped = Toy {
                vals: vec![3, 0, 5],
            };
            pm2.run(&mut skipped, &skipped_spec).unwrap();

            assert_eq!(faulted, skipped, "invocation {n}");
            assert_eq!(report.degradations.len(), 1);
            let d = &report.degradations[0];
            assert!(matches!(d.cause, FaultCause::Panic(_)), "{d:?}");
            assert_eq!(d.action, RecoveryAction::RolledBack);
            assert!(!report.stopped_early);
            // The degraded attempt still appears in the pass list.
            assert_eq!(report.passes.len(), 3);
            assert!(report.passes[n]
                .annotations
                .iter()
                .any(|(k, _)| k == "degraded"));
        }
    }

    #[test]
    fn rollback_discards_half_done_mutations() {
        // `landmine` pushes a bogus slot *before* panicking; the snapshot
        // restore must discard it.
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![-1, 4] };
        let spec = PipelineSpec::parse("landmine,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![-1, 3], "no 777 slot; dec still ran");
        let d = report.degradation_of("landmine").unwrap();
        assert!(matches!(&d.cause, FaultCause::Panic(msg) if msg.contains("landmine")));
    }

    #[test]
    fn stop_pipeline_halts_at_the_fault() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::StopPipeline)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "grow"));
        let mut m = Toy { vals: vec![2, 2] };
        let spec = PipelineSpec::parse("dec,grow,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(
            m.vals,
            vec![1, 1],
            "first dec ran, grow rolled back, second dec never ran"
        );
        assert!(report.stopped_early);
        assert_eq!(report.degradations.len(), 1);
        assert_eq!(report.degradations[0].action, RecoveryAction::Stopped);
        assert_eq!(report.passes.len(), 2, "dec + degraded grow");
    }

    #[test]
    fn abort_policy_still_fails_fast_on_pass_errors() {
        let mut r = registry();
        r.register("fail", || {
            Box::new(FnPass::new("fail", |_: &mut Toy, _| {
                Err(PassError::msg("nope"))
            }))
        });
        let pm = PassManager::new(r);
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("fail").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(matches!(err, RunError::PassFailed { .. }), "{err}");
    }

    #[test]
    fn pass_error_degrades_under_skip() {
        let mut r = registry();
        r.register("fail", || {
            Box::new(FnPass::new("fail", |_: &mut Toy, _| {
                Err(PassError::msg("nope"))
            }))
        });
        let pm = PassManager::new(r).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("fail,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0]);
        let d = report.degradation_of("fail").unwrap();
        assert!(matches!(&d.cause, FaultCause::PassFailed(msg) if msg == "nope"));
    }

    #[test]
    fn verifier_failure_degrades_and_rolls_back() {
        let mut r = registry();
        r.register("break", || {
            Box::new(FnPass::infallible("break", |m: &mut Toy, _| {
                m.vals.push(-999);
                PassOutcome::from_stats(vec![("broke", 1)])
            }))
        });
        let pm = PassManager::new(r)
            .verify_between_passes(true)
            .with_verifier(|m: &Toy| {
                if m.vals.contains(&-999) {
                    Err("slot holds sentinel -999".into())
                } else {
                    Ok(())
                }
            })
            .on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![2] };
        let spec = PipelineSpec::parse("dec,break,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0], "break rolled back, both decs ran");
        let d = report.degradation_of("break").unwrap();
        assert!(matches!(d.cause, FaultCause::VerifyFailed(_)));
    }

    #[test]
    fn injected_verify_failure_fires_even_without_a_verifier() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::VerifyFail, "dec"));
        let mut m = Toy { vals: vec![5] };
        let spec = PipelineSpec::parse("dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![5], "dec rolled back");
        assert!(matches!(
            report.degradation_of("dec").unwrap().cause,
            FaultCause::VerifyFailed(_)
        ));
    }

    #[test]
    fn growth_budget_contains_a_runaway_pass() {
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1, 2] };
        // grow doubles the module; a 1.5× budget forbids that.
        let spec = PipelineSpec::parse("grow<max-growth=1.5>,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0, 1], "grow rolled back, dec ran");
        let d = report.degradation_of("grow").unwrap();
        assert!(
            matches!(
                d.cause,
                FaultCause::Budget(BudgetViolation::Growth {
                    before: 2,
                    after: 4,
                    ..
                })
            ),
            "{d:?}"
        );
        // Within budget, the pass is kept.
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1, 2] };
        let spec = PipelineSpec::parse("grow<max-growth=2.0>").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals.len(), 4);
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn growth_budget_errors_under_abort() {
        let pm = PassManager::new(registry()).with_budgets(Budgets {
            max_growth: Some(1.5),
            ..Budgets::none()
        });
        let mut m = Toy { vals: vec![1, 2] };
        let spec = PipelineSpec::parse("grow").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(matches!(err, RunError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn injected_budget_blowup_degrades() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::BudgetBlowup, "dec"));
        let mut m = Toy { vals: vec![5] };
        let spec = PipelineSpec::parse("dec,observe").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![5], "dec rolled back");
        assert!(matches!(
            report.degradation_of("dec").unwrap().cause,
            FaultCause::Budget(BudgetViolation::PassTime { limit_ms: 0, .. })
        ));
    }

    #[test]
    fn pipeline_time_budget_stops_early() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_budgets(Budgets {
                max_pipeline_millis: Some(0),
                ..Budgets::none()
            });
        let mut m = Toy { vals: vec![9] };
        let spec = PipelineSpec::parse("dec,dec,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        // The first pass completes (and is kept — it verified), then the
        // pipeline stops.
        assert_eq!(m.vals, vec![8]);
        assert!(report.stopped_early);
        assert!(matches!(
            report.degradations[0].cause,
            FaultCause::Budget(BudgetViolation::PipelineTime { .. })
        ));
    }

    // ---- function-sharded execution ----------------------------------

    use crate::parallel::{FuncOutcome, FuncPass, FuncPassAdapter, ShardedIr};

    impl ShardedIr for Toy {
        type Func = i64;
        fn detach_funcs(&mut self) -> Vec<(usize, i64)> {
            std::mem::take(&mut self.vals)
                .into_iter()
                .enumerate()
                .collect()
        }
        fn attach_funcs(&mut self, funcs: Vec<(usize, i64)>) {
            assert!(self.vals.is_empty());
            for (i, (k, v)) in funcs.into_iter().enumerate() {
                assert_eq!(i, k, "functions re-attach in key order");
                self.vals.push(v);
            }
        }
        fn clone_func(&self, key: usize) -> i64 {
            self.vals[key]
        }
        fn restore_func(&mut self, key: usize, func: i64) {
            self.vals[key] = func;
        }
        fn func_size_hint(&self, _key: usize) -> usize {
            1
        }
    }

    /// Function-scoped `dec`: decrements one positive slot.
    struct FDec;
    impl FuncPass<Toy> for FDec {
        fn name(&self) -> &'static str {
            "fdec"
        }
        fn run_on(
            &self,
            _shell: &Toy,
            _key: usize,
            v: &mut i64,
            _ctx: Option<&(dyn std::any::Any + Send + Sync)>,
        ) -> FuncOutcome {
            if *v > 0 {
                *v -= 1;
                FuncOutcome::from_stats(vec![("decremented", 1)])
            } else {
                FuncOutcome::unchanged()
            }
        }
    }

    fn registry_with_fdec() -> PassRegistry<Toy> {
        let mut r = registry();
        r.register("fdec", || Box::new(FuncPassAdapter::new(FDec)));
        r
    }

    type Fingerprint = Vec<(String, bool, Vec<(&'static str, i64)>)>;

    fn report_fingerprint(report: &RunReport) -> Fingerprint {
        report
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.changed, p.stats.clone()))
            .collect()
    }

    #[test]
    fn sharded_pass_is_bit_identical_across_thread_counts() {
        let init = Toy {
            vals: vec![3, 0, 5, 1, 0, 2, 7, 4],
        };
        let spec = PipelineSpec::parse("fixpoint<max=16>(fdec)").unwrap();
        let mut serial = init.clone();
        let serial_report = PassManager::new(registry_with_fdec())
            .run(&mut serial, &spec)
            .unwrap();
        for threads in [2, 4, 8, 64] {
            let mut par = init.clone();
            let report = PassManager::new(registry_with_fdec())
                .with_threads(threads)
                .run(&mut par, &spec)
                .unwrap();
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(
                report_fingerprint(&report),
                report_fingerprint(&serial_report),
                "threads={threads}"
            );
        }
        assert_eq!(serial.vals, vec![0; 8]);
    }

    #[test]
    fn parallel_spec_option_overrides_the_manager() {
        let mut m = Toy {
            vals: vec![1, 2, 3],
        };
        let spec = PipelineSpec::parse("fdec<parallel=2>").unwrap();
        let report = PassManager::new(registry_with_fdec())
            .run(&mut m, &spec)
            .unwrap();
        assert_eq!(m.vals, vec![0, 1, 2]);
        let prof = report.passes[0].profile.as_ref().unwrap();
        assert_eq!(prof.shards.len(), 2);
        assert_eq!(prof.func_times.len(), 3);
    }

    #[test]
    fn sharded_panic_rolls_back_only_the_faulting_function() {
        for threads in [1, 4] {
            let pm = PassManager::new(registry_with_fdec())
                .with_threads(threads)
                .on_fault(FaultPolicy::SkipPass)
                .with_fault_injection("panic@fdec%2".parse().unwrap());
            let mut m = Toy {
                vals: vec![5, 6, 7, 8],
            };
            let spec = PipelineSpec::parse("fdec").unwrap();
            let report = pm.run(&mut m, &spec).unwrap();
            assert_eq!(
                m.vals,
                vec![4, 5, 7, 7],
                "function 2 rolled back, others decremented (threads={threads})"
            );
            assert_eq!(report.degradations.len(), 1);
            let d = &report.degradations[0];
            assert_eq!(d.func_index, Some(2));
            assert_eq!(d.func.as_deref(), Some("2"));
            assert_eq!(d.action, RecoveryAction::RolledBack);
            assert!(matches!(d.cause, FaultCause::Panic(_)));
            // The pass as a whole still counts as run-and-changed.
            assert!(report.passes[0].changed);
        }
    }

    #[test]
    fn uncontained_sharded_panic_propagates_under_abort() {
        let pm = PassManager::new(registry_with_fdec())
            .with_threads(4)
            .with_fault_injection("panic@fdec%1".parse().unwrap());
        let mut m = Toy {
            vals: vec![1, 2, 3],
        };
        let spec = PipelineSpec::parse("fdec").unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = pm.run(&mut m, &spec);
        }));
        assert!(result.is_err(), "Abort lets the shard panic propagate");
        assert_eq!(m.vals.len(), 3, "functions were still re-attached");
    }

    #[test]
    fn cow_snapshots_clone_less_than_full_clones() {
        let init = Toy {
            vals: vec![1, 0, 0, 0],
        };
        let spec = PipelineSpec::parse("fdec,fdec").unwrap();

        let pm = PassManager::new(registry_with_fdec())
            .with_cow_snapshots()
            .on_fault(FaultPolicy::SkipPass);
        let mut m = init.clone();
        let cow = pm.run(&mut m, &spec).unwrap().snapshots;
        // First fdec captures all 4 slots, mutates only slot 0; the
        // second capture reclones slot 0 and reuses the other 3.
        assert_eq!(cow.funcs_cloned, 5);
        assert_eq!(cow.funcs_reused, 3);
        assert_eq!(cow.units_cloned, 5);
        assert_eq!(cow.full_clones, 0);

        let pm = PassManager::new(registry_with_fdec())
            .with_full_clone_snapshots()
            .on_fault(FaultPolicy::SkipPass);
        let mut m = init.clone();
        let full = pm.run(&mut m, &spec).unwrap().snapshots;
        assert_eq!(full.full_clones, 2);
        assert_eq!(full.units_cloned, 8);
        assert!(cow.units_cloned < full.units_cloned);
    }

    #[test]
    fn cow_restore_survives_a_module_level_fault() {
        // A module-level pass (landmine: may_mutate = All) faulting under
        // the CoW engine must still roll back via the full-clone
        // fallback.
        let pm = PassManager::new(registry_with_fdec())
            .with_cow_snapshots()
            .on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![-1, 4] };
        let spec = PipelineSpec::parse("landmine,fdec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![-1, 3], "no 777 slot; fdec still ran");
        assert!(report.degradation_of("landmine").is_some());
        assert_eq!(report.snapshots.full_clones, 1);
    }

    #[test]
    fn degradations_sort_by_invocation_then_function() {
        let pm = PassManager::new(registry_with_fdec())
            .with_threads(3)
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "fdec").on_func(1));
        let mut m = Toy {
            vals: vec![2, 2, 2],
        };
        let spec = PipelineSpec::parse("fdec,fdec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        let order: Vec<(usize, Option<usize>)> = report
            .degradations
            .iter()
            .map(|d| (d.invocation, d.func_index))
            .collect();
        assert_eq!(order, vec![(0, Some(1)), (1, Some(1))]);
        assert_eq!(m.vals, vec![0, 2, 0]);
    }

    #[test]
    fn degraded_pass_in_fixpoint_does_not_spin() {
        // A pass that always panics inside a fixpoint group contributes
        // changed=false after rollback, so the group still converges.
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "grow"));
        let mut m = Toy { vals: vec![2] };
        let spec = PipelineSpec::parse("fixpoint(dec,grow)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0], "dec converged despite grow degrading");
        // grow degraded once per iteration it was attempted.
        assert!(report.degradations.iter().all(|d| d.pass == "grow"));
        assert!(!report.stopped_early);
    }
}
