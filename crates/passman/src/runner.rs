//! The pass-manager runner: executes a [`PipelineSpec`] against a
//! [`PassRegistry`], timing each pass, invalidating cached analyses
//! according to each pass's declaration, optionally verifying the IR
//! between passes, enforcing [`Budgets`], and accumulating a unified
//! [`RunReport`].
//!
//! With a recovering [`FaultPolicy`] installed (see
//! [`PassManager::on_fault`]), every pass runs under `catch_unwind` with
//! the module snapshotted beforehand: a panicking, erroring,
//! verifier-failing, or over-budget pass is rolled back to the last
//! verified IR and recorded as a [`Degradation`], and the pipeline either
//! continues (`SkipPass`) or stops cleanly (`StopPipeline`).

use crate::analysis::{AnalysisManager, CacheCounter};
use crate::budget::{BudgetViolation, Budgets};
use crate::fault::{FaultPlan, InjectKind};
use crate::pass::{Mutation, Pass, PassError, PassRegistry};
use crate::recover::{Degradation, FaultCause, FaultPolicy, RecoveryAction};
use crate::spec::{PassCall, PipelineSpec, SpecStep};
use crate::IrUnit;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One executed pass instance in the report.
#[derive(Clone, Debug)]
pub struct PassRun {
    /// Pass name.
    pub name: String,
    /// Wall time of the pass body (excluding verification).
    pub time: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Flat statistics reported by the pass.
    pub stats: Vec<(&'static str, i64)>,
    /// `Some(i)` if this run happened in iteration `i` (0-based) of a
    /// `fixpoint(...)` group.
    pub fixpoint_iteration: Option<usize>,
    /// Driver-attached annotations (e.g. collection censuses).
    pub annotations: Vec<(String, String)>,
}

impl PassRun {
    /// Looks up a statistic by key.
    pub fn stat(&self, key: &str) -> Option<i64> {
        self.stats.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// The unified report of a pipeline run: per-pass timing and stats plus
/// analysis-cache counters and any contained faults.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Every executed pass, in execution order (fixpoint iterations
    /// appear once per execution). Degraded passes appear with
    /// `changed = false` and a `degraded` annotation.
    pub passes: Vec<PassRun>,
    /// Total wall time, including verification.
    pub total: Duration,
    /// Analysis-cache hit/miss counters by analysis name.
    pub cache: Vec<(String, CacheCounter)>,
    /// Number of analysis-cache invalidation events.
    pub invalidation_events: u64,
    /// Faults contained by the fault policy, in occurrence order.
    pub degradations: Vec<Degradation>,
    /// Whether the pipeline stopped before completing the spec (the
    /// `StopPipeline` policy fired, or the pipeline time budget ran out).
    pub stopped_early: bool,
}

impl RunReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }

    /// `(name, time)` pairs in execution order (the legacy
    /// `PipelineReport::pass_times` shape).
    pub fn pass_times(&self) -> Vec<(String, Duration)> {
        self.passes
            .iter()
            .map(|p| (p.name.clone(), p.time))
            .collect()
    }

    /// The last run of the named pass, if any.
    pub fn last_run(&self, name: &str) -> Option<&PassRun> {
        self.passes.iter().rev().find(|p| p.name == name)
    }

    /// Cache counter for one analysis name (zeroed if never requested).
    pub fn cache_counter(&self, name: &str) -> CacheCounter {
        self.cache
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or_default()
    }

    /// Whether any fault was contained during the run.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The degradation recorded for the named pass, if any.
    pub fn degradation_of(&self, pass: &str) -> Option<&Degradation> {
        self.degradations.iter().find(|d| d.pass == pass)
    }

    /// Renders a plain-text per-pass table (for debugging and bench
    /// binaries).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10}  {:>7}  stats\n",
            "pass", "time", "changed"
        ));
        for p in &self.passes {
            let stats: Vec<String> = p.stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let name = match p.fixpoint_iteration {
                Some(i) => format!("{} [fix #{i}]", p.name),
                None => p.name.clone(),
            };
            out.push_str(&format!(
                "{:<24} {:>8.3}ms  {:>7}  {}\n",
                name,
                p.time.as_secs_f64() * 1e3,
                p.changed,
                stats.join(" ")
            ));
        }
        for (name, c) in &self.cache {
            out.push_str(&format!(
                "analysis {:<15} hits={} misses={}\n",
                name, c.hits, c.misses
            ));
        }
        for d in &self.degradations {
            out.push_str(&format!("degraded {d}\n"));
        }
        if self.stopped_early {
            out.push_str("pipeline stopped early\n");
        }
        out
    }
}

/// A pipeline-run failure (under the [`FaultPolicy::Abort`] policy;
/// recovering policies turn most of these into
/// [`Degradation`]s instead).
#[derive(Debug)]
pub enum RunError {
    /// The spec referenced a pass the registry does not know.
    UnknownPass {
        /// The unknown name.
        name: String,
        /// All registered names, for the error message.
        known: Vec<&'static str>,
    },
    /// A pass constructor rejected its spec options.
    InvalidOptions {
        /// The pass whose options were rejected.
        pass: String,
        /// The constructor's message.
        message: String,
    },
    /// A pass failed (e.g. SSA construction rejected the input).
    PassFailed {
        /// The failing pass.
        pass: String,
        /// The failure.
        error: PassError,
    },
    /// Inter-pass verification failed right after the named pass.
    VerifyFailed {
        /// The pass after which verification failed.
        pass: String,
        /// The verifier's message.
        message: String,
    },
    /// A budget was exceeded by (or right after) the named pass.
    BudgetExceeded {
        /// The pass charged with the violation.
        pass: String,
        /// The violated budget.
        violation: BudgetViolation,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownPass { name, known } => {
                write!(
                    f,
                    "unknown pass `{name}`; known passes: {}",
                    known.join(", ")
                )
            }
            RunError::InvalidOptions { pass, message } => {
                write!(f, "invalid options for pass `{pass}`: {message}")
            }
            RunError::PassFailed { pass, error } => {
                write!(f, "pass `{pass}` failed: {}", error.message)
            }
            RunError::VerifyFailed { pass, message } => {
                write!(f, "IR verification failed after pass `{pass}`: {message}")
            }
            RunError::BudgetExceeded { pass, violation } => {
                write!(f, "budget exceeded at pass `{pass}`: {violation}")
            }
        }
    }
}

impl std::error::Error for RunError {}

type Verifier<M> = Rc<dyn Fn(&M) -> Result<(), String>>;
type Observer<M> = Rc<dyn Fn(&M, &mut PassRun)>;
type Snapshotter<M> = Rc<dyn Fn(&M) -> M>;

/// What [`PassManager::run_one`] tells the step loop.
enum StepOutcome {
    /// The pass ran (or was degraded under `SkipPass`); the flag is its
    /// changed-bit (`false` for a degraded pass).
    Ran(bool),
    /// The pipeline must stop (`StopPipeline` fired).
    Stop,
}

/// Drives pipeline specs over an IR unit.
pub struct PassManager<M: IrUnit> {
    registry: PassRegistry<M>,
    verifier: Option<Verifier<M>>,
    verify_between_passes: bool,
    max_fixpoint_iters: usize,
    observer: Option<Observer<M>>,
    policy: FaultPolicy,
    budgets: Budgets,
    snapshotter: Option<Snapshotter<M>>,
    injection: Option<FaultPlan>,
    /// 0-based index of the next pass invocation (reset per run).
    invocations: Cell<usize>,
}

impl<M: IrUnit> std::fmt::Debug for PassManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("registry", &self.registry)
            .field("verify_between_passes", &self.verify_between_passes)
            .field("max_fixpoint_iters", &self.max_fixpoint_iters)
            .field("policy", &self.policy)
            .field("budgets", &self.budgets)
            .field("injection", &self.injection)
            .finish()
    }
}

impl<M: IrUnit> PassManager<M> {
    /// A manager over the given registry. Inter-pass verification
    /// defaults to on in debug builds and off in release builds; the
    /// fault policy defaults to [`FaultPolicy::Abort`] (fail fast, no
    /// snapshotting cost) and budgets default to unlimited.
    pub fn new(registry: PassRegistry<M>) -> Self {
        PassManager {
            registry,
            verifier: None,
            verify_between_passes: cfg!(debug_assertions),
            max_fixpoint_iters: 8,
            observer: None,
            policy: FaultPolicy::Abort,
            budgets: Budgets::none(),
            snapshotter: None,
            injection: None,
            invocations: Cell::new(0),
        }
    }

    /// Sets the IR verifier run between passes.
    pub fn with_verifier(mut self, v: impl Fn(&M) -> Result<(), String> + 'static) -> Self {
        self.verifier = Some(Rc::new(v));
        self
    }

    /// Forces inter-pass verification on or off (overriding the
    /// debug-build default).
    pub fn verify_between_passes(mut self, on: bool) -> Self {
        self.verify_between_passes = on;
        self
    }

    /// Caps `fixpoint(...)` iteration counts (default 8; overridden per
    /// group by `fixpoint<max=N>(...)` and by
    /// [`Budgets::max_fixpoint_iters`]).
    pub fn max_fixpoint_iters(mut self, n: usize) -> Self {
        self.max_fixpoint_iters = n.max(1);
        self
    }

    /// Installs a post-pass observer, called with the module and the
    /// just-recorded [`PassRun`] (e.g. to attach censuses).
    pub fn with_observer(mut self, obs: impl Fn(&M, &mut PassRun) + 'static) -> Self {
        self.observer = Some(Rc::new(obs));
        self
    }

    /// Sets the fault policy. The recovering policies snapshot the
    /// module before every pass (hence the `Clone` bound) and roll back
    /// on any contained fault; [`FaultPolicy::Abort`] restores the
    /// legacy fail-fast behaviour and costs nothing.
    pub fn on_fault(mut self, policy: FaultPolicy) -> Self
    where
        M: Clone,
    {
        self.policy = policy;
        if self.snapshotter.is_none() {
            self.snapshotter = Some(Rc::new(|m: &M| m.clone()));
        }
        self
    }

    /// Sets pipeline-wide default budgets (per-pass spec options like
    /// `dce<max-ms=50>` override the per-pass axes).
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Installs a deterministic fault-injection plan (tests and fuzz
    /// harnesses only — see [`crate::fault`]).
    pub fn with_fault_injection(mut self, plan: FaultPlan) -> Self {
        self.injection = Some(plan);
        self
    }

    /// The underlying registry.
    pub fn registry(&self) -> &PassRegistry<M> {
        &self.registry
    }

    /// The active fault policy.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Validates that every pass named in `spec` is registered.
    pub fn validate(&self, spec: &PipelineSpec) -> Result<(), RunError> {
        for name in spec.pass_names() {
            if !self.registry.contains(name) {
                return Err(RunError::UnknownPass {
                    name: name.to_string(),
                    known: self.registry.names(),
                });
            }
        }
        Ok(())
    }

    /// Runs a spec with a fresh analysis manager.
    pub fn run(&self, m: &mut M, spec: &PipelineSpec) -> Result<RunReport, RunError> {
        let mut am = AnalysisManager::new();
        self.run_with(m, spec, &mut am)
    }

    /// Runs a spec against an existing analysis manager (so cached
    /// analyses survive across multiple `run_with` calls).
    pub fn run_with(
        &self,
        m: &mut M,
        spec: &PipelineSpec,
        am: &mut AnalysisManager<M>,
    ) -> Result<RunReport, RunError> {
        self.validate(spec)?;
        let start = Instant::now();
        self.invocations.set(0);
        let mut report = RunReport::default();
        // Pass instances are created once per distinct spec call (name +
        // options) and reused across fixpoint iterations, so stateful
        // passes can accumulate.
        let mut instances: HashMap<String, Box<dyn Pass<M>>> = HashMap::new();

        'steps: for step in &spec.steps {
            match step {
                SpecStep::Pass(call) => {
                    match self.run_one(m, am, &mut instances, call, None, &mut report, start)? {
                        StepOutcome::Ran(_) => {}
                        StepOutcome::Stop => {
                            report.stopped_early = true;
                            break 'steps;
                        }
                    }
                }
                SpecStep::Fixpoint { opts, body } => {
                    let cap = match opts.get_parsed::<usize>("max") {
                        Ok(Some(n)) => n.max(1),
                        Ok(None) => self
                            .budgets
                            .max_fixpoint_iters
                            .unwrap_or(self.max_fixpoint_iters),
                        Err(message) => {
                            return Err(RunError::InvalidOptions {
                                pass: "fixpoint".into(),
                                message,
                            })
                        }
                    };
                    for iter in 0..cap {
                        let mut any_changed = false;
                        for call in body {
                            match self.run_one(
                                m,
                                am,
                                &mut instances,
                                call,
                                Some(iter),
                                &mut report,
                                start,
                            )? {
                                StepOutcome::Ran(changed) => any_changed |= changed,
                                StepOutcome::Stop => {
                                    report.stopped_early = true;
                                    break 'steps;
                                }
                            }
                        }
                        if !any_changed {
                            break;
                        }
                    }
                }
            }
        }

        report.total = start.elapsed();
        report.cache = am
            .counters()
            .iter()
            .map(|(&n, &c)| (n.to_string(), c))
            .collect();
        report.invalidation_events = am.invalidation_events();
        Ok(report)
    }

    /// Instantiates (or reuses) the pass for `call`.
    fn instance<'i>(
        &self,
        instances: &'i mut HashMap<String, Box<dyn Pass<M>>>,
        call: &PassCall,
    ) -> Result<&'i mut Box<dyn Pass<M>>, RunError> {
        let key = call.to_string();
        if !instances.contains_key(&key) {
            let created = self
                .registry
                .create_with(&call.name, &call.opts.without_reserved())
                .ok_or_else(|| RunError::UnknownPass {
                    name: call.name.clone(),
                    known: self.registry.names(),
                })?;
            let pass = created.map_err(|message| RunError::InvalidOptions {
                pass: call.name.clone(),
                message,
            })?;
            instances.insert(key.clone(), pass);
        }
        Ok(instances.get_mut(&key).expect("just inserted"))
    }

    /// The effective per-pass budgets for `call` (spec options override
    /// the pipeline-wide defaults).
    fn pass_budgets(&self, call: &PassCall) -> Result<(Option<u64>, Option<f64>), RunError> {
        let bad = |message| RunError::InvalidOptions {
            pass: call.name.clone(),
            message,
        };
        let ms = call
            .opts
            .get_parsed::<u64>("max-ms")
            .map_err(bad)?
            .or(self.budgets.max_pass_millis);
        let growth = call
            .opts
            .get_parsed::<f64>("max-growth")
            .map_err(bad)?
            .or(self.budgets.max_growth);
        Ok((ms, growth))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        m: &mut M,
        am: &mut AnalysisManager<M>,
        instances: &mut HashMap<String, Box<dyn Pass<M>>>,
        call: &PassCall,
        fixpoint_iteration: Option<usize>,
        report: &mut RunReport,
        pipeline_start: Instant,
    ) -> Result<StepOutcome, RunError> {
        let name = call.name.as_str();
        let (max_ms, max_growth) = self.pass_budgets(call)?;
        let pass = self.instance(instances, call)?;

        let invocation = self.invocations.get();
        self.invocations.set(invocation + 1);
        let injected = self
            .injection
            .as_ref()
            .filter(|plan| plan.fires(invocation, name))
            .map(|plan| plan.kind);

        let recovering = self.policy != FaultPolicy::Abort;
        let size_before = if max_growth.is_some() {
            m.size_hint()
        } else {
            0
        };
        let snapshot = if recovering {
            let snap = self
                .snapshotter
                .as_ref()
                .expect("recovering policies are installed with a snapshotter");
            Some(snap(m))
        } else {
            None
        };

        // --- run the pass body ---------------------------------------
        let t0 = Instant::now();
        let body = |m: &mut M, am: &mut AnalysisManager<M>, pass: &mut Box<dyn Pass<M>>| {
            if injected == Some(InjectKind::Panic) {
                panic!("fault injection: panic in `{name}` at invocation {invocation}");
            }
            pass.run(m, am)
        };
        let result: Result<Result<_, PassError>, String> = if recovering {
            catch_unwind(AssertUnwindSafe(|| body(m, am, pass))).map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string())
            })
        } else {
            // Abort: let panics propagate with their original backtrace.
            Ok(body(m, am, pass))
        };
        let time = t0.elapsed();

        // --- classify the outcome into (success, fault) ---------------
        let mut fault: Option<FaultCause> = None;
        let mut success: Option<(bool, Vec<(&'static str, i64)>)> = None;
        match result {
            Err(panic_msg) => fault = Some(FaultCause::Panic(panic_msg)),
            Ok(Err(error)) => {
                if recovering {
                    fault = Some(FaultCause::PassFailed(error.message.clone()));
                } else {
                    return Err(RunError::PassFailed {
                        pass: name.to_string(),
                        error,
                    });
                }
            }
            Ok(Ok(outcome)) => {
                if outcome.changed {
                    match &outcome.mutated {
                        Mutation::None => am.invalidate_all(), // changed but undeclared: be safe
                        Mutation::Funcs(fs) => {
                            for &f in fs {
                                am.invalidate(f);
                            }
                        }
                        Mutation::All => am.invalidate_all(),
                        Mutation::Handled => {} // pass invalidated through `am` itself
                    }
                }

                // Verification (a forced injection counts as a failure).
                let verify_msg = if injected == Some(InjectKind::VerifyFail) {
                    Some(format!(
                        "fault injection: forced verifier failure after `{name}`"
                    ))
                } else if self.verify_between_passes {
                    match &self.verifier {
                        Some(v) => v(m).err(),
                        None => None,
                    }
                } else {
                    None
                };

                if let Some(message) = verify_msg {
                    fault = Some(FaultCause::VerifyFailed(message));
                } else if let Some(v) =
                    self.budget_violation(injected, time, max_ms, max_growth, size_before, m)
                {
                    fault = Some(FaultCause::Budget(v));
                } else {
                    success = Some((outcome.changed, outcome.stats));
                }
            }
        }

        // --- fault handling -------------------------------------------
        if let Some(cause) = fault {
            if !recovering {
                return Err(match cause {
                    FaultCause::Panic(message) => {
                        unreachable!("panics are not caught under Abort: {message}")
                    }
                    FaultCause::PassFailed(message) => RunError::PassFailed {
                        pass: name.to_string(),
                        error: PassError::msg(message),
                    },
                    FaultCause::VerifyFailed(message) => RunError::VerifyFailed {
                        pass: name.to_string(),
                        message,
                    },
                    FaultCause::Budget(violation) => RunError::BudgetExceeded {
                        pass: name.to_string(),
                        violation,
                    },
                });
            }

            // Roll back to the last verified IR; every cached analysis
            // may describe the discarded state, so drop them all.
            *m = snapshot.expect("recovering policies snapshot before every pass");
            am.invalidate_all();

            let action = match self.policy {
                FaultPolicy::SkipPass => RecoveryAction::RolledBack,
                FaultPolicy::StopPipeline => RecoveryAction::Stopped,
                FaultPolicy::Abort => unreachable!("handled above"),
            };
            report.passes.push(PassRun {
                name: name.to_string(),
                time,
                changed: false,
                stats: Vec::new(),
                fixpoint_iteration,
                annotations: vec![("degraded".into(), cause.to_string())],
            });
            report.degradations.push(Degradation {
                pass: name.to_string(),
                cause,
                fixpoint_iteration,
                action,
            });
            return Ok(match action {
                RecoveryAction::RolledBack => StepOutcome::Ran(false),
                RecoveryAction::Stopped => StepOutcome::Stop,
            });
        }

        // --- success ---------------------------------------------------
        let (changed, stats) = success.expect("no fault implies a successful outcome");
        let mut run = PassRun {
            name: name.to_string(),
            time,
            changed,
            stats,
            fixpoint_iteration,
            annotations: Vec::new(),
        };
        if let Some(obs) = &self.observer {
            obs(m, &mut run);
        }
        report.passes.push(run);

        // Pipeline time budget: checked between passes, charged to the
        // pass that crossed the line. The pass itself succeeded and
        // verified, so there is nothing to roll back — the pipeline just
        // ends here (or errors under Abort).
        if let Some(limit_ms) = self.budgets.max_pipeline_millis {
            let elapsed = pipeline_start.elapsed();
            if elapsed > Duration::from_millis(limit_ms) {
                let violation = BudgetViolation::PipelineTime {
                    limit_ms,
                    actual_ms: (elapsed.as_millis() as u64).max(1),
                };
                if !recovering {
                    return Err(RunError::BudgetExceeded {
                        pass: name.to_string(),
                        violation,
                    });
                }
                report.degradations.push(Degradation {
                    pass: name.to_string(),
                    cause: FaultCause::Budget(violation),
                    fixpoint_iteration,
                    action: RecoveryAction::Stopped,
                });
                return Ok(StepOutcome::Stop);
            }
        }

        Ok(StepOutcome::Ran(changed))
    }

    /// Checks the per-pass budgets (and the injected blowup) after a
    /// successful pass body.
    fn budget_violation(
        &self,
        injected: Option<InjectKind>,
        time: Duration,
        max_ms: Option<u64>,
        max_growth: Option<f64>,
        size_before: usize,
        m: &M,
    ) -> Option<BudgetViolation> {
        if injected == Some(InjectKind::BudgetBlowup) {
            return Some(BudgetViolation::PassTime {
                limit_ms: 0,
                actual_ms: (time.as_millis() as u64).max(1),
            });
        }
        if let Some(limit_ms) = max_ms {
            if time > Duration::from_millis(limit_ms) {
                return Some(BudgetViolation::PassTime {
                    limit_ms,
                    actual_ms: (time.as_millis() as u64).max(1),
                });
            }
        }
        if let Some(limit) = max_growth {
            if size_before > 0 {
                let after = m.size_hint();
                if after as f64 > size_before as f64 * limit {
                    return Some(BudgetViolation::Growth {
                        limit,
                        before: size_before,
                        after,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{FnPass, PassOutcome};
    use crate::spec::PassOptions;

    /// A toy IR: one "function" per vector slot holding a counter.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    struct Toy {
        vals: Vec<i64>,
    }

    impl IrUnit for Toy {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
        fn size_hint(&self) -> usize {
            self.vals.len()
        }
    }

    struct Sum;
    impl crate::Analysis<Toy> for Sum {
        type Output = i64;
        const NAME: &'static str = "sum";
        fn compute(m: &Toy, f: usize) -> i64 {
            m.vals[f]
        }
    }

    fn registry() -> PassRegistry<Toy> {
        let mut r = PassRegistry::new();
        // Decrements every positive slot by one.
        r.register("dec", || {
            Box::new(FnPass::infallible("dec", |m: &mut Toy, _am| {
                let mut n = 0;
                for v in &mut m.vals {
                    if *v > 0 {
                        *v -= 1;
                        n += 1;
                    }
                }
                PassOutcome::from_stats(vec![("decremented", n)])
            }))
        });
        // Reads the analysis but changes nothing.
        r.register("observe", || {
            Box::new(FnPass::infallible("observe", |m: &mut Toy, am| {
                for f in m.func_keys() {
                    let _ = am.get::<Sum>(m, f);
                }
                PassOutcome::unchanged()
            }))
        });
        // Doubles the slot count (for growth-budget tests).
        r.register("grow", || {
            Box::new(FnPass::infallible("grow", |m: &mut Toy, _am| {
                let extra: Vec<i64> = m.vals.clone();
                m.vals.extend(extra);
                PassOutcome::from_stats(vec![("grown", m.vals.len() as i64 / 2)])
            }))
        });
        // Panics when any slot is negative, after corrupting the state —
        // rollback must discard the corruption.
        r.register("landmine", || {
            Box::new(FnPass::infallible("landmine", |m: &mut Toy, _am| {
                if m.vals.iter().any(|&v| v < 0) {
                    m.vals.push(777); // half-done mutation a panic leaves behind
                    panic!("landmine stepped on");
                }
                PassOutcome::unchanged()
            }))
        });
        // Option-aware pass: `bump<by=N>` adds N to every slot.
        r.register_with("bump", |opts: &PassOptions| {
            if let Some(bad) = opts.unknown_keys(&["by"]).first() {
                return Err(format!("unknown option `{bad}` (expected `by`)"));
            }
            let by = opts.get_parsed::<i64>("by")?.unwrap_or(1);
            Ok(Box::new(FnPass::infallible(
                "bump",
                move |m: &mut Toy, _| {
                    for v in &mut m.vals {
                        *v += by;
                    }
                    PassOutcome::from_stats(vec![("bumped", by)])
                },
            )))
        });
        r
    }

    #[test]
    fn fixpoint_iterates_to_convergence() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![3, 1] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0, 0]);
        // 3 changing iterations + 1 confirming iteration.
        assert_eq!(report.passes.len(), 4);
        assert!(!report.passes.last().unwrap().changed);
        assert_eq!(report.passes[0].fixpoint_iteration, Some(0));
    }

    #[test]
    fn fixpoint_iteration_cap_holds() {
        let pm = PassManager::new(registry()).max_fixpoint_iters(2);
        let mut m = Toy { vals: vec![100] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(report.passes.len(), 2);
        assert_eq!(m.vals, vec![98]);
    }

    #[test]
    fn fixpoint_cap_from_spec_options_wins() {
        let pm = PassManager::new(registry()).max_fixpoint_iters(8);
        let mut m = Toy { vals: vec![100] };
        let spec = PipelineSpec::parse("fixpoint<max=3>(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(report.passes.len(), 3);
        assert_eq!(m.vals, vec![97]);
    }

    #[test]
    fn unknown_pass_is_reported_with_known_names() {
        let pm = PassManager::new(registry());
        let mut m = Toy::default();
        let spec = PipelineSpec::parse("dec,nope").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown pass `nope`"), "{msg}");
        assert!(msg.contains("dec"), "{msg}");
        // Validation fails before anything runs.
        assert_eq!(m.vals, Vec::<i64>::new());
    }

    #[test]
    fn pass_options_reach_the_constructor() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![10] };
        let spec = PipelineSpec::parse("bump<by=5>,bump").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![16], "bump<by=5> then default bump<by=1>");
    }

    #[test]
    fn bad_options_error_names_the_pass() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1] };
        // Unknown key on an option-aware pass.
        let spec = PipelineSpec::parse("bump<wat=3>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(
            matches!(&err, RunError::InvalidOptions { pass, .. } if pass == "bump"),
            "{err}"
        );
        // Any non-budget key on an option-free pass.
        let spec = PipelineSpec::parse("dec<fast>").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(err.to_string().contains("takes no options"), "{err}");
        // Budget keys are fine on option-free passes.
        let spec = PipelineSpec::parse("dec<max-ms=10000>").unwrap();
        pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0]);
    }

    #[test]
    fn analyses_cache_until_mutation() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1, 2] };
        // observe,observe: second is all hits. dec mutates, then observe
        // must recompute.
        let spec = PipelineSpec::parse("observe,observe,dec,observe").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        let c = report.cache_counter("sum");
        assert_eq!(c.misses, 4, "2 funcs × (initial + post-mutation)");
        assert_eq!(c.hits, 2, "second observe is fully cached");
        assert_eq!(c.max_computes_between_invalidations, 1);
    }

    #[test]
    fn verifier_names_offending_pass() {
        let mut r = registry();
        r.register("break", || {
            Box::new(FnPass::infallible("break", |m: &mut Toy, _| {
                m.vals.push(-999);
                PassOutcome::from_stats(vec![("broke", 1)])
            }))
        });
        let pm = PassManager::new(r)
            .verify_between_passes(true)
            .with_verifier(|m: &Toy| {
                if m.vals.contains(&-999) {
                    Err("slot holds sentinel -999".into())
                } else {
                    Ok(())
                }
            });
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("dec,break,dec").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        match err {
            RunError::VerifyFailed { pass, message } => {
                assert_eq!(pass, "break");
                assert!(message.contains("sentinel"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }

    // ---- fault tolerance ---------------------------------------------

    #[test]
    fn injected_panic_rolls_back_bit_identical_to_skipping_the_pass() {
        let spec = PipelineSpec::parse("dec,grow,dec").unwrap();
        // Inject a panic at each invocation in turn; the result must be
        // bit-identical to the spec with that step removed.
        for n in 0..3usize {
            let pm = PassManager::new(registry())
                .on_fault(FaultPolicy::SkipPass)
                .with_fault_injection(FaultPlan::at_invocation(InjectKind::Panic, n));
            let mut faulted = Toy {
                vals: vec![3, 0, 5],
            };
            let report = pm.run(&mut faulted, &spec).unwrap();

            let mut steps = spec.steps.clone();
            steps.remove(n);
            let skipped_spec = PipelineSpec::new(steps);
            let pm2 = PassManager::new(registry());
            let mut skipped = Toy {
                vals: vec![3, 0, 5],
            };
            pm2.run(&mut skipped, &skipped_spec).unwrap();

            assert_eq!(faulted, skipped, "invocation {n}");
            assert_eq!(report.degradations.len(), 1);
            let d = &report.degradations[0];
            assert!(matches!(d.cause, FaultCause::Panic(_)), "{d:?}");
            assert_eq!(d.action, RecoveryAction::RolledBack);
            assert!(!report.stopped_early);
            // The degraded attempt still appears in the pass list.
            assert_eq!(report.passes.len(), 3);
            assert!(report.passes[n]
                .annotations
                .iter()
                .any(|(k, _)| k == "degraded"));
        }
    }

    #[test]
    fn rollback_discards_half_done_mutations() {
        // `landmine` pushes a bogus slot *before* panicking; the snapshot
        // restore must discard it.
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![-1, 4] };
        let spec = PipelineSpec::parse("landmine,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![-1, 3], "no 777 slot; dec still ran");
        let d = report.degradation_of("landmine").unwrap();
        assert!(matches!(&d.cause, FaultCause::Panic(msg) if msg.contains("landmine")));
    }

    #[test]
    fn stop_pipeline_halts_at_the_fault() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::StopPipeline)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "grow"));
        let mut m = Toy { vals: vec![2, 2] };
        let spec = PipelineSpec::parse("dec,grow,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(
            m.vals,
            vec![1, 1],
            "first dec ran, grow rolled back, second dec never ran"
        );
        assert!(report.stopped_early);
        assert_eq!(report.degradations.len(), 1);
        assert_eq!(report.degradations[0].action, RecoveryAction::Stopped);
        assert_eq!(report.passes.len(), 2, "dec + degraded grow");
    }

    #[test]
    fn abort_policy_still_fails_fast_on_pass_errors() {
        let mut r = registry();
        r.register("fail", || {
            Box::new(FnPass::new("fail", |_: &mut Toy, _| {
                Err(PassError::msg("nope"))
            }))
        });
        let pm = PassManager::new(r);
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("fail").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(matches!(err, RunError::PassFailed { .. }), "{err}");
    }

    #[test]
    fn pass_error_degrades_under_skip() {
        let mut r = registry();
        r.register("fail", || {
            Box::new(FnPass::new("fail", |_: &mut Toy, _| {
                Err(PassError::msg("nope"))
            }))
        });
        let pm = PassManager::new(r).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("fail,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0]);
        let d = report.degradation_of("fail").unwrap();
        assert!(matches!(&d.cause, FaultCause::PassFailed(msg) if msg == "nope"));
    }

    #[test]
    fn verifier_failure_degrades_and_rolls_back() {
        let mut r = registry();
        r.register("break", || {
            Box::new(FnPass::infallible("break", |m: &mut Toy, _| {
                m.vals.push(-999);
                PassOutcome::from_stats(vec![("broke", 1)])
            }))
        });
        let pm = PassManager::new(r)
            .verify_between_passes(true)
            .with_verifier(|m: &Toy| {
                if m.vals.contains(&-999) {
                    Err("slot holds sentinel -999".into())
                } else {
                    Ok(())
                }
            })
            .on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![2] };
        let spec = PipelineSpec::parse("dec,break,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0], "break rolled back, both decs ran");
        let d = report.degradation_of("break").unwrap();
        assert!(matches!(d.cause, FaultCause::VerifyFailed(_)));
    }

    #[test]
    fn injected_verify_failure_fires_even_without_a_verifier() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::VerifyFail, "dec"));
        let mut m = Toy { vals: vec![5] };
        let spec = PipelineSpec::parse("dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![5], "dec rolled back");
        assert!(matches!(
            report.degradation_of("dec").unwrap().cause,
            FaultCause::VerifyFailed(_)
        ));
    }

    #[test]
    fn growth_budget_contains_a_runaway_pass() {
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1, 2] };
        // grow doubles the module; a 1.5× budget forbids that.
        let spec = PipelineSpec::parse("grow<max-growth=1.5>,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0, 1], "grow rolled back, dec ran");
        let d = report.degradation_of("grow").unwrap();
        assert!(
            matches!(
                d.cause,
                FaultCause::Budget(BudgetViolation::Growth {
                    before: 2,
                    after: 4,
                    ..
                })
            ),
            "{d:?}"
        );
        // Within budget, the pass is kept.
        let pm = PassManager::new(registry()).on_fault(FaultPolicy::SkipPass);
        let mut m = Toy { vals: vec![1, 2] };
        let spec = PipelineSpec::parse("grow<max-growth=2.0>").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals.len(), 4);
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn growth_budget_errors_under_abort() {
        let pm = PassManager::new(registry()).with_budgets(Budgets {
            max_growth: Some(1.5),
            ..Budgets::none()
        });
        let mut m = Toy { vals: vec![1, 2] };
        let spec = PipelineSpec::parse("grow").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        assert!(matches!(err, RunError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn injected_budget_blowup_degrades() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::BudgetBlowup, "dec"));
        let mut m = Toy { vals: vec![5] };
        let spec = PipelineSpec::parse("dec,observe").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![5], "dec rolled back");
        assert!(matches!(
            report.degradation_of("dec").unwrap().cause,
            FaultCause::Budget(BudgetViolation::PassTime { limit_ms: 0, .. })
        ));
    }

    #[test]
    fn pipeline_time_budget_stops_early() {
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_budgets(Budgets {
                max_pipeline_millis: Some(0),
                ..Budgets::none()
            });
        let mut m = Toy { vals: vec![9] };
        let spec = PipelineSpec::parse("dec,dec,dec").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        // The first pass completes (and is kept — it verified), then the
        // pipeline stops.
        assert_eq!(m.vals, vec![8]);
        assert!(report.stopped_early);
        assert!(matches!(
            report.degradations[0].cause,
            FaultCause::Budget(BudgetViolation::PipelineTime { .. })
        ));
    }

    #[test]
    fn degraded_pass_in_fixpoint_does_not_spin() {
        // A pass that always panics inside a fixpoint group contributes
        // changed=false after rollback, so the group still converges.
        let pm = PassManager::new(registry())
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection(FaultPlan::at_pass(InjectKind::Panic, "grow"));
        let mut m = Toy { vals: vec![2] };
        let spec = PipelineSpec::parse("fixpoint(dec,grow)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0], "dec converged despite grow degrading");
        // grow degraded once per iteration it was attempted.
        assert!(report.degradations.iter().all(|d| d.pass == "grow"));
        assert!(!report.stopped_early);
    }
}
