//! The pass-manager runner: executes a [`PipelineSpec`] against a
//! [`PassRegistry`], timing each pass, invalidating cached analyses
//! according to each pass's declaration, optionally verifying the IR
//! between passes, and accumulating a unified [`RunReport`].

use crate::analysis::{AnalysisManager, CacheCounter};
use crate::pass::{Mutation, Pass, PassError, PassRegistry};
use crate::spec::{PipelineSpec, SpecStep};
use crate::IrUnit;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One executed pass instance in the report.
#[derive(Clone, Debug)]
pub struct PassRun {
    /// Pass name.
    pub name: String,
    /// Wall time of the pass body (excluding verification).
    pub time: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Flat statistics reported by the pass.
    pub stats: Vec<(&'static str, i64)>,
    /// `Some(i)` if this run happened in iteration `i` (0-based) of a
    /// `fixpoint(...)` group.
    pub fixpoint_iteration: Option<usize>,
    /// Driver-attached annotations (e.g. collection censuses).
    pub annotations: Vec<(String, String)>,
}

impl PassRun {
    /// Looks up a statistic by key.
    pub fn stat(&self, key: &str) -> Option<i64> {
        self.stats.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// The unified report of a pipeline run: per-pass timing and stats plus
/// analysis-cache counters.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Every executed pass, in execution order (fixpoint iterations
    /// appear once per execution).
    pub passes: Vec<PassRun>,
    /// Total wall time, including verification.
    pub total: Duration,
    /// Analysis-cache hit/miss counters by analysis name.
    pub cache: Vec<(String, CacheCounter)>,
    /// Number of analysis-cache invalidation events.
    pub invalidation_events: u64,
}

impl RunReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }

    /// `(name, time)` pairs in execution order (the legacy
    /// `PipelineReport::pass_times` shape).
    pub fn pass_times(&self) -> Vec<(String, Duration)> {
        self.passes
            .iter()
            .map(|p| (p.name.clone(), p.time))
            .collect()
    }

    /// The last run of the named pass, if any.
    pub fn last_run(&self, name: &str) -> Option<&PassRun> {
        self.passes.iter().rev().find(|p| p.name == name)
    }

    /// Cache counter for one analysis name (zeroed if never requested).
    pub fn cache_counter(&self, name: &str) -> CacheCounter {
        self.cache
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or_default()
    }

    /// Renders a plain-text per-pass table (for debugging and bench
    /// binaries).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10}  {:>7}  stats\n",
            "pass", "time", "changed"
        ));
        for p in &self.passes {
            let stats: Vec<String> = p.stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let name = match p.fixpoint_iteration {
                Some(i) => format!("{} [fix #{i}]", p.name),
                None => p.name.clone(),
            };
            out.push_str(&format!(
                "{:<24} {:>8.3}ms  {:>7}  {}\n",
                name,
                p.time.as_secs_f64() * 1e3,
                p.changed,
                stats.join(" ")
            ));
        }
        for (name, c) in &self.cache {
            out.push_str(&format!(
                "analysis {:<15} hits={} misses={}\n",
                name, c.hits, c.misses
            ));
        }
        out
    }
}

/// A pipeline-run failure.
#[derive(Debug)]
pub enum RunError {
    /// The spec referenced a pass the registry does not know.
    UnknownPass {
        /// The unknown name.
        name: String,
        /// All registered names, for the error message.
        known: Vec<&'static str>,
    },
    /// A pass failed (e.g. SSA construction rejected the input).
    PassFailed {
        /// The failing pass.
        pass: String,
        /// The failure.
        error: PassError,
    },
    /// Inter-pass verification failed right after the named pass.
    VerifyFailed {
        /// The pass after which verification failed.
        pass: String,
        /// The verifier's message.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownPass { name, known } => {
                write!(
                    f,
                    "unknown pass `{name}`; known passes: {}",
                    known.join(", ")
                )
            }
            RunError::PassFailed { pass, error } => {
                write!(f, "pass `{pass}` failed: {}", error.message)
            }
            RunError::VerifyFailed { pass, message } => {
                write!(f, "IR verification failed after pass `{pass}`: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {}

type Verifier<M> = Rc<dyn Fn(&M) -> Result<(), String>>;
type Observer<M> = Rc<dyn Fn(&M, &mut PassRun)>;

/// Drives pipeline specs over an IR unit.
pub struct PassManager<M: IrUnit> {
    registry: PassRegistry<M>,
    verifier: Option<Verifier<M>>,
    verify_between_passes: bool,
    max_fixpoint_iters: usize,
    observer: Option<Observer<M>>,
}

impl<M: IrUnit> std::fmt::Debug for PassManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("registry", &self.registry)
            .field("verify_between_passes", &self.verify_between_passes)
            .field("max_fixpoint_iters", &self.max_fixpoint_iters)
            .finish()
    }
}

impl<M: IrUnit> PassManager<M> {
    /// A manager over the given registry. Inter-pass verification
    /// defaults to on in debug builds and off in release builds.
    pub fn new(registry: PassRegistry<M>) -> Self {
        PassManager {
            registry,
            verifier: None,
            verify_between_passes: cfg!(debug_assertions),
            max_fixpoint_iters: 8,
            observer: None,
        }
    }

    /// Sets the IR verifier run between passes.
    pub fn with_verifier(mut self, v: impl Fn(&M) -> Result<(), String> + 'static) -> Self {
        self.verifier = Some(Rc::new(v));
        self
    }

    /// Forces inter-pass verification on or off (overriding the
    /// debug-build default).
    pub fn verify_between_passes(mut self, on: bool) -> Self {
        self.verify_between_passes = on;
        self
    }

    /// Caps `fixpoint(...)` iteration counts (default 8).
    pub fn max_fixpoint_iters(mut self, n: usize) -> Self {
        self.max_fixpoint_iters = n.max(1);
        self
    }

    /// Installs a post-pass observer, called with the module and the
    /// just-recorded [`PassRun`] (e.g. to attach censuses).
    pub fn with_observer(mut self, obs: impl Fn(&M, &mut PassRun) + 'static) -> Self {
        self.observer = Some(Rc::new(obs));
        self
    }

    /// The underlying registry.
    pub fn registry(&self) -> &PassRegistry<M> {
        &self.registry
    }

    /// Validates that every pass named in `spec` is registered.
    pub fn validate(&self, spec: &PipelineSpec) -> Result<(), RunError> {
        for name in spec.pass_names() {
            if !self.registry.contains(name) {
                return Err(RunError::UnknownPass {
                    name: name.to_string(),
                    known: self.registry.names(),
                });
            }
        }
        Ok(())
    }

    /// Runs a spec with a fresh analysis manager.
    pub fn run(&self, m: &mut M, spec: &PipelineSpec) -> Result<RunReport, RunError> {
        let mut am = AnalysisManager::new();
        self.run_with(m, spec, &mut am)
    }

    /// Runs a spec against an existing analysis manager (so cached
    /// analyses survive across multiple `run_with` calls).
    pub fn run_with(
        &self,
        m: &mut M,
        spec: &PipelineSpec,
        am: &mut AnalysisManager<M>,
    ) -> Result<RunReport, RunError> {
        self.validate(spec)?;
        let start = Instant::now();
        let mut report = RunReport::default();
        // Pass instances are created once per spec step and reused across
        // fixpoint iterations, so stateful passes can accumulate.
        let mut instances: HashMap<String, Box<dyn Pass<M>>> = HashMap::new();

        for step in &spec.steps {
            match step {
                SpecStep::Pass(name) => {
                    self.run_one(m, am, &mut instances, name, None, &mut report)?;
                }
                SpecStep::Fixpoint(names) => {
                    for iter in 0..self.max_fixpoint_iters {
                        let mut any_changed = false;
                        for name in names {
                            let changed =
                                self.run_one(m, am, &mut instances, name, Some(iter), &mut report)?;
                            any_changed |= changed;
                        }
                        if !any_changed {
                            break;
                        }
                    }
                }
            }
        }

        report.total = start.elapsed();
        report.cache = am
            .counters()
            .iter()
            .map(|(&n, &c)| (n.to_string(), c))
            .collect();
        report.invalidation_events = am.invalidation_events();
        Ok(report)
    }

    fn run_one(
        &self,
        m: &mut M,
        am: &mut AnalysisManager<M>,
        instances: &mut HashMap<String, Box<dyn Pass<M>>>,
        name: &str,
        fixpoint_iteration: Option<usize>,
        report: &mut RunReport,
    ) -> Result<bool, RunError> {
        if !instances.contains_key(name) {
            let pass = self
                .registry
                .create(name)
                .ok_or_else(|| RunError::UnknownPass {
                    name: name.to_string(),
                    known: self.registry.names(),
                })?;
            instances.insert(name.to_string(), pass);
        }
        let pass = instances.get_mut(name).expect("just inserted");

        let t0 = Instant::now();
        let outcome = pass.run(m, am).map_err(|error| RunError::PassFailed {
            pass: name.to_string(),
            error,
        })?;
        let time = t0.elapsed();

        if outcome.changed {
            match &outcome.mutated {
                Mutation::None => am.invalidate_all(), // changed but undeclared: be safe
                Mutation::Funcs(fs) => {
                    for &f in fs {
                        am.invalidate(f);
                    }
                }
                Mutation::All => am.invalidate_all(),
                Mutation::Handled => {} // pass invalidated through `am` itself
            }
        }

        let mut run = PassRun {
            name: name.to_string(),
            time,
            changed: outcome.changed,
            stats: outcome.stats,
            fixpoint_iteration,
            annotations: Vec::new(),
        };

        if self.verify_between_passes {
            if let Some(v) = &self.verifier {
                if let Err(message) = v(m) {
                    return Err(RunError::VerifyFailed {
                        pass: name.to_string(),
                        message,
                    });
                }
            }
        }
        if let Some(obs) = &self.observer {
            obs(m, &mut run);
        }

        let changed = run.changed;
        report.passes.push(run);
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{FnPass, PassOutcome};

    /// A toy IR: one "function" per vector slot holding a counter.
    #[derive(Debug, Default)]
    struct Toy {
        vals: Vec<i64>,
    }

    impl IrUnit for Toy {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
    }

    struct Sum;
    impl crate::Analysis<Toy> for Sum {
        type Output = i64;
        const NAME: &'static str = "sum";
        fn compute(m: &Toy, f: usize) -> i64 {
            m.vals[f]
        }
    }

    fn registry() -> PassRegistry<Toy> {
        let mut r = PassRegistry::new();
        // Decrements every positive slot by one.
        r.register("dec", || {
            Box::new(FnPass::infallible("dec", |m: &mut Toy, _am| {
                let mut n = 0;
                for v in &mut m.vals {
                    if *v > 0 {
                        *v -= 1;
                        n += 1;
                    }
                }
                PassOutcome::from_stats(vec![("decremented", n)])
            }))
        });
        // Reads the analysis but changes nothing.
        r.register("observe", || {
            Box::new(FnPass::infallible("observe", |m: &mut Toy, am| {
                for f in m.func_keys() {
                    let _ = am.get::<Sum>(m, f);
                }
                PassOutcome::unchanged()
            }))
        });
        r
    }

    #[test]
    fn fixpoint_iterates_to_convergence() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![3, 1] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(m.vals, vec![0, 0]);
        // 3 changing iterations + 1 confirming iteration.
        assert_eq!(report.passes.len(), 4);
        assert!(!report.passes.last().unwrap().changed);
        assert_eq!(report.passes[0].fixpoint_iteration, Some(0));
    }

    #[test]
    fn fixpoint_iteration_cap_holds() {
        let pm = PassManager::new(registry()).max_fixpoint_iters(2);
        let mut m = Toy { vals: vec![100] };
        let spec = PipelineSpec::parse("fixpoint(dec)").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        assert_eq!(report.passes.len(), 2);
        assert_eq!(m.vals, vec![98]);
    }

    #[test]
    fn unknown_pass_is_reported_with_known_names() {
        let pm = PassManager::new(registry());
        let mut m = Toy::default();
        let spec = PipelineSpec::parse("dec,nope").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown pass `nope`"), "{msg}");
        assert!(msg.contains("dec"), "{msg}");
        // Validation fails before anything runs.
        assert_eq!(m.vals, Vec::<i64>::new());
    }

    #[test]
    fn analyses_cache_until_mutation() {
        let pm = PassManager::new(registry());
        let mut m = Toy { vals: vec![1, 2] };
        // observe,observe: second is all hits. dec mutates, then observe
        // must recompute.
        let spec = PipelineSpec::parse("observe,observe,dec,observe").unwrap();
        let report = pm.run(&mut m, &spec).unwrap();
        let c = report.cache_counter("sum");
        assert_eq!(c.misses, 4, "2 funcs × (initial + post-mutation)");
        assert_eq!(c.hits, 2, "second observe is fully cached");
        assert_eq!(c.max_computes_between_invalidations, 1);
    }

    #[test]
    fn verifier_names_offending_pass() {
        let mut r = registry();
        r.register("break", || {
            Box::new(FnPass::infallible("break", |m: &mut Toy, _| {
                m.vals.push(-999);
                PassOutcome::from_stats(vec![("broke", 1)])
            }))
        });
        let pm = PassManager::new(r)
            .verify_between_passes(true)
            .with_verifier(|m: &Toy| {
                if m.vals.contains(&-999) {
                    Err("slot holds sentinel -999".into())
                } else {
                    Ok(())
                }
            });
        let mut m = Toy { vals: vec![1] };
        let spec = PipelineSpec::parse("dec,break,dec").unwrap();
        let err = pm.run(&mut m, &spec).unwrap_err();
        match err {
            RunError::VerifyFailed { pass, message } => {
                assert_eq!(pass, "break");
                assert!(message.contains("sentinel"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }
}
