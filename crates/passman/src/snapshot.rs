//! Snapshot engines for the fault-recovery path.
//!
//! Before a pass runs under a recovering [`FaultPolicy`](crate::FaultPolicy),
//! the runner captures a snapshot of whatever the pass declares it *may*
//! mutate ([`Pass::may_mutate`](crate::Pass::may_mutate)); if the pass
//! faults, the snapshot restores the module to its pre-pass state.
//!
//! Two engines implement this contract:
//!
//! * [`FullCloneEngine`] — the legacy strategy: clone the whole module,
//!   every pass, no matter what it touches;
//! * [`CowEngine`] — per-function copy-on-write for [`ShardedIr`]
//!   modules: a `Mutation::Funcs(keys)` scope clones only the declared
//!   functions, and clones made for an earlier pass are *reused* while
//!   those functions stay unmutated (commit keeps entries whose function
//!   did not change), falling back to a full module clone only for
//!   `Mutation::All`/`Handled` scopes.
//!
//! Both engines meter their work ([`SnapshotStats`] cumulative,
//! [`SnapshotCost`] per capture) in "units" — the implementor's
//! `size_hint`/`func_size_hint`, i.e. instructions cloned — so the
//! compile-time profiler can show exactly how much cloning each policy
//! paid for.

use crate::parallel::ShardedIr;
use crate::pass::Mutation;
use crate::IrUnit;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cumulative snapshot-engine counters for a whole pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Captures requested (one per recovering pass invocation).
    pub captures: usize,
    /// Captures that fell back to cloning the entire module.
    pub full_clones: usize,
    /// Individual functions cloned across all captures.
    pub funcs_cloned: usize,
    /// Functions whose existing pooled clone was reused (CoW hit).
    pub funcs_reused: usize,
    /// Size units (instructions) actually cloned across all captures.
    pub units_cloned: usize,
    /// Rollbacks performed.
    pub restores: usize,
}

/// What one capture cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCost {
    /// Whether this capture cloned the entire module.
    pub full: bool,
    /// Functions cloned by this capture.
    pub funcs_cloned: usize,
    /// Functions served from the pool without cloning.
    pub funcs_reused: usize,
    /// Size units (instructions) cloned by this capture.
    pub units_cloned: usize,
    /// Wall-clock time spent capturing.
    pub time: Duration,
}

/// Strategy for capturing and restoring pre-pass module state.
///
/// Call order per pass invocation: `capture` before the pass, then
/// exactly one of `restore` (the pass faulted) or `commit` (it
/// succeeded, with its actual mutation declaration).
pub trait SnapshotEngine<M: IrUnit> {
    /// Captures whatever `scope` says the upcoming pass may mutate.
    fn capture(&mut self, m: &M, scope: &Mutation<M>);

    /// Rolls the module back to the captured state.
    fn restore(&mut self, m: &mut M);

    /// Reconciles the engine with a successful pass: state captured for
    /// functions the pass actually mutated is now stale and dropped;
    /// state for untouched functions stays reusable.
    fn commit(&mut self, mutated: &Mutation<M>, changed: bool);

    /// Cost of the most recent capture.
    fn last_cost(&self) -> SnapshotCost;

    /// Cumulative counters.
    fn stats(&self) -> SnapshotStats;
}

/// The legacy engine: clone the whole module on every capture.
#[derive(Debug, Default)]
pub struct FullCloneEngine<M> {
    snapshot: Option<M>,
    last: SnapshotCost,
    stats: SnapshotStats,
}

impl<M> FullCloneEngine<M> {
    /// A fresh engine holding no snapshot.
    pub fn new() -> Self {
        FullCloneEngine {
            snapshot: None,
            last: SnapshotCost::default(),
            stats: SnapshotStats::default(),
        }
    }
}

impl<M: IrUnit + Clone> SnapshotEngine<M> for FullCloneEngine<M> {
    fn capture(&mut self, m: &M, _scope: &Mutation<M>) {
        let t0 = Instant::now();
        let units = m.size_hint();
        self.snapshot = Some(m.clone());
        self.last = SnapshotCost {
            full: true,
            funcs_cloned: 0,
            funcs_reused: 0,
            units_cloned: units,
            time: t0.elapsed(),
        };
        self.stats.captures += 1;
        self.stats.full_clones += 1;
        self.stats.units_cloned += units;
    }

    fn restore(&mut self, m: &mut M) {
        if let Some(snap) = self.snapshot.take() {
            *m = snap;
            self.stats.restores += 1;
        }
    }

    fn commit(&mut self, _mutated: &Mutation<M>, _changed: bool) {
        self.snapshot = None;
    }

    fn last_cost(&self) -> SnapshotCost {
        self.last
    }

    fn stats(&self) -> SnapshotStats {
        self.stats
    }
}

/// Per-function copy-on-write engine for [`ShardedIr`] modules.
///
/// Keeps a pool of pre-pass function clones keyed by function id. A
/// `Mutation::Funcs(keys)` capture clones only pool-missing keys; commit
/// evicts exactly the functions the pass reported mutated, so clean
/// functions carry their clone across passes for free. Scopes that may
/// touch the module shell (`All`, `Handled`) fall back to a full module
/// clone, preserving the legacy guarantee.
#[derive(Debug)]
pub struct CowEngine<M: ShardedIr> {
    pool: HashMap<M::FuncKey, M::Func>,
    /// Keys of the most recent `Funcs` capture (the restore scope).
    scope: Vec<M::FuncKey>,
    /// Whole-module fallback snapshot, when the last scope was not
    /// function-shaped.
    full: Option<M>,
    last: SnapshotCost,
    stats: SnapshotStats,
}

impl<M: ShardedIr> Default for CowEngine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: ShardedIr> CowEngine<M> {
    /// A fresh engine with an empty clone pool.
    pub fn new() -> Self {
        CowEngine {
            pool: HashMap::new(),
            scope: Vec::new(),
            full: None,
            last: SnapshotCost::default(),
            stats: SnapshotStats::default(),
        }
    }
}

impl<M: ShardedIr + Clone> SnapshotEngine<M> for CowEngine<M> {
    fn capture(&mut self, m: &M, scope: &Mutation<M>) {
        let t0 = Instant::now();
        self.stats.captures += 1;
        match scope {
            Mutation::None => {
                // The pass promises to mutate nothing: nothing to hold.
                self.scope.clear();
                self.full = None;
                self.last = SnapshotCost {
                    time: t0.elapsed(),
                    ..SnapshotCost::default()
                };
            }
            Mutation::Funcs(keys) => {
                self.full = None;
                self.scope = keys.clone();
                let mut cloned = 0;
                let mut reused = 0;
                let mut units = 0;
                for &k in keys {
                    match self.pool.entry(k) {
                        Entry::Occupied(_) => reused += 1,
                        Entry::Vacant(slot) => {
                            units += m.func_size_hint(k);
                            slot.insert(m.clone_func(k));
                            cloned += 1;
                        }
                    }
                }
                self.stats.funcs_cloned += cloned;
                self.stats.funcs_reused += reused;
                self.stats.units_cloned += units;
                self.last = SnapshotCost {
                    full: false,
                    funcs_cloned: cloned,
                    funcs_reused: reused,
                    units_cloned: units,
                    time: t0.elapsed(),
                };
            }
            Mutation::All | Mutation::Handled => {
                // The pass may restructure the module shell: only a full
                // clone is safe, and the per-function pool is void.
                self.scope.clear();
                self.pool.clear();
                let units = m.size_hint();
                self.full = Some(m.clone());
                self.stats.full_clones += 1;
                self.stats.units_cloned += units;
                self.last = SnapshotCost {
                    full: true,
                    funcs_cloned: 0,
                    funcs_reused: 0,
                    units_cloned: units,
                    time: t0.elapsed(),
                };
            }
        }
    }

    fn restore(&mut self, m: &mut M) {
        self.stats.restores += 1;
        if let Some(snap) = self.full.take() {
            *m = snap;
            self.pool.clear();
            return;
        }
        // The faulting pass promised to stay within `scope`: restoring
        // those functions from the pool reconstructs the pre-pass module.
        for k in std::mem::take(&mut self.scope) {
            if let Some(f) = self.pool.get(&k) {
                m.restore_func(k, f.clone());
            }
        }
    }

    fn commit(&mut self, mutated: &Mutation<M>, changed: bool) {
        self.full = None;
        self.scope.clear();
        if !changed {
            return;
        }
        match mutated {
            Mutation::None => {}
            Mutation::Funcs(keys) => {
                for k in keys {
                    self.pool.remove(k);
                }
            }
            Mutation::All | Mutation::Handled => {
                self.pool.clear();
            }
        }
    }

    fn last_cost(&self) -> SnapshotCost {
        self.last
    }

    fn stats(&self) -> SnapshotStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal sharded IR: functions are plain integers.
    #[derive(Clone, Debug, Default, PartialEq)]
    struct Toy {
        vals: Vec<i64>,
    }

    impl IrUnit for Toy {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
        fn size_hint(&self) -> usize {
            self.vals.len()
        }
    }

    impl ShardedIr for Toy {
        type Func = i64;
        fn detach_funcs(&mut self) -> Vec<(usize, i64)> {
            std::mem::take(&mut self.vals)
                .into_iter()
                .enumerate()
                .collect()
        }
        fn attach_funcs(&mut self, funcs: Vec<(usize, i64)>) {
            assert!(self.vals.is_empty());
            for (i, (k, v)) in funcs.into_iter().enumerate() {
                assert_eq!(i, k);
                self.vals.push(v);
            }
        }
        fn clone_func(&self, key: usize) -> i64 {
            self.vals[key]
        }
        fn restore_func(&mut self, key: usize, func: i64) {
            self.vals[key] = func;
        }
        fn func_size_hint(&self, _key: usize) -> usize {
            1
        }
    }

    #[test]
    fn cow_clones_only_the_declared_functions() {
        let m = Toy {
            vals: vec![10, 20, 30, 40],
        };
        let mut eng = CowEngine::<Toy>::new();
        eng.capture(&m, &Mutation::Funcs(vec![1, 3]));
        let c = eng.last_cost();
        assert!(!c.full);
        assert_eq!(c.funcs_cloned, 2);
        assert_eq!(c.units_cloned, 2);
    }

    #[test]
    fn cow_reuses_pooled_clones_for_clean_functions() {
        let mut m = Toy {
            vals: vec![10, 20, 30],
        };
        let mut eng = CowEngine::<Toy>::new();
        eng.capture(&m, &Mutation::Funcs(vec![0, 1, 2]));
        // The pass mutated only function 1.
        m.vals[1] = 99;
        eng.commit(&Mutation::Funcs(vec![1]), true);
        // Next pass over the same scope: only function 1 needs recloning.
        eng.capture(&m, &Mutation::Funcs(vec![0, 1, 2]));
        let c = eng.last_cost();
        assert_eq!(c.funcs_cloned, 1);
        assert_eq!(c.funcs_reused, 2);
        assert_eq!(eng.stats().funcs_cloned, 4);
    }

    #[test]
    fn cow_restore_rolls_back_exactly_the_scope() {
        let mut m = Toy {
            vals: vec![1, 2, 3],
        };
        let mut eng = CowEngine::<Toy>::new();
        eng.capture(&m, &Mutation::Funcs(vec![0, 2]));
        m.vals[0] = 100;
        m.vals[1] = 200; // outside the scope: a pass honoring its
                         // declaration would not do this; restore leaves it.
        m.vals[2] = 300;
        eng.restore(&mut m);
        assert_eq!(m.vals, vec![1, 200, 3]);
        assert_eq!(eng.stats().restores, 1);
    }

    #[test]
    fn cow_falls_back_to_full_clone_for_all_scope() {
        let mut m = Toy { vals: vec![5, 6] };
        let mut eng = CowEngine::<Toy>::new();
        eng.capture(&m, &Mutation::All);
        assert!(eng.last_cost().full);
        assert_eq!(eng.last_cost().units_cloned, 2);
        m.vals.clear(); // even structural damage rolls back
        eng.restore(&mut m);
        assert_eq!(m.vals, vec![5, 6]);
    }

    #[test]
    fn full_clone_engine_always_pays_for_the_module() {
        let mut m = Toy {
            vals: vec![7, 8, 9],
        };
        let mut eng = FullCloneEngine::<Toy>::new();
        eng.capture(&m, &Mutation::Funcs(vec![0]));
        assert!(eng.last_cost().full);
        assert_eq!(eng.last_cost().units_cloned, 3);
        m.vals[2] = 0;
        eng.restore(&mut m);
        assert_eq!(m.vals, vec![7, 8, 9]);
    }
}
