//! Textual pipeline specifications, LLVM `-passes=` style.
//!
//! Grammar (whitespace is insignificant):
//!
//! ```text
//! spec     := step ("," step)*
//! step     := call | "fixpoint" opts? "(" call ("," call)* ")"
//! call     := name opts?
//! opts     := "<" opt ("," opt)* ">"
//! opt      := key | key "=" value
//! name,key := [A-Za-z0-9_-]+
//! value    := [A-Za-z0-9_.-]+
//! ```
//!
//! `fixpoint(a,b,c)` runs `a,b,c` repeatedly until an iteration in which
//! no pass reports a change (bounded by the runner's iteration cap).
//! `fixpoint` groups do not nest — a nested `fixpoint(` is a parse error,
//! keeping convergence behaviour predictable.
//!
//! Options attach to a pass invocation (`dee<exact>`, `dce<max-ms=50>`)
//! or to a fixpoint group (`fixpoint<max=4>(simplify,dce)`). The runner
//! interprets the *reserved* option keys itself:
//!
//! * `max` (fixpoint groups only) — iteration cap for this group,
//!   overriding the manager-wide default;
//! * `max-ms` — per-pass wall-clock budget in milliseconds;
//! * `max-growth` — per-pass instruction-count growth factor budget;
//! * `parallel` — worker-thread count for this invocation of a
//!   function-sharded pass (e.g. `simplify<parallel=4>`), overriding the
//!   manager-wide [`with_threads`](crate::PassManager::with_threads)
//!   setting. Module-level passes ignore it.
//! * `verify-sym` — prove this invocation's input ≡ output with the
//!   manager's symbolic verifier (see
//!   [`with_sym_verifier`](crate::PassManager::with_sym_verifier));
//!   `verify-sym=N` caps the proof at `N` symbolic paths per function.
//!
//! All other options are handed to the pass constructor (see
//! [`PassRegistry::register_with`](crate::PassRegistry::register_with)),
//! which may reject unknown keys.

use std::fmt;
use std::str::FromStr;

/// Option keys interpreted by the runner rather than the pass
/// constructor (budgets, fixpoint caps, worker threads, per-pass
/// symbolic verification).
pub const RESERVED_OPTION_KEYS: &[&str] =
    &["max", "max-ms", "max-growth", "parallel", "verify-sym"];

/// Options attached to a pass invocation or fixpoint group: an ordered
/// list of `key` / `key=value` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassOptions(Vec<(String, Option<String>)>);

impl PassOptions {
    /// No options.
    pub fn none() -> Self {
        PassOptions(Vec::new())
    }

    /// Options from `(key, value)` pairs.
    pub fn from_pairs(pairs: Vec<(String, Option<String>)>) -> Self {
        PassOptions(pairs)
    }

    /// Whether there are no options.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates `(key, value)` pairs in spec order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Option<&str>)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }

    /// Whether the bare flag `key` is present (e.g. `exact` in
    /// `dee<exact>`).
    pub fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|(k, v)| k == key && v.is_none())
    }

    /// The value of `key=value`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The value of `key=value` parsed as `T`; `None` when absent, an
    /// error string when present but unparsable.
    pub fn get_parsed<T: FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("option `{key}={v}` is not a valid value")),
        }
    }

    /// The same options minus the runner-reserved keys — what a pass
    /// constructor should see.
    pub fn without_reserved(&self) -> PassOptions {
        PassOptions(
            self.0
                .iter()
                .filter(|(k, _)| !RESERVED_OPTION_KEYS.contains(&k.as_str()))
                .cloned()
                .collect(),
        )
    }

    /// Keys that are neither reserved nor in `known` (for constructors
    /// that want to reject typos).
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<&str> {
        self.0
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !known.contains(k) && !RESERVED_OPTION_KEYS.contains(k))
            .collect()
    }
}

impl fmt::Display for PassOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        f.write_str("<")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match v {
                Some(v) => write!(f, "{k}={v}")?,
                None => f.write_str(k)?,
            }
        }
        f.write_str(">")
    }
}

/// One pass invocation in a spec: a name plus its options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassCall {
    /// Registry name of the pass.
    pub name: String,
    /// Options attached at the call site.
    pub opts: PassOptions,
}

impl PassCall {
    /// A call with no options.
    pub fn named(name: impl Into<String>) -> Self {
        PassCall {
            name: name.into(),
            opts: PassOptions::none(),
        }
    }
}

impl From<&str> for PassCall {
    fn from(name: &str) -> Self {
        PassCall::named(name)
    }
}

impl From<String> for PassCall {
    fn from(name: String) -> Self {
        PassCall::named(name)
    }
}

impl fmt::Display for PassCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.opts)
    }
}

/// One step of a pipeline: a single pass or a fixpoint group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecStep {
    /// Run the named pass once.
    Pass(PassCall),
    /// Run the passes repeatedly until none reports a change.
    Fixpoint {
        /// Group options (`max=N` caps this group's iterations).
        opts: PassOptions,
        /// The group body, in order.
        body: Vec<PassCall>,
    },
}

impl SpecStep {
    /// A single-pass step with no options.
    pub fn pass(name: impl Into<String>) -> Self {
        SpecStep::Pass(PassCall::named(name))
    }

    /// A fixpoint step over the named passes, with no options.
    pub fn fixpoint<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        SpecStep::Fixpoint {
            opts: PassOptions::none(),
            body: names.into_iter().map(|n| PassCall::named(n)).collect(),
        }
    }
}

/// A parsed pipeline specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Steps in execution order.
    pub steps: Vec<SpecStep>,
}

/// A pipeline-spec parse failure, with byte position where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecParseError {
    /// The spec contained no steps.
    Empty,
    /// A character outside the name alphabet / structure.
    UnexpectedChar {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character found.
        ch: char,
    },
    /// A `fixpoint(` occurred inside another `fixpoint(...)`.
    NestedFixpoint {
        /// Byte offset of the inner `fixpoint`.
        pos: usize,
    },
    /// A `fixpoint(` was never closed.
    UnclosedFixpoint,
    /// A `fixpoint()` group with no passes.
    EmptyFixpoint {
        /// Byte offset of the group.
        pos: usize,
    },
    /// An empty pass name (e.g. `a,,b` or a trailing comma).
    EmptyName {
        /// Byte offset where a name was expected.
        pos: usize,
    },
    /// A malformed `<...>` option list.
    BadOptions {
        /// Byte offset of the offending character.
        pos: usize,
        /// What went wrong.
        what: &'static str,
    },
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecParseError::Empty => write!(f, "empty pipeline spec"),
            SpecParseError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character `{ch}` at byte {pos}")
            }
            SpecParseError::NestedFixpoint { pos } => {
                write!(f, "nested fixpoint(...) at byte {pos} is not supported")
            }
            SpecParseError::UnclosedFixpoint => write!(f, "unclosed fixpoint(..."),
            SpecParseError::EmptyFixpoint { pos } => {
                write!(f, "fixpoint() at byte {pos} must contain at least one pass")
            }
            SpecParseError::EmptyName { pos } => {
                write!(f, "expected a pass name at byte {pos}")
            }
            SpecParseError::BadOptions { pos, what } => {
                write!(f, "malformed option list at byte {pos}: {what}")
            }
        }
    }
}

impl std::error::Error for SpecParseError {}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

fn is_value_char(c: char) -> bool {
    is_name_char(c) || c == '.'
}

struct Parser<'a> {
    input: &'a str,
    bytes: Vec<(usize, char)>,
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.char_indices().collect(),
            i: 0,
        }
    }

    fn pos(&self) -> usize {
        if self.i < self.bytes.len() {
            self.bytes[self.i].0
        } else {
            self.input.len()
        }
    }

    fn peek(&self) -> Option<char> {
        self.bytes.get(self.i).map(|&(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn read_while(&mut self, pred: impl Fn(char) -> bool) -> Option<String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.i += 1;
        }
        if self.i == start {
            None
        } else {
            Some(self.bytes[start..self.i].iter().map(|&(_, c)| c).collect())
        }
    }

    /// Parses an optional `<opt,...>` list right after a name.
    fn read_opts(&mut self) -> Result<PassOptions, SpecParseError> {
        self.skip_ws();
        if self.peek() != Some('<') {
            return Ok(PassOptions::none());
        }
        self.i += 1; // consume '<'
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            let pos = self.pos();
            let Some(key) = self.read_while(is_name_char) else {
                return Err(SpecParseError::BadOptions {
                    pos,
                    what: "expected an option key",
                });
            };
            self.skip_ws();
            let value = if self.peek() == Some('=') {
                self.i += 1;
                self.skip_ws();
                let vpos = self.pos();
                let Some(v) = self.read_while(is_value_char) else {
                    return Err(SpecParseError::BadOptions {
                        pos: vpos,
                        what: "expected a value after `=`",
                    });
                };
                Some(v)
            } else {
                None
            };
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('>') => {
                    self.i += 1;
                    break;
                }
                _ => {
                    return Err(SpecParseError::BadOptions {
                        pos: self.pos(),
                        what: "expected `,` or `>`",
                    })
                }
            }
        }
        Ok(PassOptions(pairs))
    }

    /// Parses `name opts?` (the `call` production).
    fn read_call(&mut self) -> Result<PassCall, SpecParseError> {
        self.skip_ws();
        let pos = self.pos();
        let Some(name) = self.read_while(is_name_char) else {
            return Err(SpecParseError::EmptyName { pos });
        };
        let opts = self.read_opts()?;
        Ok(PassCall { name, opts })
    }
}

impl PipelineSpec {
    /// A spec built from steps.
    pub fn new(steps: Vec<SpecStep>) -> Self {
        PipelineSpec { steps }
    }

    /// Parses a textual spec like
    /// `"constprop,dee<exact>,fixpoint<max=4>(simplify,sink,dce)"`.
    ///
    /// ```
    /// use passman::PipelineSpec;
    ///
    /// let spec = PipelineSpec::parse("constprop,fixpoint<max=4>(simplify,dce)").unwrap();
    /// assert_eq!(spec.pass_names(), ["constprop", "simplify", "dce"]);
    /// // Printing and reparsing closes (the fuzzer's `cli` mode
    /// // attacks this property on every textual surface).
    /// assert_eq!(PipelineSpec::parse(&spec.to_string()).unwrap(), spec);
    /// ```
    pub fn parse(input: &str) -> Result<Self, SpecParseError> {
        let mut p = Parser::new(input);
        let mut steps = Vec::new();

        loop {
            p.skip_ws();
            if steps.is_empty() && p.peek().is_none() {
                return Err(SpecParseError::Empty);
            }
            let call_pos = p.pos();
            let call = p.read_call()?;
            p.skip_ws();

            if call.name == "fixpoint" && p.peek() == Some('(') {
                p.i += 1; // consume '('
                let mut body = Vec::new();
                loop {
                    p.skip_ws();
                    if p.peek() == Some(')') && body.is_empty() {
                        return Err(SpecParseError::EmptyFixpoint { pos: call_pos });
                    }
                    let inner_pos = p.pos();
                    if p.peek().is_none() {
                        return Err(SpecParseError::UnclosedFixpoint);
                    }
                    let inner = p.read_call()?;
                    p.skip_ws();
                    if inner.name == "fixpoint" && p.peek() == Some('(') {
                        return Err(SpecParseError::NestedFixpoint { pos: inner_pos });
                    }
                    body.push(inner);
                    match p.peek() {
                        None => return Err(SpecParseError::UnclosedFixpoint),
                        Some(',') => p.i += 1,
                        Some(')') => {
                            p.i += 1;
                            break;
                        }
                        Some(ch) => {
                            return Err(SpecParseError::UnexpectedChar { pos: p.pos(), ch })
                        }
                    }
                }
                steps.push(SpecStep::Fixpoint {
                    opts: call.opts,
                    body,
                });
            } else {
                steps.push(SpecStep::Pass(call));
            }

            p.skip_ws();
            match p.peek() {
                None => break,
                Some(',') => p.i += 1,
                Some(ch) => return Err(SpecParseError::UnexpectedChar { pos: p.pos(), ch }),
            }
        }

        if steps.is_empty() {
            return Err(SpecParseError::Empty);
        }
        Ok(PipelineSpec { steps })
    }

    /// All pass names referenced by the spec (with repetitions).
    pub fn pass_names(&self) -> Vec<&str> {
        self.calls().map(|c| c.name.as_str()).collect()
    }

    /// All pass calls referenced by the spec, in order (with repetitions).
    pub fn calls(&self) -> impl Iterator<Item = &PassCall> {
        self.steps.iter().flat_map(|s| match s {
            SpecStep::Pass(c) => std::slice::from_ref(c).iter(),
            SpecStep::Fixpoint { body, .. } => body.iter(),
        })
    }
}

impl FromStr for PipelineSpec {
    type Err = SpecParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PipelineSpec::parse(s)
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match s {
                SpecStep::Pass(c) => write!(f, "{c}")?,
                SpecStep::Fixpoint { opts, body } => {
                    let body: Vec<String> = body.iter().map(|c| c.to_string()).collect();
                    write!(f, "fixpoint{opts}({})", body.join(","))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_and_fixpoint() {
        let s =
            PipelineSpec::parse("constprop,dee,fixpoint(simplify,sink,dce),ssa-destruct").unwrap();
        assert_eq!(
            s.steps,
            vec![
                SpecStep::pass("constprop"),
                SpecStep::pass("dee"),
                SpecStep::fixpoint(["simplify", "sink", "dce"]),
                SpecStep::pass("ssa-destruct"),
            ]
        );
    }

    #[test]
    fn parses_options() {
        let s =
            PipelineSpec::parse("dee<exact>,dce<max-ms=50>,fixpoint<max=4>(simplify,dce)").unwrap();
        let SpecStep::Pass(dee) = &s.steps[0] else {
            panic!()
        };
        assert!(dee.opts.flag("exact"));
        let SpecStep::Pass(dce) = &s.steps[1] else {
            panic!()
        };
        assert_eq!(dce.opts.get("max-ms"), Some("50"));
        assert_eq!(dce.opts.get_parsed::<u64>("max-ms"), Ok(Some(50)));
        let SpecStep::Fixpoint { opts, body } = &s.steps[2] else {
            panic!()
        };
        assert_eq!(opts.get_parsed::<usize>("max"), Ok(Some(4)));
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn option_helpers_classify_keys() {
        let s = PipelineSpec::parse("dee<exact,max-growth=2.5>").unwrap();
        let SpecStep::Pass(dee) = &s.steps[0] else {
            panic!()
        };
        assert_eq!(dee.opts.get_parsed::<f64>("max-growth"), Ok(Some(2.5)));
        let stripped = dee.opts.without_reserved();
        assert!(stripped.flag("exact"));
        assert_eq!(stripped.get("max-growth"), None);
        assert_eq!(dee.opts.unknown_keys(&["exact"]), Vec::<&str>::new());
        assert_eq!(dee.opts.unknown_keys(&[]), vec!["exact"]);
    }

    #[test]
    fn round_trips_through_display() {
        for text in [
            "constprop",
            "constprop,dce",
            "constprop,fixpoint(simplify,sink,dce)",
            "ssa-construct,dee,fixpoint(constprop,simplify,sink,dce),ssa-destruct",
            "a_b,c-d,fixpoint(e)",
            "dee<exact>",
            "dee<exact,guard=off>,fixpoint<max=4>(simplify,dce<max-ms=10>)",
        ] {
            let spec = PipelineSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text, "canonical print");
            let reparsed = PipelineSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(reparsed, spec, "parse ∘ print is identity");
        }
    }

    #[test]
    fn tolerates_whitespace() {
        let a = PipelineSpec::parse(" constprop , fixpoint( sink , dce ) ").unwrap();
        let b = PipelineSpec::parse("constprop,fixpoint(sink,dce)").unwrap();
        assert_eq!(a, b);
        let c = PipelineSpec::parse(" dee < exact , max = 4 > ").unwrap();
        let d = PipelineSpec::parse("dee<exact,max=4>").unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn rejects_nested_fixpoint() {
        let err = PipelineSpec::parse("fixpoint(a,fixpoint(b))").unwrap_err();
        assert!(
            matches!(err, SpecParseError::NestedFixpoint { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(PipelineSpec::parse(""), Err(SpecParseError::Empty));
        assert_eq!(PipelineSpec::parse("   "), Err(SpecParseError::Empty));
        assert!(matches!(
            PipelineSpec::parse("a,,b"),
            Err(SpecParseError::EmptyName { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("a,"),
            Err(SpecParseError::EmptyName { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("fixpoint()"),
            Err(SpecParseError::EmptyFixpoint { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("fixpoint(a"),
            Err(SpecParseError::UnclosedFixpoint)
        ));
        assert!(matches!(
            PipelineSpec::parse("a;b"),
            Err(SpecParseError::UnexpectedChar { ch: ';', .. })
        ));
        for bad in ["a<", "a<>", "a<k=>", "a<k=v", "a<k;>", "a<=v>"] {
            assert!(
                matches!(
                    PipelineSpec::parse(bad),
                    Err(SpecParseError::BadOptions { .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn fixpoint_without_parens_is_a_pass_name() {
        // A pass literally named `fixpoint` is allowed when not followed
        // by `(` — the grammar only reserves the call form.
        let s = PipelineSpec::parse("fixpoint").unwrap();
        assert_eq!(s.steps, vec![SpecStep::pass("fixpoint")]);
    }
}
