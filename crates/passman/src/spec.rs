//! Textual pipeline specifications, LLVM `-passes=` style.
//!
//! Grammar (whitespace is insignificant):
//!
//! ```text
//! spec     := step ("," step)*
//! step     := name | "fixpoint" "(" name ("," name)* ")"
//! name     := [A-Za-z0-9_-]+
//! ```
//!
//! `fixpoint(a,b,c)` runs `a,b,c` repeatedly until an iteration in which
//! no pass reports a change (bounded by the runner's iteration cap).
//! `fixpoint` groups do not nest — a nested `fixpoint(` is a parse error,
//! keeping convergence behaviour predictable.

use std::fmt;
use std::str::FromStr;

/// One step of a pipeline: a single pass or a fixpoint group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecStep {
    /// Run the named pass once.
    Pass(String),
    /// Run the named passes repeatedly until none reports a change.
    Fixpoint(Vec<String>),
}

/// A parsed pipeline specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Steps in execution order.
    pub steps: Vec<SpecStep>,
}

/// A pipeline-spec parse failure, with byte position where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecParseError {
    /// The spec contained no steps.
    Empty,
    /// A character outside the name alphabet / structure.
    UnexpectedChar {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character found.
        ch: char,
    },
    /// A `fixpoint(` occurred inside another `fixpoint(...)`.
    NestedFixpoint {
        /// Byte offset of the inner `fixpoint`.
        pos: usize,
    },
    /// A `fixpoint(` was never closed.
    UnclosedFixpoint,
    /// A `fixpoint()` group with no passes.
    EmptyFixpoint {
        /// Byte offset of the group.
        pos: usize,
    },
    /// An empty pass name (e.g. `a,,b` or a trailing comma).
    EmptyName {
        /// Byte offset where a name was expected.
        pos: usize,
    },
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecParseError::Empty => write!(f, "empty pipeline spec"),
            SpecParseError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character `{ch}` at byte {pos}")
            }
            SpecParseError::NestedFixpoint { pos } => {
                write!(f, "nested fixpoint(...) at byte {pos} is not supported")
            }
            SpecParseError::UnclosedFixpoint => write!(f, "unclosed fixpoint(..."),
            SpecParseError::EmptyFixpoint { pos } => {
                write!(f, "fixpoint() at byte {pos} must contain at least one pass")
            }
            SpecParseError::EmptyName { pos } => {
                write!(f, "expected a pass name at byte {pos}")
            }
        }
    }
}

impl std::error::Error for SpecParseError {}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

impl PipelineSpec {
    /// A spec built from steps.
    pub fn new(steps: Vec<SpecStep>) -> Self {
        PipelineSpec { steps }
    }

    /// Parses a textual spec like `"constprop,dee,fixpoint(simplify,sink,dce)"`.
    pub fn parse(input: &str) -> Result<Self, SpecParseError> {
        let bytes: Vec<(usize, char)> = input.char_indices().collect();
        let mut i = 0usize; // index into `bytes`
        let mut steps = Vec::new();

        let skip_ws = |i: &mut usize| {
            while *i < bytes.len() && bytes[*i].1.is_whitespace() {
                *i += 1;
            }
        };
        let read_name = |i: &mut usize| -> Option<String> {
            let start = *i;
            while *i < bytes.len() && is_name_char(bytes[*i].1) {
                *i += 1;
            }
            if *i == start {
                None
            } else {
                Some(bytes[start..*i].iter().map(|&(_, c)| c).collect())
            }
        };

        loop {
            skip_ws(&mut i);
            let name_pos = if i < bytes.len() {
                bytes[i].0
            } else {
                input.len()
            };
            let Some(name) = read_name(&mut i) else {
                if steps.is_empty() && i >= bytes.len() {
                    return Err(SpecParseError::Empty);
                }
                return Err(SpecParseError::EmptyName { pos: name_pos });
            };
            skip_ws(&mut i);

            if name == "fixpoint" && i < bytes.len() && bytes[i].1 == '(' {
                let group_pos = bytes[i].0;
                i += 1; // consume '('
                let mut body = Vec::new();
                loop {
                    skip_ws(&mut i);
                    if i < bytes.len() && bytes[i].1 == ')' && body.is_empty() {
                        return Err(SpecParseError::EmptyFixpoint { pos: group_pos });
                    }
                    let inner_pos = if i < bytes.len() {
                        bytes[i].0
                    } else {
                        input.len()
                    };
                    let Some(inner) = read_name(&mut i) else {
                        if i >= bytes.len() {
                            return Err(SpecParseError::UnclosedFixpoint);
                        }
                        return Err(SpecParseError::EmptyName { pos: inner_pos });
                    };
                    skip_ws(&mut i);
                    if inner == "fixpoint" && i < bytes.len() && bytes[i].1 == '(' {
                        return Err(SpecParseError::NestedFixpoint { pos: inner_pos });
                    }
                    body.push(inner);
                    if i >= bytes.len() {
                        return Err(SpecParseError::UnclosedFixpoint);
                    }
                    match bytes[i].1 {
                        ',' => i += 1,
                        ')' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            return Err(SpecParseError::UnexpectedChar {
                                pos: bytes[i].0,
                                ch,
                            })
                        }
                    }
                }
                steps.push(SpecStep::Fixpoint(body));
            } else {
                steps.push(SpecStep::Pass(name));
            }

            skip_ws(&mut i);
            if i >= bytes.len() {
                break;
            }
            match bytes[i].1 {
                ',' => i += 1,
                ch => {
                    return Err(SpecParseError::UnexpectedChar {
                        pos: bytes[i].0,
                        ch,
                    })
                }
            }
        }

        if steps.is_empty() {
            return Err(SpecParseError::Empty);
        }
        Ok(PipelineSpec { steps })
    }

    /// All pass names referenced by the spec (with repetitions).
    pub fn pass_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for s in &self.steps {
            match s {
                SpecStep::Pass(n) => out.push(n.as_str()),
                SpecStep::Fixpoint(ns) => out.extend(ns.iter().map(|n| n.as_str())),
            }
        }
        out
    }
}

impl FromStr for PipelineSpec {
    type Err = SpecParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PipelineSpec::parse(s)
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match s {
                SpecStep::Pass(n) => f.write_str(n)?,
                SpecStep::Fixpoint(ns) => write!(f, "fixpoint({})", ns.join(","))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_and_fixpoint() {
        let s =
            PipelineSpec::parse("constprop,dee,fixpoint(simplify,sink,dce),ssa-destruct").unwrap();
        assert_eq!(
            s.steps,
            vec![
                SpecStep::Pass("constprop".into()),
                SpecStep::Pass("dee".into()),
                SpecStep::Fixpoint(vec!["simplify".into(), "sink".into(), "dce".into()]),
                SpecStep::Pass("ssa-destruct".into()),
            ]
        );
    }

    #[test]
    fn round_trips_through_display() {
        for text in [
            "constprop",
            "constprop,dce",
            "constprop,fixpoint(simplify,sink,dce)",
            "ssa-construct,dee,fixpoint(constprop,simplify,sink,dce),ssa-destruct",
            "a_b,c-d,fixpoint(e)",
        ] {
            let spec = PipelineSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text, "canonical print");
            let reparsed = PipelineSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(reparsed, spec, "parse ∘ print is identity");
        }
    }

    #[test]
    fn tolerates_whitespace() {
        let a = PipelineSpec::parse(" constprop , fixpoint( sink , dce ) ").unwrap();
        let b = PipelineSpec::parse("constprop,fixpoint(sink,dce)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_nested_fixpoint() {
        let err = PipelineSpec::parse("fixpoint(a,fixpoint(b))").unwrap_err();
        assert!(
            matches!(err, SpecParseError::NestedFixpoint { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(PipelineSpec::parse(""), Err(SpecParseError::Empty));
        assert_eq!(PipelineSpec::parse("   "), Err(SpecParseError::Empty));
        assert!(matches!(
            PipelineSpec::parse("a,,b"),
            Err(SpecParseError::EmptyName { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("a,"),
            Err(SpecParseError::EmptyName { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("fixpoint()"),
            Err(SpecParseError::EmptyFixpoint { .. })
        ));
        assert!(matches!(
            PipelineSpec::parse("fixpoint(a"),
            Err(SpecParseError::UnclosedFixpoint)
        ));
        assert!(matches!(
            PipelineSpec::parse("a;b"),
            Err(SpecParseError::UnexpectedChar { ch: ';', .. })
        ));
    }

    #[test]
    fn fixpoint_without_parens_is_a_pass_name() {
        // A pass literally named `fixpoint` is allowed when not followed
        // by `(` — the grammar only reserves the call form.
        let s = PipelineSpec::parse("fixpoint").unwrap();
        assert_eq!(s.steps, vec![SpecStep::Pass("fixpoint".into())]);
    }
}
