//! Cross-IR bridge stages: lowering one IR unit into a different IR unit
//! under the same fault policies, budgets, snapshots, and reporting as
//! ordinary passes.
//!
//! [`PassManager`](crate::PassManager) is generic over a single IR type,
//! so a translation step (MEMOIR → low-level IR) cannot be registered as
//! a [`Pass`](crate::Pass). [`LowerStage`] fills the gap: it runs a
//! bridging body `FnOnce(&mut A) -> Result<(B, stats), String>` with
//!
//! * panic isolation (`catch_unwind`) and input rollback under the
//!   recovering [`FaultPolicy`] variants, via a pre-stage full clone of
//!   the input (the input is the last verified IR: a faulted stage must
//!   leave it exactly as it found it);
//! * output verification (e.g. the target IR's structural verifier) and
//!   an optional *cross-IR check* comparing input and output (e.g.
//!   interpreter agreement on probe inputs) — both classified as
//!   [`FaultCause::VerifyFailed`];
//! * per-stage time budgets and [`FaultPlan`] injection (`panic@lower`,
//!   `verify@lower`, `budget@lower`);
//! * a [`PassRun`] (and, on fault, a [`Degradation`]) appended to the
//!   caller's [`RunReport`], so lowering shows up in the same profile
//!   table as every other pass.
//!
//! Fault classification mirrors `PassManager::run_one`: panic, then body
//! error, then output verification, then cross-IR check, then budgets.
//! Under [`FaultPolicy::Abort`] panics propagate and other faults map to
//! [`RunError`]; under `SkipPass`/`StopPipeline` the input is restored
//! and the stage reports [`StageOutcome::Degraded`]. Either recovering
//! policy marks the report `stopped_early`: unlike an ordinary skipped
//! pass, nothing downstream of a lowering stage can run without its
//! output, so the pipeline ends at the stage with the *input* IR as the
//! final result.

use crate::budget::{BudgetViolation, Budgets};
use crate::fault::{FaultPlan, InjectKind};
use crate::recover::{Degradation, FaultCause, FaultPolicy, RecoveryAction};
use crate::runner::{PassRun, RunError, RunReport};
use crate::snapshot::SnapshotCost;
use crate::IrUnit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// What a [`LowerStage`] run produced.
#[derive(Debug)]
pub enum StageOutcome<B> {
    /// The stage completed and verified; here is the lowered unit.
    Lowered(B),
    /// A recovering [`FaultPolicy`] contained a fault: the input was
    /// rolled back to its pre-stage state and no lowered unit exists.
    /// The [`Degradation`] is in the caller's [`RunReport`].
    Degraded {
        /// The [`RecoveryAction`] taken (`RolledBack` for `SkipPass`,
        /// `Stopped` for `StopPipeline`).
        action: RecoveryAction,
    },
}

impl<B> StageOutcome<B> {
    /// The lowered unit, if the stage completed.
    pub fn lowered(self) -> Option<B> {
        match self {
            StageOutcome::Lowered(b) => Some(b),
            StageOutcome::Degraded { .. } => None,
        }
    }
}

type OutputVerifier<B> = Box<dyn Fn(&B) -> Result<(), String>>;
type CrossCheck<A, B> = Box<dyn Fn(&A, &B) -> Result<(), String>>;
/// Outcome of running a stage body: outer `Err` is a caught panic
/// message, inner `Err` a stage failure, `Ok` the output plus stats.
type BodyResult<B> = Result<Result<(B, Vec<(&'static str, i64)>), String>, String>;

/// A cross-IR bridge stage (see the module docs).
///
/// `A` is the source IR unit (cloned for rollback under recovering
/// policies), `B` the target.
pub struct LowerStage<A, B> {
    name: String,
    policy: FaultPolicy,
    budgets: Budgets,
    verify_output: bool,
    output_verifier: Option<OutputVerifier<B>>,
    cross_check: Option<CrossCheck<A, B>>,
    injection: Option<FaultPlan>,
}

impl<A, B> std::fmt::Debug for LowerStage<A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LowerStage")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("budgets", &self.budgets)
            .field("verify_output", &self.verify_output)
            .field("has_output_verifier", &self.output_verifier.is_some())
            .field("has_cross_check", &self.cross_check.is_some())
            .field("injection", &self.injection)
            .finish()
    }
}

impl<A: IrUnit + Clone, B: IrUnit> Default for LowerStage<A, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: IrUnit + Clone, B: IrUnit> LowerStage<A, B> {
    /// A stage named `lower` with the [`FaultPolicy::Abort`] policy, no
    /// budgets, and no verifiers.
    pub fn new() -> Self {
        Self::named("lower")
    }

    /// A stage with an explicit spec name (used for reporting and as the
    /// [`FaultPlan`] target name).
    pub fn named(name: impl Into<String>) -> Self {
        LowerStage {
            name: name.into(),
            policy: FaultPolicy::Abort,
            budgets: Budgets::default(),
            verify_output: true,
            output_verifier: None,
            cross_check: None,
            injection: None,
        }
    }

    /// The stage's spec name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the fault policy (recovering policies snapshot the input and
    /// roll it back on fault).
    pub fn on_fault(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the stage budgets (`max_pass_millis` bounds the stage body;
    /// growth budgets do not apply across IRs and are ignored).
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Installs the output verifier (typically the target IR's
    /// structural verifier).
    pub fn with_output_verifier(mut self, v: impl Fn(&B) -> Result<(), String> + 'static) -> Self {
        self.output_verifier = Some(Box::new(v));
        self
    }

    /// Installs the cross-IR check, run after the output verifier
    /// (typically interpreter agreement between source and target on
    /// probe inputs).
    pub fn with_cross_check(mut self, c: impl Fn(&A, &B) -> Result<(), String> + 'static) -> Self {
        self.cross_check = Some(Box::new(c));
        self
    }

    /// Enables or disables output verification and the cross-IR check
    /// (both on by default when installed).
    pub fn verify_output(mut self, on: bool) -> Self {
        self.verify_output = on;
        self
    }

    /// Installs a deterministic fault-injection plan; plans targeting
    /// this stage's name (or the given invocation index) force a panic,
    /// verifier failure, or budget blowup.
    pub fn with_fault_injection(mut self, plan: FaultPlan) -> Self {
        self.injection = Some(plan);
        self
    }

    /// Runs the stage body over `input`, appending one [`PassRun`] (and,
    /// on a contained fault, one [`Degradation`]) to `report`.
    ///
    /// `invocation` is the stage's invocation index in the surrounding
    /// pipeline (used for `#N` fault-injection targets and recorded on
    /// any `Degradation`). The body returns the lowered unit plus flat
    /// report stats.
    pub fn run<F>(
        &self,
        input: &mut A,
        report: &mut RunReport,
        invocation: usize,
        body: F,
    ) -> Result<StageOutcome<B>, RunError>
    where
        F: FnOnce(&mut A) -> Result<(B, Vec<(&'static str, i64)>), String>,
    {
        let recovering = self.policy != FaultPolicy::Abort;
        let injected = self
            .injection
            .as_ref()
            .filter(|plan| plan.fires(invocation, &self.name))
            .map(|plan| plan.kind);

        // Snapshot the input under recovering policies: the body may
        // mutate it (normalization) before faulting, and a faulted stage
        // must leave the input exactly as it found it.
        let mut snapshot_cost = None;
        let snapshot = if recovering {
            let t0 = Instant::now();
            let units = input.size_hint();
            let snap = input.clone();
            let cost = SnapshotCost {
                full: true,
                funcs_cloned: 0,
                funcs_reused: 0,
                units_cloned: units,
                time: t0.elapsed(),
            };
            report.snapshots.captures += 1;
            report.snapshots.full_clones += 1;
            report.snapshots.units_cloned += units;
            snapshot_cost = Some(cost);
            Some(snap)
        } else {
            None
        };

        // --- run the stage body ---------------------------------------
        let t0 = Instant::now();
        let name = self.name.clone();
        let exec = |input: &mut A| {
            if injected == Some(InjectKind::Panic) {
                panic!("fault injection: panic in stage `{name}` at invocation {invocation}");
            }
            body(input)
        };
        let result: BodyResult<B> = if recovering {
            catch_unwind(AssertUnwindSafe(|| exec(input))).map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string())
            })
        } else {
            // Abort: let panics propagate with their original backtrace.
            Ok(exec(input))
        };
        let time = t0.elapsed();

        // --- classify the outcome into (success, fault) ---------------
        let mut fault: Option<FaultCause> = None;
        let mut success: Option<(B, Vec<(&'static str, i64)>)> = None;
        match result {
            Err(panic_msg) => fault = Some(FaultCause::Panic(panic_msg)),
            Ok(Err(message)) => fault = Some(FaultCause::PassFailed(message)),
            Ok(Ok((out, stats))) => {
                let verify_msg = if injected == Some(InjectKind::VerifyFail) {
                    Some(format!(
                        "fault injection: forced verifier failure after stage `{}`",
                        self.name
                    ))
                } else if self.verify_output {
                    self.output_verifier
                        .as_ref()
                        .and_then(|v| v(&out).err())
                        .or_else(|| {
                            self.cross_check
                                .as_ref()
                                .and_then(|c| c(input, &out).err())
                                .map(|msg| format!("cross-IR check failed: {msg}"))
                        })
                } else {
                    None
                };
                if let Some(message) = verify_msg {
                    fault = Some(FaultCause::VerifyFailed(message));
                } else if let Some(v) = self.budget_violation(injected, time) {
                    fault = Some(FaultCause::Budget(v));
                } else {
                    success = Some((out, stats));
                }
            }
        }

        // --- fault handling -------------------------------------------
        if let Some(cause) = fault {
            if !recovering {
                return Err(match cause {
                    FaultCause::Panic(message) => {
                        unreachable!("panics are not caught under Abort: {message}")
                    }
                    FaultCause::PassFailed(message) => RunError::PassFailed {
                        pass: self.name.clone(),
                        error: crate::pass::PassError::msg(message),
                    },
                    FaultCause::VerifyFailed(message) => RunError::VerifyFailed {
                        pass: self.name.clone(),
                        message,
                    },
                    FaultCause::Budget(violation) => RunError::BudgetExceeded {
                        pass: self.name.clone(),
                        violation,
                    },
                });
            }

            // Roll the input back to its pre-stage state.
            if let Some(snap) = snapshot {
                *input = snap;
                report.snapshots.restores += 1;
            }
            let action = match self.policy {
                FaultPolicy::SkipPass => RecoveryAction::RolledBack,
                FaultPolicy::StopPipeline => RecoveryAction::Stopped,
                FaultPolicy::Abort => unreachable!("handled above"),
            };
            report.passes.push(PassRun {
                name: self.name.clone(),
                time,
                changed: false,
                stats: Vec::new(),
                fixpoint_iteration: None,
                annotations: vec![("degraded".into(), cause.to_string())],
                snapshot: snapshot_cost,
                profile: None,
            });
            report.degradations.push(Degradation {
                pass: self.name.clone(),
                invocation,
                cause,
                fixpoint_iteration: None,
                func_index: None,
                func: None,
                action,
            });
            // Nothing downstream can run without the stage's output.
            report.stopped_early = true;
            return Ok(StageOutcome::Degraded { action });
        }

        // --- success ---------------------------------------------------
        let (out, stats) = success.expect("no fault implies a successful outcome");
        report.passes.push(PassRun {
            name: self.name.clone(),
            time,
            changed: true,
            stats,
            fixpoint_iteration: None,
            annotations: Vec::new(),
            snapshot: snapshot_cost,
            profile: None,
        });
        Ok(StageOutcome::Lowered(out))
    }

    fn budget_violation(
        &self,
        injected: Option<InjectKind>,
        time: Duration,
    ) -> Option<BudgetViolation> {
        if injected == Some(InjectKind::BudgetBlowup) {
            return Some(BudgetViolation::PassTime {
                limit_ms: 0,
                actual_ms: (time.as_millis() as u64).max(1),
            });
        }
        if let Some(limit_ms) = self.budgets.max_pass_millis {
            if time > Duration::from_millis(limit_ms) {
                return Some(BudgetViolation::PassTime {
                    limit_ms,
                    actual_ms: (time.as_millis() as u64).max(1),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy source IR: a bag of numbers.
    #[derive(Clone, Debug, PartialEq)]
    struct Src {
        vals: Vec<i64>,
    }
    impl IrUnit for Src {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
        fn size_hint(&self) -> usize {
            self.vals.len()
        }
    }

    /// Toy target IR: the numbers, doubled.
    #[derive(Clone, Debug, PartialEq)]
    struct Dst {
        vals: Vec<i64>,
    }
    impl IrUnit for Dst {
        type FuncKey = usize;
        fn func_keys(&self) -> Vec<usize> {
            (0..self.vals.len()).collect()
        }
    }

    type DoubleResult = Result<(Dst, Vec<(&'static str, i64)>), String>;

    fn double(src: &mut Src) -> DoubleResult {
        let vals: Vec<i64> = src.vals.iter().map(|v| v * 2).collect();
        let n = vals.len() as i64;
        Ok((Dst { vals }, vec![("lowered", n)]))
    }

    #[test]
    fn success_appends_a_pass_run_and_returns_the_output() {
        let mut src = Src {
            vals: vec![1, 2, 3],
        };
        let mut report = RunReport::default();
        let stage = LowerStage::<Src, Dst>::new();
        let out = stage.run(&mut src, &mut report, 0, double).unwrap();
        match out {
            StageOutcome::Lowered(d) => assert_eq!(d.vals, vec![2, 4, 6]),
            other => panic!("expected Lowered, got {other:?}"),
        }
        assert_eq!(report.passes.len(), 1);
        let run = &report.passes[0];
        assert_eq!(run.name, "lower");
        assert!(run.changed);
        assert_eq!(run.stat("lowered"), Some(3));
        assert!(!report.stopped_early);
    }

    #[test]
    fn body_error_aborts_with_pass_failed() {
        let mut src = Src { vals: vec![1] };
        let mut report = RunReport::default();
        let stage = LowerStage::<Src, Dst>::new();
        let err = stage
            .run(&mut src, &mut report, 0, |_| Err("unsupported".into()))
            .unwrap_err();
        assert!(matches!(err, RunError::PassFailed { ref pass, .. } if pass == "lower"));
        assert!(report.passes.is_empty());
    }

    #[test]
    fn output_verifier_failure_aborts_with_verify_failed() {
        let mut src = Src { vals: vec![1] };
        let mut report = RunReport::default();
        let stage =
            LowerStage::<Src, Dst>::new().with_output_verifier(|_d: &Dst| Err("bad output".into()));
        let err = stage.run(&mut src, &mut report, 0, double).unwrap_err();
        assert!(
            matches!(err, RunError::VerifyFailed { ref message, .. } if message == "bad output")
        );
    }

    #[test]
    fn cross_check_failure_is_a_verify_fault() {
        let mut src = Src { vals: vec![1] };
        let mut report = RunReport::default();
        let stage = LowerStage::<Src, Dst>::new()
            .with_cross_check(|_a: &Src, _b: &Dst| Err("interp disagreement".into()));
        let err = stage.run(&mut src, &mut report, 0, double).unwrap_err();
        match err {
            RunError::VerifyFailed { message, .. } => {
                assert!(message.contains("cross-IR check failed"));
                assert!(message.contains("interp disagreement"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }

    #[test]
    fn panic_under_skip_rolls_back_and_degrades() {
        let mut src = Src { vals: vec![7, 8] };
        let before = src.clone();
        let mut report = RunReport::default();
        let stage = LowerStage::<Src, Dst>::new().on_fault(FaultPolicy::SkipPass);
        let out = stage
            .run(&mut src, &mut report, 2, |s: &mut Src| {
                s.vals.clear(); // corrupt the input, then die
                panic!("lowering landmine");
            })
            .unwrap();
        assert!(matches!(
            out,
            StageOutcome::Degraded {
                action: RecoveryAction::RolledBack
            }
        ));
        assert_eq!(src, before, "input rolled back to pre-stage state");
        assert_eq!(report.degradations.len(), 1);
        let d = &report.degradations[0];
        assert_eq!(d.pass, "lower");
        assert_eq!(d.invocation, 2);
        assert!(matches!(&d.cause, FaultCause::Panic(msg) if msg.contains("landmine")));
        assert!(report.stopped_early, "nothing can run past a dead stage");
        assert_eq!(report.snapshots.restores, 1);
        assert!(report.passes[0]
            .annotations
            .iter()
            .any(|(k, _)| k == "degraded"));
    }

    #[test]
    fn injected_faults_fire_by_stage_name() {
        for (plan, expect_cause) in [
            ("panic@lower", "panic"),
            ("verify@lower", "verify"),
            ("budget@lower", "budget"),
        ] {
            let mut src = Src { vals: vec![1] };
            let mut report = RunReport::default();
            let stage = LowerStage::<Src, Dst>::new()
                .on_fault(FaultPolicy::StopPipeline)
                .with_fault_injection(plan.parse().unwrap());
            let out = stage.run(&mut src, &mut report, 0, double).unwrap();
            assert!(
                matches!(
                    out,
                    StageOutcome::Degraded {
                        action: RecoveryAction::Stopped
                    }
                ),
                "{plan}"
            );
            let d = &report.degradations[0];
            let matched = match expect_cause {
                "panic" => matches!(d.cause, FaultCause::Panic(_)),
                "verify" => matches!(d.cause, FaultCause::VerifyFailed(_)),
                _ => matches!(d.cause, FaultCause::Budget(_)),
            };
            assert!(matched, "{plan}: {:?}", d.cause);
        }
    }

    #[test]
    fn injection_targeting_other_stage_does_not_fire() {
        let mut src = Src { vals: vec![1] };
        let mut report = RunReport::default();
        let stage = LowerStage::<Src, Dst>::new()
            .on_fault(FaultPolicy::SkipPass)
            .with_fault_injection("panic@dce".parse().unwrap());
        let out = stage.run(&mut src, &mut report, 0, double).unwrap();
        assert!(matches!(out, StageOutcome::Lowered(_)));
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn pass_time_budget_is_enforced() {
        let mut src = Src { vals: vec![1] };
        let mut report = RunReport::default();
        let stage =
            LowerStage::<Src, Dst>::new().with_budgets(Budgets::parse("pass-ms=0").unwrap());
        let err = stage
            .run(&mut src, &mut report, 0, |s: &mut Src| {
                std::thread::sleep(Duration::from_millis(5));
                double(s)
            })
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::BudgetExceeded {
                violation: BudgetViolation::PassTime { .. },
                ..
            }
        ));
    }
}
