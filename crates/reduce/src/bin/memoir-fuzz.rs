//! The `memoir-fuzz` crash-triage harness.
//!
//! ```text
//! memoir-fuzz run --seed 1 --iters 200 --out fuzz-out/
//! memoir-fuzz run --lower --seed 1 --iters 500
//! memoir-fuzz reduce fuzz-out/crash-1-17.repro
//! memoir-fuzz replay fuzz-out/crash-1-17.repro
//! ```
//!
//! `run` drives random MUT-op programs through random pipeline specs —
//! with `--lower`, on through the `lower` stage and a random low-level
//! IR pipeline — and writes every failure as a minimized, replayable
//! `.repro` artifact; `reduce` shrinks an existing artifact in place;
//! `replay` re-runs one exactly and reports whether the recorded failure
//! still reproduces.

use reduce::{
    random_case_config, random_ops, random_spec, reduce_case, run_case, Outcome, Repro, SplitMix64,
};
use std::process::ExitCode;

const USAGE: &str = "\
memoir-fuzz — fuzz the MEMOIR pass pipeline and triage crashes

USAGE:
    memoir-fuzz run [--seed N] [--iters N] [--max-ops N] [--out DIR] [--lower]
                    [--on-fault=abort|skip|stop] [--budget=LIST] [--inject=PLAN]
                    [--no-reduce]
    memoir-fuzz reduce FILE.repro
    memoir-fuzz replay FILE.repro

SUBCOMMANDS:
    run       fuzz: random op programs through random pipeline specs;
              every failure is delta-debugged (unless --no-reduce) and
              written to DIR as a replayable .repro artifact.
              Exits 1 if any crash was found.
    reduce    shrink an existing .repro in place (ops, pipeline steps,
              lir steps, budgets) and mark it `minimized: true`
    replay    re-run a .repro exactly; exits 0 if the recorded failure
              class reproduces, 1 if it does not

OPTIONS (run):
    --seed N              campaign seed (default 1)
    --iters N             number of cases (default 100)
    --max-ops N           op-sequence length bound (default 40)
    --out DIR             artifact directory (default fuzz-out)
    --lower               drive every case through the `lower` stage and a
                          random lir pipeline, with the four-way
                          differential oracle (MEMOIR interp, direct
                          lowering, lir-optimized module vs the Rust
                          oracle)
    --on-fault=POLICY     pin the fault policy for every case; by default
                          each case samples abort/skip/stop itself
    --budget=LIST         pin the budgets for every case (e.g.
                          growth=4.0,fixpoint=2); by default recovering
                          cases sample deterministic budget axes
    --inject=PLAN         seed a fault into every case, e.g. panic@dce
    --no-reduce           write raw artifacts with `minimized: false`
";

fn first_line(s: &str) -> String {
    s.lines().next().unwrap_or("").to_string()
}

struct RunArgs {
    seed: u64,
    iters: u64,
    max_ops: usize,
    out: String,
    lower: bool,
    policy: Option<passman::FaultPolicy>,
    budgets: Option<passman::Budgets>,
    inject: Option<passman::FaultPlan>,
    no_reduce: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut r = RunArgs {
        seed: 1,
        iters: 100,
        max_ops: 40,
        out: "fuzz-out".to_string(),
        lower: false,
        policy: None,
        budgets: None,
        inject: None,
        no_reduce: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = || {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag {
            "--seed" => r.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--iters" => r.iters = value()?.parse().map_err(|_| "bad --iters".to_string())?,
            "--max-ops" => r.max_ops = value()?.parse().map_err(|_| "bad --max-ops".to_string())?,
            "--out" => r.out = value()?,
            "--lower" => r.lower = true,
            "--on-fault" => r.policy = Some(value()?.parse()?),
            "--budget" => r.budgets = Some(passman::Budgets::parse(&value()?)?),
            "--inject" => r.inject = Some(value()?.parse()?),
            "--no-reduce" => r.no_reduce = true,
            other => return Err(format!("unknown `run` option `{other}`")),
        }
    }
    Ok(r)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let r = parse_run_args(args)?;
    std::fs::create_dir_all(&r.out).map_err(|e| format!("creating `{}`: {e}", r.out))?;

    let root = SplitMix64::new(r.seed);
    let mut crashes = 0u64;
    for case in 0..r.iters {
        let mut rng = root.split(case);
        let ops = random_ops(&mut rng, r.max_ops);
        let spec = random_spec(&mut rng);
        let mut cfg = random_case_config(&mut rng, r.lower);
        if let Some(p) = r.policy {
            cfg.policy = p;
        }
        if let Some(b) = r.budgets {
            cfg.budgets = b;
        }
        cfg.inject = r.inject.clone();
        let Outcome::Crash { detail, .. } = run_case(&ops, &spec, &cfg) else {
            continue;
        };
        crashes += 1;
        eprintln!("case {case}: {}", first_line(&detail));

        let (ops, spec, cfg, detail, minimized) = if r.no_reduce {
            (ops, spec, cfg, detail, false)
        } else {
            match reduce_case(&ops, &spec, &cfg) {
                Some((o, s, c, d)) => (o, s, c, d, true),
                None => (ops, spec, cfg, detail, false), // shrink lost the bug
            }
        };
        let repro = Repro {
            seed: r.seed,
            case,
            spec,
            lir_spec: cfg.lir_spec.clone(),
            policy: cfg.policy,
            budgets: cfg.budgets,
            inject: cfg.inject.clone(),
            minimized,
            failure: first_line(&detail),
            ops,
        };
        let path = format!("{}/crash-{}-{case}.repro", r.out, r.seed);
        std::fs::write(&path, repro.to_string()).map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!(
            "  -> {path} ({} ops, {} steps{}{})",
            repro.ops.len(),
            repro.spec.steps.len(),
            match &repro.lir_spec {
                Some(l) => format!(" + {} lir steps", l.steps.len()),
                None => String::new(),
            },
            if minimized {
                ", minimized"
            } else {
                ", NOT minimized"
            }
        );
    }
    eprintln!("{} case(s), {crashes} crash(es), seed {}", r.iters, r.seed);
    Ok(if crashes == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn load(path: &str) -> Result<Repro, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("reading `{path}`: {e}"))?
        .parse()
        .map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_reduce(path: &str) -> Result<ExitCode, String> {
    let mut repro = load(path)?;
    let cfg = repro.config();
    match reduce_case(&repro.ops, &repro.spec, &cfg) {
        None => {
            eprintln!("`{path}` does not reproduce; leaving it untouched");
            Ok(ExitCode::FAILURE)
        }
        Some((ops, spec, cfg, detail)) => {
            repro.ops = ops;
            repro.spec = spec;
            repro.lir_spec = cfg.lir_spec;
            repro.policy = cfg.policy;
            repro.budgets = cfg.budgets;
            repro.inject = cfg.inject;
            repro.failure = first_line(&detail);
            repro.minimized = true;
            std::fs::write(path, repro.to_string())
                .map_err(|e| format!("writing `{path}`: {e}"))?;
            eprintln!(
                "{path}: reduced to {} ops, {} pipeline steps ({})",
                repro.ops.len(),
                repro.spec.steps.len(),
                repro.failure
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_replay(path: &str) -> Result<ExitCode, String> {
    let repro = load(path)?;
    let out = run_case(&repro.ops, &repro.spec, &repro.config());
    let recorded_kind = repro.failure.split(':').next().unwrap_or("");
    match out {
        Outcome::Crash { kind, detail } => {
            println!("{}", first_line(&detail));
            if kind == recorded_kind {
                eprintln!("{path}: reproduces");
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "{path}: crashes, but as `{kind}` rather than the recorded `{recorded_kind}`"
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Outcome::Pass => {
            eprintln!("{path}: does not reproduce (pipeline passed)");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    // The harness catches pass panics by design; keep the default hook
    // from spraying a message + backtrace for every contained fault.
    std::panic::set_hook(Box::new(|_| {}));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        None | Some("-h") | Some("--help") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some("run") => cmd_run(&args[1..]),
        Some("reduce") if args.len() == 2 => cmd_reduce(&args[1]),
        Some("replay") if args.len() == 2 => cmd_replay(&args[1]),
        Some("reduce") | Some("replay") => Err("expected exactly one FILE.repro".to_string()),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("memoir-fuzz: error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
