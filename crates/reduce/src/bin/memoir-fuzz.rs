//! The `memoir-fuzz` crash-triage harness.
//!
//! ```text
//! memoir-fuzz run --seed 1 --iters 200 --out fuzz-out/
//! memoir-fuzz run --lower --objects --multi --probe --seed 1 --iters 800
//! memoir-fuzz reduce fuzz-out/crash-1-17.repro
//! memoir-fuzz replay fuzz-out/crash-1-17.repro
//! memoir-fuzz cli --seed 1 --iters 2000
//! ```
//!
//! `run` drives random whole-language programs (sequence/assoc ops,
//! object field traffic with `--objects`, helper functions with
//! `--multi`) through random pipeline specs — with `--lower`, on through
//! the `lower` stage and a random low-level IR pipeline — and writes
//! every failure as a minimized, replayable `.repro` artifact (format:
//! `docs/REPRO_FORMAT.md`); `reduce` shrinks an existing artifact in
//! place; `replay` re-runs one exactly and reports whether the recorded
//! failure still reproduces; `cli` fuzzes the binaries' own textual
//! argument surfaces for parser panics; `service` fuzzes the `memoird`
//! compile service — its job-stream parsers and randomized job batches
//! under fault injection (zero lost jobs, clean-vs-injected byte
//! identity, warm-vs-cold job-cache coherence).

use reduce::{
    fuzz_cli_case, fuzz_service_case, parse_run_args, random_case, random_case_config, random_spec,
    reduce_case_prog, run_case_prog, Outcome, Repro, SplitMix64,
};
use std::process::ExitCode;

const USAGE: &str = "\
memoir-fuzz — fuzz the MEMOIR pass pipeline and triage crashes

USAGE:
    memoir-fuzz run [--seed N] [--iters N] [--max-ops N] [--out DIR] [--lower]
                    [--objects] [--multi] [--probe]
                    [--on-fault=abort|skip|stop] [--budget=LIST] [--inject=PLAN]
                    [--service-fault=PLAN] [--sym] [--no-reduce]
    memoir-fuzz reduce FILE.repro
    memoir-fuzz replay FILE.repro
    memoir-fuzz cli [--seed N] [--iters N]
    memoir-fuzz service [--seed N] [--iters N]

SUBCOMMANDS:
    run       fuzz: random whole-language programs through random pipeline
              specs; every failure is delta-debugged (unless --no-reduce)
              and written to DIR as a replayable .repro artifact (see
              docs/REPRO_FORMAT.md). Exits 1 if any crash was found.
    reduce    shrink an existing .repro in place (helpers, ops, pipeline
              steps, lir steps, budgets) and mark it `minimized: true`
    replay    re-run a .repro exactly; exits 0 if the recorded failure
              class reproduces, 1 if it does not
    cli       fuzz the textual surfaces the binaries parse (--passes
              specs, --budget lists, --inject plans, .repro files, run
              argv) for panics and print/parse round-trip breaks.
              Exits 1 if any finding.
    service   fuzz the memoird compile service: job-line and job-fault
              parsers (panics, round-trip breaks), randomized job
              batches with sampled slow-job/worker-panic/poison-cache
              injection (zero lost jobs, clean-vs-injected byte
              identity, warm-vs-cold job-cache coherence), and the
              service-envelope case oracle. Exits 1 if any finding.

OPTIONS (run):
    --seed N              campaign seed (default 1)
    --iters N             number of cases (default 100)
    --max-ops N           op-sequence length bound per function (default 40)
    --out DIR             artifact directory (default fuzz-out)
    --lower               drive every case through the `lower` stage and a
                          random lir pipeline, with the four-way
                          differential oracle (MEMOIR interp, direct
                          lowering, lir-optimized module vs the Rust
                          oracle)
    --objects             include object types: field reads/writes and a
                          nested collection field in every generated main
    --multi               generate helper functions — collection-typed
                          by-ref parameters and scalar callees — called
                          from main
    --probe               probe every surviving function pre- vs post-opt
                          on synthesized typed argument vectors, and
                          cross-check the direct lowering on the same
                          seeds
    --on-fault=POLICY     pin the fault policy for every case; by default
                          each case samples abort/skip/stop itself
    --budget=LIST         pin the budgets for every case (e.g.
                          growth=4.0,fixpoint=2); by default recovering
                          cases sample deterministic budget axes
    --inject=PLAN         seed a fault into every case, e.g. panic@dce
    --service-fault=PLAN  also run every case through the one-job memoird
                          service envelope, clean vs under PLAN (e.g.
                          worker-panic@0) — outputs must not diverge
    --sym                 also run every passing case through the bounded
                          symbolic oracle: each function's path-set
                          prediction must match the concrete interpreter
                          (sym-unsound) and pre-opt must prove equivalent
                          to post-opt (sym-diverge on a confirmed witness)
    --no-reduce           write raw artifacts with `minimized: false`
";

fn first_line(s: &str) -> String {
    s.lines().next().unwrap_or("").to_string()
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let r = parse_run_args(args)?;
    std::fs::create_dir_all(&r.out).map_err(|e| format!("creating `{}`: {e}", r.out))?;

    let root = SplitMix64::new(r.seed);
    let mut crashes = 0u64;
    for case in 0..r.iters {
        let mut rng = root.split(case);
        let prog = random_case(&mut rng, r.max_ops, r.dims);
        let spec = random_spec(&mut rng);
        let mut cfg = random_case_config(&mut rng, r.lower);
        if r.probe {
            cfg.probe_seed = Some(rng.next_u64());
        }
        if let Some(p) = r.policy {
            cfg.policy = p;
        }
        if let Some(b) = r.budgets {
            cfg.budgets = b;
        }
        cfg.inject = r.inject.clone();
        cfg.service_fault = r.service_fault.clone();
        cfg.sym |= r.sym;
        let Outcome::Crash { detail, .. } = run_case_prog(&prog, &spec, &cfg) else {
            continue;
        };
        crashes += 1;
        eprintln!("case {case}: {}", first_line(&detail));

        let (prog, spec, cfg, detail, minimized) = if r.no_reduce {
            (prog, spec, cfg, detail, false)
        } else {
            match reduce_case_prog(&prog, &spec, &cfg) {
                Some((p, s, c, d)) => (p, s, c, d, true),
                None => (prog, spec, cfg, detail, false), // shrink lost the bug
            }
        };
        let repro = Repro {
            seed: r.seed,
            case,
            spec,
            lir_spec: cfg.lir_spec.clone(),
            adaptive: cfg.adaptive,
            policy: cfg.policy,
            budgets: cfg.budgets,
            inject: cfg.inject.clone(),
            probe_seed: cfg.probe_seed,
            cache_check: cfg.cache_check,
            service_fault: cfg.service_fault.clone(),
            sym: cfg.sym,
            minimized,
            failure: first_line(&detail),
            prog,
        };
        let path = format!("{}/crash-{}-{case}.repro", r.out, r.seed);
        std::fs::write(&path, repro.to_string()).map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!(
            "  -> {path} ({} ops + {} helpers, {} steps{}{})",
            repro.prog.main.len(),
            repro.prog.helpers.len(),
            repro.spec.steps.len(),
            match &repro.lir_spec {
                Some(l) => format!(" + {} lir steps", l.steps.len()),
                None => String::new(),
            },
            if minimized {
                ", minimized"
            } else {
                ", NOT minimized"
            }
        );
    }
    let (proved, probed, skipped) = reduce::cross_check_totals();
    if proved + probed + skipped > 0 {
        eprintln!(
            "lower cross-check: {proved} function(s) proved probe-free, {probed} probed, \
             {skipped} skipped"
        );
    }
    eprintln!("{} case(s), {crashes} crash(es), seed {}", r.iters, r.seed);
    Ok(if crashes == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Shared driver for the finding-based campaigns (`cli`, `service`):
/// parses `--seed`/`--iters`, runs `fuzz` per split-off case RNG, and
/// exits 1 if anything was found.
fn cmd_findings(
    name: &str,
    default_iters: u64,
    args: &[String],
    fuzz: impl Fn(&mut SplitMix64) -> Option<reduce::CliCrash>,
) -> Result<ExitCode, String> {
    let mut seed = 1u64;
    let mut iters = default_iters;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = || {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag {
            "--seed" => seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--iters" => iters = value()?.parse().map_err(|_| "bad --iters".to_string())?,
            other => return Err(format!("unknown `{name}` option `{other}`")),
        }
    }

    let root = SplitMix64::new(seed);
    let mut findings = 0u64;
    for case in 0..iters {
        let mut rng = root.split(case);
        if let Some(c) = fuzz(&mut rng) {
            findings += 1;
            eprintln!("case {case}: [{}] {}", c.surface, c.message);
            eprintln!("  input: {:?}", c.input);
        }
    }
    eprintln!("{iters} case(s), {findings} finding(s), seed {seed}");
    Ok(if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn load(path: &str) -> Result<Repro, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("reading `{path}`: {e}"))?
        .parse()
        .map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_reduce(path: &str) -> Result<ExitCode, String> {
    let mut repro = load(path)?;
    let cfg = repro.config();
    match reduce_case_prog(&repro.prog, &repro.spec, &cfg) {
        None => {
            eprintln!("`{path}` does not reproduce; leaving it untouched");
            Ok(ExitCode::FAILURE)
        }
        Some((prog, spec, cfg, detail)) => {
            repro.prog = prog;
            repro.spec = spec;
            repro.lir_spec = cfg.lir_spec;
            repro.adaptive = cfg.adaptive;
            repro.policy = cfg.policy;
            repro.budgets = cfg.budgets;
            repro.inject = cfg.inject;
            repro.probe_seed = cfg.probe_seed;
            repro.cache_check = cfg.cache_check;
            repro.service_fault = cfg.service_fault;
            repro.sym = cfg.sym;
            repro.failure = first_line(&detail);
            repro.minimized = true;
            std::fs::write(path, repro.to_string())
                .map_err(|e| format!("writing `{path}`: {e}"))?;
            eprintln!(
                "{path}: reduced to {} ops + {} helpers, {} pipeline steps ({})",
                repro.prog.main.len(),
                repro.prog.helpers.len(),
                repro.spec.steps.len(),
                repro.failure
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_replay(path: &str) -> Result<ExitCode, String> {
    let repro = load(path)?;
    let out = run_case_prog(&repro.prog, &repro.spec, &repro.config());
    let recorded_kind = repro.failure.split(':').next().unwrap_or("");
    match out {
        Outcome::Crash { kind, detail } => {
            println!("{}", first_line(&detail));
            if kind == recorded_kind {
                eprintln!("{path}: reproduces");
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "{path}: crashes, but as `{kind}` rather than the recorded `{recorded_kind}`"
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Outcome::Pass => {
            eprintln!("{path}: does not reproduce (pipeline passed)");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    // The harness catches pass panics by design; keep the default hook
    // from spraying a message + backtrace for every contained fault.
    std::panic::set_hook(Box::new(|_| {}));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        None | Some("-h") | Some("--help") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some("run") => cmd_run(&args[1..]),
        Some("cli") => cmd_findings("cli", 1000, &args[1..], fuzz_cli_case),
        // Service cases run several full service batches each, so the
        // default campaign is much shorter than `cli`'s.
        Some("service") => cmd_findings("service", 40, &args[1..], fuzz_service_case),
        Some("reduce") if args.len() == 2 => cmd_reduce(&args[1]),
        Some("replay") if args.len() == 2 => cmd_replay(&args[1]),
        Some("reduce") | Some("replay") => Err("expected exactly one FILE.repro".to_string()),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("memoir-fuzz: error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
