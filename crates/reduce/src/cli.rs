//! The `memoir-fuzz` argument surface, plus a fuzzer for every textual
//! surface the `memoir-opt`/`memoir-fuzz` binaries parse.
//!
//! The binaries accept user-controlled text in several places — pipeline
//! spec strings (`--passes`), budget lists (`--budget`), fault-injection
//! plans (`--inject`), fault policies (`--on-fault`), whole `.repro`
//! files, and `memoir-fuzz run`'s own argv. A malformed input must come
//! back as `Err`, never a panic, and anything a parser *accepts* must
//! round-trip through its `Display` form. [`fuzz_cli_case`] throws
//! grammar-aware garbage at all of them; `memoir-fuzz cli` is the
//! campaign driver around it.

use crate::genprog::CaseDims;
use crate::repro::Repro;
use crate::rng::SplitMix64;
use passman::{Budgets, FaultPlan, FaultPolicy, PipelineSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parsed options of `memoir-fuzz run` (public so the CLI fuzzer can
/// drive the argv parser itself).
pub struct RunArgs {
    /// Campaign seed.
    pub seed: u64,
    /// Number of cases.
    pub iters: u64,
    /// Op-sequence length bound per function.
    pub max_ops: usize,
    /// Artifact directory.
    pub out: String,
    /// Drive every case through the `lower` stage + a random lir spec.
    pub lower: bool,
    /// Generation dimensions (`--objects`, `--multi`).
    pub dims: CaseDims,
    /// Probe preserved functions on synthesized arguments (`--probe`).
    pub probe: bool,
    /// Pin the fault policy for every case.
    pub policy: Option<FaultPolicy>,
    /// Pin the budgets for every case.
    pub budgets: Option<Budgets>,
    /// Seed a fault into every case.
    pub inject: Option<FaultPlan>,
    /// Run every case through the service-envelope differential oracle
    /// under this `memoird` job-fault plan (`--service-fault`).
    pub service_fault: Option<memoird::JobFaultPlan>,
    /// Run every passing case through the symbolic oracle (`--sym`; the
    /// `sym-diverge`/`sym-unsound` crash classes).
    pub sym: bool,
    /// Write raw artifacts without reducing.
    pub no_reduce: bool,
}

/// Parses the argv of `memoir-fuzz run` (everything after the
/// subcommand).
pub fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut r = RunArgs {
        seed: 1,
        iters: 100,
        max_ops: 40,
        out: "fuzz-out".to_string(),
        lower: false,
        dims: CaseDims {
            objects: false,
            multi: false,
        },
        probe: false,
        policy: None,
        budgets: None,
        inject: None,
        service_fault: None,
        sym: false,
        no_reduce: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = || {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag {
            "--seed" => r.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--iters" => r.iters = value()?.parse().map_err(|_| "bad --iters".to_string())?,
            "--max-ops" => r.max_ops = value()?.parse().map_err(|_| "bad --max-ops".to_string())?,
            "--out" => r.out = value()?,
            "--lower" => r.lower = true,
            "--objects" => r.dims.objects = true,
            "--multi" => r.dims.multi = true,
            "--probe" => r.probe = true,
            "--on-fault" => r.policy = Some(value()?.parse()?),
            "--budget" => r.budgets = Some(Budgets::parse(&value()?)?),
            "--inject" => r.inject = Some(value()?.parse()?),
            "--service-fault" => r.service_fault = Some(value()?.parse()?),
            "--sym" => r.sym = true,
            "--no-reduce" => r.no_reduce = true,
            other => return Err(format!("unknown `run` option `{other}`")),
        }
    }
    Ok(r)
}

/// One CLI-surface finding: the parser that misbehaved, the input that
/// triggered it, and what went wrong.
#[derive(Clone, Debug)]
pub struct CliCrash {
    /// Which textual surface (`spec`, `budget`, `inject`, `policy`,
    /// `repro`, `run-args`).
    pub surface: &'static str,
    /// The offending input, verbatim.
    pub input: String,
    /// Panic message or round-trip mismatch description.
    pub message: String,
}

const SPEC_TOKENS: &[&str] = &[
    "ssa-construct",
    "ssa-destruct",
    "constprop",
    "simplify",
    "dce",
    "dee",
    "dee-strict",
    "dfe",
    "fe",
    "rie",
    "key-fold",
    "copyfold",
    "sink",
    "lower",
    "mem2reg",
    "constfold",
    "gvn",
    "fixpoint",
    "(",
    ")",
    ",",
    "<",
    ">",
    "=",
    "max",
    "max-ms",
    "max-growth",
    "no-cross-check",
    "0",
    "3",
    "4.0",
    "-1",
    "18446744073709551615",
    "",
    " ",
    "fixpoint<max=2>(",
    "<<",
    "héllo",
    "\t",
    "\u{0}",
];

const BUDGET_TOKENS: &[&str] = &[
    "pass-ms",
    "pipeline-ms",
    "growth",
    "fixpoint",
    "=",
    ",",
    "500",
    "4.0",
    "-3",
    "nan",
    "inf",
    "1e999",
    "",
    " ",
    "=,=",
    "growth=",
];

const INJECT_TOKENS: &[&str] = &[
    "panic", "verify", "budget", "@", "#", "%", "dce", "dee", "lower", "gvn", "*", "2", "-1", "",
    " ", "@@", "#%",
];

const ARG_TOKENS: &[&str] = &[
    "--seed",
    "--iters",
    "--max-ops",
    "--out",
    "--lower",
    "--objects",
    "--multi",
    "--probe",
    "--on-fault",
    "--budget",
    "--inject",
    "--service-fault",
    "--sym",
    "--no-reduce",
    "--seed=abc",
    "worker-panic@0",
    "--iters=",
    "=",
    "7",
    "skip",
    "panic@dce",
    "growth=2.0",
    "--unknown",
    "",
];

pub(crate) fn soup(rng: &mut SplitMix64, tokens: &[&str], max_len: usize) -> String {
    let n = rng.index(max_len.max(1));
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(tokens[rng.index(tokens.len())]);
    }
    s
}

fn argv_soup(rng: &mut SplitMix64) -> Vec<String> {
    let n = rng.index(8);
    (0..n)
        .map(|_| ARG_TOKENS[rng.index(ARG_TOKENS.len())].to_string())
        .collect()
}

/// A syntactically plausible `.repro` file: a valid skeleton with
/// random lines mutated, duplicated, or dropped.
fn repro_soup(rng: &mut SplitMix64) -> String {
    let base = "memoir-fuzz repro v2\nseed: 1\ncase: 0\nspec: ssa-construct,dce,ssa-destruct\n\
                lir-spec: gvn\nadaptive: true\npolicy: skip\nbudget: growth=4.0\ninject: panic@dce\n\
                probe-seed: 9\nsym: true\nminimized: false\nfailure: panic: x\nops:\n  push 3\n\
                  obj-write 0 1 -2\nhelper:\n  assoc-insert 1 2\nhelper-scalar: 3 -1\n";
    let mut lines: Vec<String> = base.lines().map(String::from).collect();
    for _ in 0..rng.index(6) {
        let i = rng.index(lines.len());
        match rng.below(4) {
            0 => {
                lines.remove(i);
            }
            1 => {
                let dup = lines[i].clone();
                lines.insert(i, dup);
            }
            2 => {
                // Clobber the line with token soup from a random grammar.
                lines[i] = soup(rng, SPEC_TOKENS, 6);
            }
            _ => {
                // Flip one byte to a printable-ish random one.
                let mut bytes = lines[i].clone().into_bytes();
                if !bytes.is_empty() {
                    let j = rng.index(bytes.len());
                    bytes[j] = (rng.below(95) + 32) as u8;
                }
                lines[i] = String::from_utf8_lossy(&bytes).into_owned();
            }
        }
        if lines.is_empty() {
            break;
        }
    }
    let mut s = lines.join("\n");
    if rng.chance(1, 4) {
        let mut cut = rng.index(s.len().max(1));
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
    s
}

/// Checks one parser on one input: it must not panic, and if it accepts
/// the input, its `Display` form must reparse to an equal value
/// (`parse . print = id` on the accepted set).
pub(crate) fn check<T, P, D>(
    surface: &'static str,
    input: &str,
    parse: P,
    display: D,
) -> Option<CliCrash>
where
    T: PartialEq,
    P: Fn(&str) -> Option<T> + std::panic::RefUnwindSafe,
    D: Fn(&T) -> String,
{
    let crash = |message: String| {
        Some(CliCrash {
            surface,
            input: input.to_string(),
            message,
        })
    };
    match catch_unwind(AssertUnwindSafe(|| parse(input))) {
        Err(payload) => crash(format!("panic: {}", crate::panic_text(payload))),
        Ok(None) => None, // rejected cleanly
        Ok(Some(v)) => {
            let printed = display(&v);
            match catch_unwind(AssertUnwindSafe(|| parse(&printed))) {
                Err(payload) => crash(format!(
                    "accepted, but its printed form `{printed}` panics the parser: {}",
                    crate::panic_text(payload)
                )),
                Ok(None) => crash(format!(
                    "accepted, but its printed form `{printed}` is rejected"
                )),
                Ok(Some(v2)) if v2 != v => {
                    crash(format!("printed form `{printed}` reparses differently"))
                }
                Ok(Some(_)) => None,
            }
        }
    }
}

/// Runs one CLI-fuzz case: throws grammar-aware token soup at every
/// textual surface the binaries parse. Returns the first finding, if
/// any.
pub fn fuzz_cli_case(rng: &mut SplitMix64) -> Option<CliCrash> {
    let spec_input = soup(rng, SPEC_TOKENS, 12);
    if let Some(c) = check(
        "spec",
        &spec_input,
        |s| PipelineSpec::parse(s).ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    // Accepted specs must also survive the lowered-pipeline splitter
    // (the `--lower` path of memoir-opt).
    if let Ok(spec) = PipelineSpec::parse(&spec_input) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            let _ = memoir_opt::lowering::split_lowered_spec(&spec);
        })) {
            return Some(CliCrash {
                surface: "spec",
                input: spec_input,
                message: format!(
                    "split_lowered_spec panicked: {}",
                    crate::panic_text(payload)
                ),
            });
        }
    }

    if let Some(c) = check(
        "budget",
        &soup(rng, BUDGET_TOKENS, 8),
        |s| Budgets::parse(s).ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    if let Some(c) = check(
        "inject",
        &soup(rng, INJECT_TOKENS, 6),
        |s| s.parse::<FaultPlan>().ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    if let Some(c) = check(
        "policy",
        &soup(rng, INJECT_TOKENS, 3),
        |s| s.parse::<FaultPolicy>().ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    if let Some(c) = check(
        "repro",
        &repro_soup(rng),
        |s| s.parse::<Repro>().ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }

    let argv = argv_soup(rng);
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse_run_args(&argv);
    })) {
        return Some(CliCrash {
            surface: "run-args",
            input: argv.join(" "),
            message: format!("panic: {}", crate::panic_text(payload)),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_args_parse_the_documented_surface() {
        let args: Vec<String> = [
            "--seed",
            "9",
            "--iters=50",
            "--max-ops",
            "12",
            "--lower",
            "--objects",
            "--multi",
            "--probe",
            "--on-fault=skip",
            "--budget=growth=4.0",
            "--inject",
            "panic@dce",
            "--service-fault=worker-panic@0",
            "--sym",
            "--no-reduce",
            "--out",
            "artifacts",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let r = parse_run_args(&args).unwrap();
        assert_eq!(r.seed, 9);
        assert_eq!(r.iters, 50);
        assert_eq!(r.max_ops, 12);
        assert!(r.lower && r.dims.objects && r.dims.multi && r.probe && r.no_reduce);
        assert_eq!(r.policy, Some(FaultPolicy::SkipPass));
        assert!(r.budgets.is_some() && r.inject.is_some());
        assert_eq!(
            r.service_fault,
            Some("worker-panic@0".parse().unwrap()),
            "--service-fault should parse as a memoird job-fault plan"
        );
        assert!(r.sym, "--sym should turn on the symbolic-oracle axis");
        assert_eq!(r.out, "artifacts");

        assert!(parse_run_args(&["--seed".to_string()]).is_err());
        assert!(parse_run_args(&["--what".to_string()]).is_err());
    }

    #[test]
    fn cli_surfaces_survive_a_smoke_campaign() {
        let mut rng = SplitMix64::new(0xc11);
        for case in 0..300 {
            if let Some(c) = fuzz_cli_case(&mut rng) {
                panic!(
                    "case {case}: [{}] {}\ninput: {}",
                    c.surface, c.message, c.input
                );
            }
        }
    }
}
