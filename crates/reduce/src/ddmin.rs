//! Delta debugging (Zeller & Hildebrandt's ddmin, complement phase).
//!
//! Shrinks a failing input to a *1-minimal* subsequence: removing any
//! single remaining chunk of the current granularity makes the failure
//! disappear. The predicate is re-run on candidates only, so an
//! expensive `fails` (a whole pipeline execution) is called
//! O(n log n) times in the typical case.

/// Minimizes `input` against `fails` (which must return `true` for the
/// failing input itself; if it does not, the input is returned as-is —
/// an unreproducible failure should be reported, not silently shrunk).
pub fn ddmin<T: Clone>(input: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = input.to_vec();
    if cur.is_empty() || !fails(&cur) {
        return cur;
    }
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            // The complement of cur[start..end].
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                n = (n - 1).max(2);
                reduced = true;
                start = 0; // restart the sweep at the new, smaller input
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk <= 1 {
                break; // 1-minimal at granularity 1
            }
            n = (n * 2).min(cur.len());
        }
    }
    // A failing singleton may still shrink to empty if the failure does
    // not depend on the input at all.
    if cur.len() == 1 && fails(&[]) {
        cur.clear();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_single_culprit() {
        let input: Vec<u32> = (0..64).collect();
        let out = ddmin(&input, |xs| xs.contains(&47));
        assert_eq!(out, vec![47]);
    }

    #[test]
    fn finds_a_scattered_pair() {
        let input: Vec<u32> = (0..32).collect();
        let out = ddmin(&input, |xs| xs.contains(&3) && xs.contains(&29));
        assert_eq!(out, vec![3, 29]);
    }

    #[test]
    fn order_dependent_failure_keeps_order() {
        // Fails only when 7 appears before 2.
        let input: Vec<u32> = vec![5, 7, 9, 1, 2, 8];
        let out = ddmin(&input, |xs| {
            let a = xs.iter().position(|&x| x == 7);
            let b = xs.iter().position(|&x| x == 2);
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(out, vec![7, 2]);
    }

    #[test]
    fn unreproducible_input_is_returned_unchanged() {
        let input = vec![1, 2, 3];
        let out = ddmin(&input, |_| false);
        assert_eq!(out, input);
    }

    #[test]
    fn unconditional_failure_shrinks_to_empty() {
        let input = vec![1, 2, 3, 4, 5];
        let out = ddmin(&input, |_| true);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn counts_predicate_calls_reasonably() {
        let input: Vec<u32> = (0..128).collect();
        let mut calls = 0usize;
        let out = ddmin(&input, |xs| {
            calls += 1;
            xs.contains(&100)
        });
        assert_eq!(out, vec![100]);
        assert!(calls < 2000, "ddmin ran the oracle {calls} times");
    }
}
