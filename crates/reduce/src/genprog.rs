//! Random MUT-op programs with a built-in oracle, over the whole MEMOIR
//! language surface.
//!
//! This is the program generator of `tests/pipeline_differential.rs`,
//! promoted to a library so the fuzz harness, the reducer, and the
//! property tests all draw from the same distribution. A generated case
//! ([`CaseProgram`]) is:
//!
//! - a straight-line prefix of sequence mutations (push/write/insert/
//!   remove/swap/remove-range), associative-array mutations
//!   (assoc-insert/remove/has/keys over a small key universe), and —
//!   in the object dimension — field reads/writes over a small pool of
//!   objects of a generated struct type `Pt { a, b, sink, tags: Seq }`
//!   (`sink` is written but never read, so dead-field elimination has
//!   something to eliminate; `tags` nests a collection inside a field);
//! - optionally (the multi-function dimension) a list of helper
//!   functions called in order from `main`: *ops helpers* take the
//!   sequence and assoc **by reference** plus a scalar accumulator and
//!   apply their own op list (fuzzing `ARGφ`/`RETφ` construction and
//!   destruction, call lowering, and the call-graph/purity/escape
//!   analyses), and *scalar helpers* are branchy pure arithmetic
//!   (probe-able across IRs by the typed-argument synthesis in
//!   `memoir-lower::validate`);
//! - fold-loop epilogues over every live collection, with a plain-Rust
//!   oracle computing the expected result alongside.
//!
//! Build-time index clamping and the oracle share one resolution step
//! ([`Op`] → `Action`), so the generated IR and the oracle cannot drift.

use crate::harness::CaseConfig;
use crate::rng::SplitMix64;
use memoir_ir::{
    CmpOp, Field, Form, FuncId, FunctionBuilder, Module, ModuleBuilder, ObjTypeId, Type,
};
use passman::{Budgets, FaultPolicy};
use std::fmt;
use std::str::FromStr;

/// One collection mutation in the generated program. Sequence indices are
/// reduced modulo the current length at build time, assoc keys modulo a
/// small key universe, and object slots/fields modulo the pool, so any
/// byte values are valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Append a value.
    Push(i8),
    /// Overwrite the element at index `i % len`.
    Write(u8, i8),
    /// Insert at index `i % (len + 1)`.
    InsertAt(u8, i8),
    /// Remove the element at index `i % len`.
    Remove(u8),
    /// Swap the elements at two (distinct-after-mod) indices.
    SwapElems(u8, u8),
    /// Remove the half-open range between two indices.
    RemoveRange(u8, u8),
    /// Insert (or overwrite) key `k % 16` in the assoc.
    AssocInsert(u8, i8),
    /// Remove key `k % 16` from the assoc (emitted only when present —
    /// removal of a missing key traps).
    AssocRemove(u8),
    /// Probe key `k % 16` and fold the boolean into the result
    /// (position-weighted, so reorderings are observable).
    AssocHas(u8),
    /// Take the key-sequence size and fold it into the result
    /// (position-weighted).
    AssocKeys,
    /// Write field `f % 3` (`a`/`b`/`sink`) of object `slot % OBJ_SLOTS`.
    ObjWrite(u8, u8, i8),
    /// Read field `f % 2` (`a`/`b`) of object `slot % OBJ_SLOTS` and fold
    /// it into the result (position-weighted).
    ObjRead(u8, u8),
    /// Push onto the `tags` sequence nested in a field of object
    /// `slot % OBJ_SLOTS` (re-reads the field each time).
    ObjTagPush(u8, i8),
    /// Write field `f % 2` (`u`/`v`) of the `Inner` object linked from
    /// field `link` of object `slot % OBJ_SLOTS` (one level of object
    /// nesting: a field read chained into a field write).
    LinkWrite(u8, u8, i8),
    /// Read field `f % 2` of the linked `Inner` of object
    /// `slot % OBJ_SLOTS` and fold it in (position-weighted).
    LinkRead(u8, u8),
    /// Re-link object `slot % OBJ_SLOTS` to a freshly allocated
    /// `Inner { u: value, v: old.u }` — the old inner's `u` flows through
    /// the replacement, then the old object becomes garbage.
    LinkNew(u8, i8),
    /// Push a *reference* to pool object `slot % OBJ_SLOTS` onto the
    /// shared doc sequence (`Seq<&Pt>`): the pool and the sequence now
    /// alias.
    DocPush(u8),
    /// Write field `f % 3` (`a`/`b`/`sink`) of the object referenced at
    /// `docs[i % len]` — a store through a collection-held alias of the
    /// pool.
    DocWrite(u8, u8, i8),
    /// Read field `f % 2` of the object referenced at `docs[i % len]`
    /// and fold it in (position-weighted).
    DocRead(u8, u8),
    /// Insert a reference to pool object `slot % OBJ_SLOTS` into the doc
    /// assoc (`Assoc<i64, &Pt>`) at key `k % 16`.
    DocAssocInsert(u8, u8),
    /// If key `k % 16` is present in the doc assoc, read field `f % 2`
    /// of the referenced object and fold it in (position-weighted;
    /// emitted only when present — reading a missing key traps).
    DocAssocRead(u8, u8),
}

/// Assoc keys are drawn from `0..ASSOC_KEYS` so that inserts, removes and
/// probes collide often enough to exercise overwrite and miss paths.
pub const ASSOC_KEYS: u8 = 16;

/// Size of the object pool in the object dimension.
pub const OBJ_SLOTS: u8 = 2;

/// `Pt` field indices: `a`, `b`, `sink` (write-only — dead-field
/// elimination bait), `tags` (a nested `Seq<i64>`), `link` (a nested
/// `&Inner` — one level of object-in-object nesting).
const F_A: u32 = 0;
const F_B: u32 = 1;
const F_SINK: u32 = 2;
const F_TAGS: u32 = 3;
const F_LINK: u32 = 4;

/// `Inner` field indices: `u`, `v`.
const I_U: u32 = 0;
const I_V: u32 = 1;

impl Op {
    /// Whether this op touches the object pool (the object dimension).
    pub fn is_obj(&self) -> bool {
        matches!(
            self,
            Op::ObjWrite(..)
                | Op::ObjRead(..)
                | Op::ObjTagPush(..)
                | Op::LinkWrite(..)
                | Op::LinkRead(..)
                | Op::LinkNew(..)
                | Op::DocPush(..)
                | Op::DocWrite(..)
                | Op::DocRead(..)
                | Op::DocAssocInsert(..)
                | Op::DocAssocRead(..)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Push(v) => write!(f, "push {v}"),
            Op::Write(i, v) => write!(f, "write {i} {v}"),
            Op::InsertAt(i, v) => write!(f, "insert {i} {v}"),
            Op::Remove(i) => write!(f, "remove {i}"),
            Op::SwapElems(a, b) => write!(f, "swap {a} {b}"),
            Op::RemoveRange(a, b) => write!(f, "remove-range {a} {b}"),
            Op::AssocInsert(k, v) => write!(f, "assoc-insert {k} {v}"),
            Op::AssocRemove(k) => write!(f, "assoc-remove {k}"),
            Op::AssocHas(k) => write!(f, "assoc-has {k}"),
            Op::AssocKeys => write!(f, "assoc-keys"),
            Op::ObjWrite(s, fl, v) => write!(f, "obj-write {s} {fl} {v}"),
            Op::ObjRead(s, fl) => write!(f, "obj-read {s} {fl}"),
            Op::ObjTagPush(s, v) => write!(f, "obj-tag-push {s} {v}"),
            Op::LinkWrite(s, fl, v) => write!(f, "obj-link-write {s} {fl} {v}"),
            Op::LinkRead(s, fl) => write!(f, "obj-link-read {s} {fl}"),
            Op::LinkNew(s, v) => write!(f, "obj-link-new {s} {v}"),
            Op::DocPush(s) => write!(f, "doc-push {s}"),
            Op::DocWrite(i, fl, v) => write!(f, "doc-write {i} {fl} {v}"),
            Op::DocRead(i, fl) => write!(f, "doc-read {i} {fl}"),
            Op::DocAssocInsert(k, s) => write!(f, "doc-assoc-insert {k} {s}"),
            Op::DocAssocRead(k, fl) => write!(f, "doc-assoc-read {k} {fl}"),
        }
    }
}

impl FromStr for Op {
    type Err = String;

    fn from_str(s: &str) -> Result<Op, String> {
        let mut it = s.split_whitespace();
        let head = it.next().ok_or("empty op")?;
        let mut arg = |name: &str| -> Result<i64, String> {
            it.next()
                .ok_or_else(|| format!("op `{head}` is missing its {name} argument"))?
                .parse::<i64>()
                .map_err(|_| format!("op `{s}` has a bad {name} argument"))
        };
        let op = match head {
            "push" => Op::Push(arg("value")? as i8),
            "write" => Op::Write(arg("index")? as u8, arg("value")? as i8),
            "insert" => Op::InsertAt(arg("index")? as u8, arg("value")? as i8),
            "remove" => Op::Remove(arg("index")? as u8),
            "swap" => Op::SwapElems(arg("index")? as u8, arg("index")? as u8),
            "remove-range" => Op::RemoveRange(arg("index")? as u8, arg("index")? as u8),
            "assoc-insert" => Op::AssocInsert(arg("key")? as u8, arg("value")? as i8),
            "assoc-remove" => Op::AssocRemove(arg("key")? as u8),
            "assoc-has" => Op::AssocHas(arg("key")? as u8),
            "assoc-keys" => Op::AssocKeys,
            "obj-write" => {
                Op::ObjWrite(arg("slot")? as u8, arg("field")? as u8, arg("value")? as i8)
            }
            "obj-read" => Op::ObjRead(arg("slot")? as u8, arg("field")? as u8),
            "obj-tag-push" => Op::ObjTagPush(arg("slot")? as u8, arg("value")? as i8),
            "obj-link-write" => {
                Op::LinkWrite(arg("slot")? as u8, arg("field")? as u8, arg("value")? as i8)
            }
            "obj-link-read" => Op::LinkRead(arg("slot")? as u8, arg("field")? as u8),
            "obj-link-new" => Op::LinkNew(arg("slot")? as u8, arg("value")? as i8),
            "doc-push" => Op::DocPush(arg("slot")? as u8),
            "doc-write" => Op::DocWrite(
                arg("index")? as u8,
                arg("field")? as u8,
                arg("value")? as i8,
            ),
            "doc-read" => Op::DocRead(arg("index")? as u8, arg("field")? as u8),
            "doc-assoc-insert" => Op::DocAssocInsert(arg("key")? as u8, arg("slot")? as u8),
            "doc-assoc-read" => Op::DocAssocRead(arg("key")? as u8, arg("field")? as u8),
            other => return Err(format!("unknown op `{other}`")),
        };
        if it.next().is_some() {
            return Err(format!("op `{s}` has trailing arguments"));
        }
        Ok(op)
    }
}

/// A helper function callable from `main` in a multi-function case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Helper {
    /// `fn helperK(s: &Seq<i64>, a: &Assoc<i64,i64>, x: i64) -> i64`:
    /// applies its op list to the caller's collections (by reference) and
    /// returns `x + its own probe/fold contributions`. Object ops are not
    /// valid here and are skipped at build time (the object pool is local
    /// to `main`).
    Ops(Vec<Op>),
    /// `fn helperK(x: i64, y: i64) -> i64`: branchy pure scalar
    /// arithmetic built from two constants —
    /// `if x < y { x*c1 + y } else { y*c2 - x }` (wrapping). All-scalar
    /// signature, so the cross-IR agreement probe exercises it with
    /// synthesized argument vectors.
    Scalar(i8, i8),
    /// `fn helperK(p: &Inner, x: i64) -> i64`: branchy arithmetic over
    /// the fields of an object argument —
    /// `if p.u < x { p.u*c1 + p.v } else { p.v*c2 - x }` (wrapping).
    /// The signature takes a `Ref`, so the same-IR pre/post-opt probe
    /// exercises it with a *synthesized object* argument
    /// (`ProbeArg::Obj` in `memoir-lower::validate`).
    ObjProbe(i8, i8),
}

/// A whole generated case: `main`'s op list plus helper functions called
/// in order after `main`'s own ops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CaseProgram {
    /// `main`'s straight-line op list.
    pub main: Vec<Op>,
    /// Helper functions, called once each in order.
    pub helpers: Vec<Helper>,
}

impl CaseProgram {
    /// A single-function case over one op list (the v1 shape).
    pub fn single(ops: Vec<Op>) -> Self {
        CaseProgram {
            main: ops,
            helpers: Vec::new(),
        }
    }

    /// Whether this case uses any post-v1 language surface (objects or
    /// helper functions) — used for `.repro` version selection.
    pub fn uses_v2(&self) -> bool {
        !self.helpers.is_empty() || self.main.iter().any(Op::is_obj)
    }
}

/// Which program dimensions the generator draws from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaseDims {
    /// Include object/field ops in `main`.
    pub objects: bool,
    /// Generate helper functions called from `main`.
    pub multi: bool,
}

/// Draws one random op from the v1 (sequence + assoc) distribution, the
/// `tests/pipeline_differential.rs` weights.
pub fn random_op(rng: &mut SplitMix64) -> Op {
    let bucket = rng.below(16);
    op_from_bucket(rng, bucket)
}

/// Draws one random op; with `objects`, the distribution extends to the
/// object/field ops, including the object-graph shapes (nested `Inner`
/// links and doc collections of object refs). (`objects = false`
/// reproduces the [`random_op`] stream exactly, so v1 seeds stay
/// replayable.)
pub fn random_op_dim(rng: &mut SplitMix64, objects: bool) -> Op {
    let bucket = rng.below(if objects { 32 } else { 16 });
    op_from_bucket(rng, bucket)
}

fn op_from_bucket(rng: &mut SplitMix64, bucket: u64) -> Op {
    match bucket {
        0..=2 => Op::Push(rng.next_u64() as i8),
        3..=4 => Op::Write(rng.next_u64() as u8, rng.next_u64() as i8),
        5..=6 => Op::InsertAt(rng.next_u64() as u8, rng.next_u64() as i8),
        7 => Op::Remove(rng.next_u64() as u8),
        8..=9 => Op::SwapElems(rng.next_u64() as u8, rng.next_u64() as u8),
        10 => Op::RemoveRange(rng.next_u64() as u8, rng.next_u64() as u8),
        11..=12 => Op::AssocInsert(rng.next_u64() as u8, rng.next_u64() as i8),
        13 => Op::AssocRemove(rng.next_u64() as u8),
        14 => Op::AssocHas(rng.next_u64() as u8),
        15 => Op::AssocKeys,
        16..=17 => Op::ObjWrite(
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as i8,
        ),
        18..=19 => Op::ObjRead(rng.next_u64() as u8, rng.next_u64() as u8),
        20..=21 => Op::ObjTagPush(rng.next_u64() as u8, rng.next_u64() as i8),
        22..=23 => Op::LinkWrite(
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as i8,
        ),
        24 => Op::LinkRead(rng.next_u64() as u8, rng.next_u64() as u8),
        25 => Op::LinkNew(rng.next_u64() as u8, rng.next_u64() as i8),
        26..=27 => Op::DocPush(rng.next_u64() as u8),
        28 => Op::DocWrite(
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as i8,
        ),
        29 => Op::DocRead(rng.next_u64() as u8, rng.next_u64() as u8),
        30 => Op::DocAssocInsert(rng.next_u64() as u8, rng.next_u64() as u8),
        _ => Op::DocAssocRead(rng.next_u64() as u8, rng.next_u64() as u8),
    }
}

/// Draws a random op sequence of length `0..max_len` (v1 distribution).
pub fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    random_ops_dim(rng, max_len, false)
}

/// Draws a random op sequence of length `0..max_len`, optionally
/// including object ops.
pub fn random_ops_dim(rng: &mut SplitMix64, max_len: usize, objects: bool) -> Vec<Op> {
    let n = rng.index(max_len.max(1));
    (0..n).map(|_| random_op_dim(rng, objects)).collect()
}

/// Draws a whole case in the given dimensions: `main`'s ops, plus 1–3
/// helpers when `dims.multi` (ops helpers twice as likely as scalar
/// ones; with `dims.objects`, a quarter of the non-scalar draws become
/// object-probe helpers taking a `&Inner` argument).
pub fn random_case(rng: &mut SplitMix64, max_ops: usize, dims: CaseDims) -> CaseProgram {
    let main = random_ops_dim(rng, max_ops, dims.objects);
    let mut helpers = Vec::new();
    if dims.multi {
        let n = 1 + rng.index(3);
        for _ in 0..n {
            if rng.chance(1, 3) {
                helpers.push(Helper::Scalar(rng.next_u64() as i8, rng.next_u64() as i8));
            } else if dims.objects && rng.chance(1, 4) {
                helpers.push(Helper::ObjProbe(rng.next_u64() as i8, rng.next_u64() as i8));
            } else {
                helpers.push(Helper::Ops(random_ops(rng, max_ops / 2 + 1)));
            }
        }
    }
    CaseProgram { main, helpers }
}

/// The scalar-helper function, evaluated on the oracle side (wrapping,
/// matching the interpreters' integer semantics).
pub fn scalar_helper_eval(c1: i8, c2: i8, x: i64, y: i64) -> i64 {
    if x < y {
        x.wrapping_mul(c1 as i64).wrapping_add(y)
    } else {
        y.wrapping_mul(c2 as i64).wrapping_sub(x)
    }
}

/// The object-probe helper, evaluated on the oracle side: `u`/`v` are
/// the fields of the `&Inner` argument (wrapping).
pub fn obj_probe_eval(c1: i8, c2: i8, u: i64, v: i64, x: i64) -> i64 {
    if u < x {
        u.wrapping_mul(c1 as i64).wrapping_add(v)
    } else {
        v.wrapping_mul(c2 as i64).wrapping_sub(x)
    }
}

// ---------------------------------------------------------------------
// Oracle state and the shared op-resolution step.

#[derive(Clone, Debug, Default, PartialEq)]
struct ObjState {
    a: i64,
    b: i64,
    tags: Vec<i64>,
    // Fields of the `Inner` object reachable through `link`. Each pool
    // slot owns exactly one inner at a time (re-linking replaces it and
    // nothing else ever holds an inner ref), so modelling the pointee
    // inline is exact.
    u: i64,
    v: i64,
}

/// The oracle's model of the whole heap reachable from a case: the shared
/// sequence and assoc (threaded through helpers by reference) and the
/// object pool (local to `main`). The doc collections hold *pool slot
/// indices* — every `&Pt` in them aliases a pool object, and the oracle
/// models the aliasing by indirecting through the slot.
#[derive(Clone, Debug, Default, PartialEq)]
struct OracleState {
    seq: Vec<i64>,
    // Insertion-ordered, mirroring the interpreter's assoc key order.
    assoc: Vec<(i64, i64)>,
    objs: Vec<ObjState>,
    // `Seq<&Pt>` of pool aliases, as slot indices.
    docs: Vec<usize>,
    // `Assoc<i64, &Pt>` of pool aliases: insertion-ordered key → slot.
    adocs: Vec<(i64, usize)>,
}

impl OracleState {
    fn with_objs(objects: bool) -> Self {
        OracleState {
            objs: if objects {
                vec![ObjState::default(); OBJ_SLOTS as usize]
            } else {
                Vec::new()
            },
            ..Default::default()
        }
    }
}

/// An [`Op`] resolved against the current oracle state: concrete clamped
/// indices, with invalid ops resolved to `Skip`. Both the IR emitter and
/// the pure simulator consume resolved actions, so they cannot disagree.
#[derive(Clone, Copy, Debug)]
enum Action {
    Skip,
    Push(i64),
    Write(usize, i64),
    Insert(usize, i64),
    Remove(usize),
    Swap(usize, usize),
    RemoveRange(usize, usize),
    AInsert(i64, i64),
    ARemove(i64),
    AHas(i64),
    AKeys,
    OWrite(usize, u32, i64),
    ORead(usize, u32),
    OTagPush(usize, i64),
    LWrite(usize, u32, i64),
    LRead(usize, u32),
    LNew(usize, i64),
    DPush(usize),
    DWrite(usize, u32, i64),
    DRead(usize, u32),
    DAInsert(i64, usize),
    DARead(i64, u32),
}

/// Resolves `op` against `state`, applies it, and returns the action plus
/// the op's contribution to the position-weighted probe accumulator.
fn step(state: &mut OracleState, weight: i64, op: Op, allow_obj: bool) -> (Action, i64) {
    let act = match op {
        Op::Push(v) => Action::Push(v as i64),
        Op::Write(i, v) if !state.seq.is_empty() => {
            Action::Write(i as usize % state.seq.len(), v as i64)
        }
        Op::InsertAt(i, v) => Action::Insert(i as usize % (state.seq.len() + 1), v as i64),
        Op::Remove(i) if !state.seq.is_empty() => Action::Remove(i as usize % state.seq.len()),
        Op::SwapElems(x, c) if !state.seq.is_empty() => {
            let x = x as usize % state.seq.len();
            let c = c as usize % state.seq.len();
            // Disjoint or identical single-element ranges only.
            if x != c {
                Action::Swap(x, c)
            } else {
                Action::Skip
            }
        }
        Op::RemoveRange(x, c) if !state.seq.is_empty() => {
            let x = x as usize % state.seq.len();
            let c = c as usize % state.seq.len();
            Action::RemoveRange(x.min(c), x.max(c))
        }
        Op::AssocInsert(k, v) => Action::AInsert((k % ASSOC_KEYS) as i64, v as i64),
        Op::AssocRemove(k) => {
            let key = (k % ASSOC_KEYS) as i64;
            if state.assoc.iter().any(|(ek, _)| *ek == key) {
                Action::ARemove(key)
            } else {
                Action::Skip
            }
        }
        Op::AssocHas(k) => Action::AHas((k % ASSOC_KEYS) as i64),
        Op::AssocKeys => Action::AKeys,
        Op::ObjWrite(s, f, v) if allow_obj => {
            Action::OWrite((s % OBJ_SLOTS) as usize, (f % 3) as u32, v as i64)
        }
        Op::ObjRead(s, f) if allow_obj => Action::ORead((s % OBJ_SLOTS) as usize, (f % 2) as u32),
        Op::ObjTagPush(s, v) if allow_obj => Action::OTagPush((s % OBJ_SLOTS) as usize, v as i64),
        Op::LinkWrite(s, f, v) if allow_obj => {
            Action::LWrite((s % OBJ_SLOTS) as usize, (f % 2) as u32, v as i64)
        }
        Op::LinkRead(s, f) if allow_obj => Action::LRead((s % OBJ_SLOTS) as usize, (f % 2) as u32),
        Op::LinkNew(s, v) if allow_obj => Action::LNew((s % OBJ_SLOTS) as usize, v as i64),
        Op::DocPush(s) if allow_obj => Action::DPush((s % OBJ_SLOTS) as usize),
        Op::DocWrite(i, f, v) if allow_obj && !state.docs.is_empty() => {
            Action::DWrite(i as usize % state.docs.len(), (f % 3) as u32, v as i64)
        }
        Op::DocRead(i, f) if allow_obj && !state.docs.is_empty() => {
            Action::DRead(i as usize % state.docs.len(), (f % 2) as u32)
        }
        Op::DocAssocInsert(k, s) if allow_obj => {
            Action::DAInsert((k % ASSOC_KEYS) as i64, (s % OBJ_SLOTS) as usize)
        }
        Op::DocAssocRead(k, f) if allow_obj => {
            let key = (k % ASSOC_KEYS) as i64;
            if state.adocs.iter().any(|(ek, _)| *ek == key) {
                Action::DARead(key, (f % 2) as u32)
            } else {
                Action::Skip
            }
        }
        _ => Action::Skip,
    };
    let mut extra = 0i64;
    match act {
        Action::Skip => {}
        Action::Push(v) => state.seq.push(v),
        Action::Write(i, v) => state.seq[i] = v,
        Action::Insert(i, v) => state.seq.insert(i, v),
        Action::Remove(i) => {
            state.seq.remove(i);
        }
        Action::Swap(x, c) => state.seq.swap(x, c),
        Action::RemoveRange(lo, hi) => {
            state.seq.drain(lo..hi);
        }
        Action::AInsert(k, v) => {
            // Overwrite keeps the original insertion position.
            match state.assoc.iter_mut().find(|(ek, _)| *ek == k) {
                Some(e) => e.1 = v,
                None => state.assoc.push((k, v)),
            }
        }
        Action::ARemove(k) => state.assoc.retain(|(ek, _)| *ek != k),
        Action::AHas(k) => {
            if state.assoc.iter().any(|(ek, _)| *ek == k) {
                extra = weight;
            }
        }
        Action::AKeys => extra = weight.wrapping_mul(state.assoc.len() as i64),
        Action::OWrite(s, f, v) => match f {
            F_A => state.objs[s].a = v,
            F_B => state.objs[s].b = v,
            // `sink` is deliberately unobserved.
            _ => {}
        },
        Action::ORead(s, f) => {
            let v = if f == F_A {
                state.objs[s].a
            } else {
                state.objs[s].b
            };
            extra = weight.wrapping_mul(v);
        }
        Action::OTagPush(s, v) => state.objs[s].tags.push(v),
        Action::LWrite(s, f, v) => {
            if f == I_U {
                state.objs[s].u = v;
            } else {
                state.objs[s].v = v;
            }
        }
        Action::LRead(s, f) => {
            let x = if f == I_U {
                state.objs[s].u
            } else {
                state.objs[s].v
            };
            extra = weight.wrapping_mul(x);
        }
        Action::LNew(s, v) => {
            // The fresh inner carries the old inner's `u` in its `v`.
            state.objs[s].v = state.objs[s].u;
            state.objs[s].u = v;
        }
        Action::DPush(s) => state.docs.push(s),
        Action::DWrite(i, f, v) => {
            let slot = state.docs[i];
            match f {
                F_A => state.objs[slot].a = v,
                F_B => state.objs[slot].b = v,
                // `sink` stays deliberately unobserved.
                _ => {}
            }
        }
        Action::DRead(i, f) => {
            let slot = state.docs[i];
            let x = if f == F_A {
                state.objs[slot].a
            } else {
                state.objs[slot].b
            };
            extra = weight.wrapping_mul(x);
        }
        Action::DAInsert(k, s) => {
            // Overwrite keeps the original insertion position.
            match state.adocs.iter_mut().find(|(ek, _)| *ek == k) {
                Some(e) => e.1 = s,
                None => state.adocs.push((k, s)),
            }
        }
        Action::DARead(k, f) => {
            let slot = state
                .adocs
                .iter()
                .find(|(ek, _)| *ek == k)
                .map(|(_, s)| *s)
                .expect("DARead is only resolved when the key is present");
            let x = if f == F_A {
                state.objs[slot].a
            } else {
                state.objs[slot].b
            };
            extra = weight.wrapping_mul(x);
        }
    }
    (act, extra)
}

fn seq_fold_oracle(seq: &[i64]) -> i64 {
    seq.iter()
        .fold(0i64, |x, &v| x.wrapping_mul(2).wrapping_add(v))
}

fn assoc_fold_oracle(assoc: &[(i64, i64)]) -> i64 {
    assoc.iter().enumerate().fold(0i64, |x, (j, &(k, v))| {
        let w = j as i64 + 1;
        x.wrapping_add(w.wrapping_mul(k.wrapping_add(v.wrapping_mul(2))))
    })
}

fn obj_fold_oracle(objs: &[ObjState]) -> i64 {
    objs.iter().enumerate().fold(0i64, |x, (s, o)| {
        let w = s as i64 + 1;
        let t = seq_fold_oracle(&o.tags);
        let inner = o.u.wrapping_mul(3).wrapping_add(o.v.wrapping_mul(5));
        x.wrapping_add(
            w.wrapping_mul(
                o.a.wrapping_add(o.b.wrapping_mul(2))
                    .wrapping_add(t)
                    .wrapping_add(inner),
            ),
        )
    })
}

/// `Seq<&Pt>` fold: `acc = Σ (2*acc + (a + 2*b))` over the pointees, so
/// writes through either alias (pool slot or doc element) are observed.
fn docs_fold_oracle(state: &OracleState) -> i64 {
    state.docs.iter().fold(0i64, |x, &slot| {
        let o = &state.objs[slot];
        x.wrapping_mul(2)
            .wrapping_add(o.a.wrapping_add(o.b.wrapping_mul(2)))
    })
}

/// `Assoc<i64, &Pt>` fold over the insertion-ordered key sequence:
/// `Σ_j (j+1) * (key_j + 2*a + 3*u)` — the `u` read chains a collection
/// read into two field reads (pointee, then its linked inner).
fn adocs_fold_oracle(state: &OracleState) -> i64 {
    state
        .adocs
        .iter()
        .enumerate()
        .fold(0i64, |x, (j, &(k, slot))| {
            let o = &state.objs[slot];
            let w = j as i64 + 1;
            let term = k
                .wrapping_add(o.a.wrapping_mul(2))
                .wrapping_add(o.u.wrapping_mul(3));
            x.wrapping_add(w.wrapping_mul(term))
        })
}

// ---------------------------------------------------------------------
// IR emission.

/// Per-function emission context: handles of the live collections and the
/// running probe accumulator.
struct EmitCtx {
    s: memoir_ir::ValueId,
    a: memoir_ir::ValueId,
    objs: Option<ObjCtx>,
    extra: memoir_ir::ValueId,
}

struct ObjCtx {
    pt: ObjTypeId,
    inner: ObjTypeId,
    slots: Vec<memoir_ir::ValueId>,
    /// `Seq<&Pt>` of pool aliases.
    docs: memoir_ir::ValueId,
    /// `Assoc<i64, &Pt>` of pool aliases.
    adocs: memoir_ir::ValueId,
}

/// The generated object types: the pool struct `Pt` and the one-level
/// nested `Inner` linked from `Pt.link`.
#[derive(Clone, Copy)]
struct GenObjTypes {
    pt: ObjTypeId,
    inner: ObjTypeId,
}

/// Emits the straight-line op prefix, threading the oracle state; returns
/// the oracle's probe-accumulator total.
fn emit_ops(
    b: &mut FunctionBuilder<'_>,
    ops: &[Op],
    ctx: &mut EmitCtx,
    state: &mut OracleState,
) -> i64 {
    let allow_obj = ctx.objs.is_some();
    let mut extra_oracle = 0i64;
    let zero64 = b.i64(0);
    for (pos, &op) in ops.iter().enumerate() {
        let weight = pos as i64 + 1;
        let (act, delta) = step(state, weight, op, allow_obj);
        extra_oracle = extra_oracle.wrapping_add(delta);
        match act {
            Action::Skip => {}
            Action::Push(v) => {
                let sz = b.size(ctx.s);
                let vv = b.i64(v);
                b.mut_insert(ctx.s, sz, Some(vv));
            }
            Action::Write(i, v) => {
                let iv = b.index(i as u64);
                let vv = b.i64(v);
                b.mut_write(ctx.s, iv, vv);
            }
            Action::Insert(i, v) => {
                let iv = b.index(i as u64);
                let vv = b.i64(v);
                b.mut_insert(ctx.s, iv, Some(vv));
            }
            Action::Remove(i) => {
                let iv = b.index(i as u64);
                b.mut_remove(ctx.s, iv);
            }
            Action::Swap(x, c) => {
                let xv = b.index(x as u64);
                let x1 = b.index(x as u64 + 1);
                let cv = b.index(c as u64);
                b.mut_swap(ctx.s, xv, x1, cv);
            }
            Action::RemoveRange(lo, hi) => {
                let lov = b.index(lo as u64);
                let hiv = b.index(hi as u64);
                b.mut_remove_range(ctx.s, lov, hiv);
            }
            Action::AInsert(k, v) => {
                let kv = b.i64(k);
                let vv = b.i64(v);
                b.mut_insert(ctx.a, kv, Some(vv));
            }
            Action::ARemove(k) => {
                let kv = b.i64(k);
                b.mut_remove(ctx.a, kv);
            }
            Action::AHas(k) => {
                let kv = b.i64(k);
                let h = b.has(ctx.a, kv);
                let w = b.i64(weight);
                let hit = b.select(h, w, zero64);
                ctx.extra = b.add(ctx.extra, hit);
            }
            Action::AKeys => {
                let ks = b.keys(ctx.a);
                let n = b.size(ks);
                let ni = b.cast(Type::I64, n);
                let w = b.i64(weight);
                let term = b.mul(ni, w);
                ctx.extra = b.add(ctx.extra, term);
            }
            Action::OWrite(s, f, v) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let vv = b.i64(v);
                let (pt, slot) = (oc.pt, oc.slots[s]);
                b.field_write(slot, pt, f, vv);
            }
            Action::ORead(s, f) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, slot) = (oc.pt, oc.slots[s]);
                let v = b.field_read(slot, pt, f);
                let w = b.i64(weight);
                let term = b.mul(v, w);
                ctx.extra = b.add(ctx.extra, term);
            }
            Action::OTagPush(s, v) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, slot) = (oc.pt, oc.slots[s]);
                let tags = b.field_read(slot, pt, F_TAGS);
                let sz = b.size(tags);
                let vv = b.i64(v);
                b.mut_insert(tags, sz, Some(vv));
            }
            Action::LWrite(s, f, v) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, inner, slot) = (oc.pt, oc.inner, oc.slots[s]);
                let l = b.field_read(slot, pt, F_LINK);
                let vv = b.i64(v);
                b.field_write(l, inner, f, vv);
            }
            Action::LRead(s, f) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, inner, slot) = (oc.pt, oc.inner, oc.slots[s]);
                let l = b.field_read(slot, pt, F_LINK);
                let v = b.field_read(l, inner, f);
                let w = b.i64(weight);
                let term = b.mul(v, w);
                ctx.extra = b.add(ctx.extra, term);
            }
            Action::LNew(s, v) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, inner, slot) = (oc.pt, oc.inner, oc.slots[s]);
                let old = b.field_read(slot, pt, F_LINK);
                let old_u = b.field_read(old, inner, I_U);
                let l = b.new_obj(inner);
                let vv = b.i64(v);
                b.field_write(l, inner, I_U, vv);
                b.field_write(l, inner, I_V, old_u);
                b.field_write(slot, pt, F_LINK, l);
            }
            Action::DPush(s) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (docs, slot) = (oc.docs, oc.slots[s]);
                let sz = b.size(docs);
                b.mut_insert(docs, sz, Some(slot));
            }
            Action::DWrite(i, f, v) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, docs) = (oc.pt, oc.docs);
                let iv = b.index(i as u64);
                let d = b.read(docs, iv);
                let vv = b.i64(v);
                b.field_write(d, pt, f, vv);
            }
            Action::DRead(i, f) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, docs) = (oc.pt, oc.docs);
                let iv = b.index(i as u64);
                let d = b.read(docs, iv);
                let v = b.field_read(d, pt, f);
                let w = b.i64(weight);
                let term = b.mul(v, w);
                ctx.extra = b.add(ctx.extra, term);
            }
            Action::DAInsert(k, s) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (adocs, slot) = (oc.adocs, oc.slots[s]);
                let kv = b.i64(k);
                b.mut_insert(adocs, kv, Some(slot));
            }
            Action::DARead(k, f) => {
                let oc = ctx.objs.as_ref().expect("object pool");
                let (pt, adocs) = (oc.pt, oc.adocs);
                let kv = b.i64(k);
                let d = b.read(adocs, kv);
                let v = b.field_read(d, pt, f);
                let w = b.i64(weight);
                let term = b.mul(v, w);
                ctx.extra = b.add(ctx.extra, term);
            }
        }
    }
    extra_oracle
}

/// Emits the sequence fold loop `acc = Σ (2*acc + elem)` over `s`.
fn emit_seq_fold(b: &mut FunctionBuilder<'_>, s: memoir_ir::ValueId) -> memoir_ir::ValueId {
    let i64t = b.ty(Type::I64);
    let idxt = b.ty(Type::Index);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    let pre = b.current_block();
    b.jump(header);
    b.switch_to(header);
    let i = b.phi_placeholder(idxt);
    let acc = b.phi_placeholder(i64t);
    b.add_phi_incoming(i, pre, zero);
    b.add_phi_incoming(acc, pre, zero64);
    let sz = b.size(s);
    let done = b.cmp(CmpOp::Ge, i, sz);
    b.branch(done, exit, body);
    b.switch_to(body);
    let v = b.read(s, i);
    let two = b.i64(2);
    let acc2x = b.mul(acc, two);
    let acc2 = b.add(acc2x, v);
    let one = b.index(1);
    let next = b.add(i, one);
    let bb = b.current_block();
    b.add_phi_incoming(i, bb, next);
    b.add_phi_incoming(acc, bb, acc2);
    b.jump(header);
    b.switch_to(exit);
    acc
}

/// Emits the assoc fold loop over the insertion-ordered key sequence,
/// weighting by position so key-order bugs are observable:
/// `kacc = Σ_j (j+1) * (key_j + 2*value_j)`.
fn emit_assoc_fold(b: &mut FunctionBuilder<'_>, a: memoir_ir::ValueId) -> memoir_ir::ValueId {
    let i64t = b.ty(Type::I64);
    let idxt = b.ty(Type::Index);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let ks = b.keys(a);
    let ksz = b.size(ks);
    let header = b.block("kheader");
    let body = b.block("kbody");
    let exit = b.block("kexit");
    let pre = b.current_block();
    b.jump(header);
    b.switch_to(header);
    let j = b.phi_placeholder(idxt);
    let kacc = b.phi_placeholder(i64t);
    b.add_phi_incoming(j, pre, zero);
    b.add_phi_incoming(kacc, pre, zero64);
    let done = b.cmp(CmpOp::Ge, j, ksz);
    b.branch(done, exit, body);
    b.switch_to(body);
    let key = b.read(ks, j);
    let val = b.read(a, key);
    let jv = b.cast(Type::I64, j);
    let one64 = b.i64(1);
    let w = b.add(jv, one64);
    let two = b.i64(2);
    let val2 = b.mul(val, two);
    let kv2 = b.add(key, val2);
    let term = b.mul(w, kv2);
    let kacc2 = b.add(kacc, term);
    let one = b.index(1);
    let next = b.add(j, one);
    let bb = b.current_block();
    b.add_phi_incoming(j, bb, next);
    b.add_phi_incoming(kacc, bb, kacc2);
    b.jump(header);
    b.switch_to(exit);
    kacc
}

/// Emits the object-pool fold: per slot, `(slot+1) * (a + 2*b +
/// fold(tags) + 3*link.u + 5*link.v)` — `sink` is never read.
fn emit_obj_fold(b: &mut FunctionBuilder<'_>, oc: &ObjCtx) -> memoir_ir::ValueId {
    let mut acc = b.i64(0);
    let two = b.i64(2);
    let three = b.i64(3);
    let five = b.i64(5);
    for (s, &slot) in oc.slots.iter().enumerate() {
        let av = b.field_read(slot, oc.pt, F_A);
        let bv = b.field_read(slot, oc.pt, F_B);
        let tags = b.field_read(slot, oc.pt, F_TAGS);
        let tv = emit_seq_fold(b, tags);
        let l = b.field_read(slot, oc.pt, F_LINK);
        let uv = b.field_read(l, oc.inner, I_U);
        let vv = b.field_read(l, oc.inner, I_V);
        let b2 = b.mul(bv, two);
        let u3 = b.mul(uv, three);
        let v5 = b.mul(vv, five);
        let s1 = b.add(av, b2);
        let s2 = b.add(s1, tv);
        let s3 = b.add(s2, u3);
        let s4 = b.add(s3, v5);
        let w = b.i64(s as i64 + 1);
        let term = b.mul(w, s4);
        acc = b.add(acc, term);
    }
    acc
}

/// Emits the `Seq<&Pt>` doc fold: `acc = Σ (2*acc + (a + 2*b))` over the
/// pointees — a loop whose body chains a collection read into two field
/// reads through the alias.
fn emit_docs_fold(b: &mut FunctionBuilder<'_>, oc: &ObjCtx) -> memoir_ir::ValueId {
    let i64t = b.ty(Type::I64);
    let idxt = b.ty(Type::Index);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let header = b.block("dheader");
    let body = b.block("dbody");
    let exit = b.block("dexit");
    let pre = b.current_block();
    b.jump(header);
    b.switch_to(header);
    let i = b.phi_placeholder(idxt);
    let acc = b.phi_placeholder(i64t);
    b.add_phi_incoming(i, pre, zero);
    b.add_phi_incoming(acc, pre, zero64);
    let sz = b.size(oc.docs);
    let done = b.cmp(CmpOp::Ge, i, sz);
    b.branch(done, exit, body);
    b.switch_to(body);
    let d = b.read(oc.docs, i);
    let av = b.field_read(d, oc.pt, F_A);
    let bv = b.field_read(d, oc.pt, F_B);
    let two = b.i64(2);
    let b2 = b.mul(bv, two);
    let term = b.add(av, b2);
    let acc2x = b.mul(acc, two);
    let acc2 = b.add(acc2x, term);
    let one = b.index(1);
    let next = b.add(i, one);
    let bb = b.current_block();
    b.add_phi_incoming(i, bb, next);
    b.add_phi_incoming(acc, bb, acc2);
    b.jump(header);
    b.switch_to(exit);
    acc
}

/// Emits the `Assoc<i64, &Pt>` doc fold over the insertion-ordered key
/// sequence: `Σ_j (j+1) * (key_j + 2*a + 3*link.u)` — the `u` read
/// chains a collection read into two field reads (pointee, then its
/// linked inner).
fn emit_adocs_fold(b: &mut FunctionBuilder<'_>, oc: &ObjCtx) -> memoir_ir::ValueId {
    let i64t = b.ty(Type::I64);
    let idxt = b.ty(Type::Index);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let ks = b.keys(oc.adocs);
    let ksz = b.size(ks);
    let header = b.block("adheader");
    let body = b.block("adbody");
    let exit = b.block("adexit");
    let pre = b.current_block();
    b.jump(header);
    b.switch_to(header);
    let j = b.phi_placeholder(idxt);
    let kacc = b.phi_placeholder(i64t);
    b.add_phi_incoming(j, pre, zero);
    b.add_phi_incoming(kacc, pre, zero64);
    let done = b.cmp(CmpOp::Ge, j, ksz);
    b.branch(done, exit, body);
    b.switch_to(body);
    let key = b.read(ks, j);
    let d = b.read(oc.adocs, key);
    let av = b.field_read(d, oc.pt, F_A);
    let l = b.field_read(d, oc.pt, F_LINK);
    let uv = b.field_read(l, oc.inner, I_U);
    let jv = b.cast(Type::I64, j);
    let one64 = b.i64(1);
    let w = b.add(jv, one64);
    let two = b.i64(2);
    let three = b.i64(3);
    let a2 = b.mul(av, two);
    let u3 = b.mul(uv, three);
    let t1 = b.add(key, a2);
    let t2 = b.add(t1, u3);
    let term = b.mul(w, t2);
    let kacc2 = b.add(kacc, term);
    let one = b.index(1);
    let next = b.add(j, one);
    let bb = b.current_block();
    b.add_phi_incoming(j, bb, next);
    b.add_phi_incoming(kacc, bb, kacc2);
    b.jump(header);
    b.switch_to(exit);
    kacc
}

/// Emits `main`'s preamble: the shared sequence and assoc, plus the
/// object pool when `types` is set (objects initialized field-by-field,
/// with a fresh nested `tags` sequence and a fresh zeroed `Inner` linked
/// per slot, and the two empty doc collections of `&Pt`).
fn emit_preamble(b: &mut FunctionBuilder<'_>, types: Option<GenObjTypes>) -> EmitCtx {
    let i64t = b.ty(Type::I64);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let s = b.new_seq(i64t, zero);
    let a = b.new_assoc(i64t, i64t);
    let objs = types.map(|GenObjTypes { pt, inner }| {
        let slots = (0..OBJ_SLOTS)
            .map(|_| {
                let o = b.new_obj(pt);
                b.field_write(o, pt, F_A, zero64);
                b.field_write(o, pt, F_B, zero64);
                b.field_write(o, pt, F_SINK, zero64);
                let tags = b.new_seq(i64t, zero);
                b.field_write(o, pt, F_TAGS, tags);
                let l = b.new_obj(inner);
                b.field_write(l, inner, I_U, zero64);
                b.field_write(l, inner, I_V, zero64);
                b.field_write(o, pt, F_LINK, l);
                o
            })
            .collect();
        let pt_ref = b.types.ref_of(pt);
        let docs = b.new_seq(pt_ref, zero);
        let adocs = b.new_assoc(i64t, pt_ref);
        ObjCtx {
            pt,
            inner,
            slots,
            docs,
            adocs,
        }
    });
    EmitCtx {
        s,
        a,
        objs,
        extra: zero64,
    }
}

/// Emits the body of an ops helper (shared collections by reference, the
/// accumulator by value); advances `state` past its ops and returns the
/// oracle's delta to the accumulator.
fn emit_ops_helper_body(b: &mut FunctionBuilder<'_>, ops: &[Op], state: &mut OracleState) -> i64 {
    let i64t = b.ty(Type::I64);
    let seqt = b.types.seq_of(i64t);
    let assoct = b.types.assoc_of(i64t, i64t);
    let s = b.param_ref("s", seqt);
    let a = b.param_ref("a", assoct);
    let x = b.param("x", i64t);
    let zero64 = b.i64(0);
    let mut ctx = EmitCtx {
        s,
        a,
        objs: None,
        extra: zero64,
    };
    let extra_oracle = emit_ops(b, ops, &mut ctx, state);
    let acc = emit_seq_fold(b, s);
    let kacc = emit_assoc_fold(b, a);
    let t1 = b.add(x, ctx.extra);
    let t2 = b.add(t1, acc);
    let total = b.add(t2, kacc);
    b.returns(&[i64t]);
    b.ret(vec![total]);
    extra_oracle
        .wrapping_add(seq_fold_oracle(&state.seq))
        .wrapping_add(assoc_fold_oracle(&state.assoc))
}

/// Emits the branchy scalar helper `if x < y { x*c1 + y } else
/// { y*c2 - x }` (see [`scalar_helper_eval`]).
fn emit_scalar_helper_body(b: &mut FunctionBuilder<'_>, c1: i8, c2: i8) {
    let i64t = b.ty(Type::I64);
    let x = b.param("x", i64t);
    let y = b.param("y", i64t);
    let then_b = b.block("then");
    let else_b = b.block("else");
    let merge = b.block("merge");
    let c = b.cmp(CmpOp::Lt, x, y);
    b.branch(c, then_b, else_b);
    b.switch_to(then_b);
    let c1v = b.i64(c1 as i64);
    let t1 = b.mul(x, c1v);
    let t2 = b.add(t1, y);
    let tb = b.current_block();
    b.jump(merge);
    b.switch_to(else_b);
    let c2v = b.i64(c2 as i64);
    let e1 = b.mul(y, c2v);
    let e2 = b.sub(e1, x);
    let eb = b.current_block();
    b.jump(merge);
    b.switch_to(merge);
    let r = b.phi_placeholder(i64t);
    b.add_phi_incoming(r, tb, t2);
    b.add_phi_incoming(r, eb, e2);
    b.returns(&[i64t]);
    b.ret(vec![r]);
}

/// Emits the branchy object-probe helper `if p.u < x { p.u*c1 + p.v }
/// else { p.v*c2 - x }` over a `&Inner` argument (see
/// [`obj_probe_eval`]).
fn emit_obj_probe_body(b: &mut FunctionBuilder<'_>, inner: ObjTypeId, c1: i8, c2: i8) {
    let i64t = b.ty(Type::I64);
    let innert = b.types.ref_of(inner);
    let p = b.param("p", innert);
    let x = b.param("x", i64t);
    let u = b.field_read(p, inner, I_U);
    let v = b.field_read(p, inner, I_V);
    let then_b = b.block("then");
    let else_b = b.block("else");
    let merge = b.block("merge");
    let c = b.cmp(CmpOp::Lt, u, x);
    b.branch(c, then_b, else_b);
    b.switch_to(then_b);
    let c1v = b.i64(c1 as i64);
    let t1 = b.mul(u, c1v);
    let t2 = b.add(t1, v);
    let tb = b.current_block();
    b.jump(merge);
    b.switch_to(else_b);
    let c2v = b.i64(c2 as i64);
    let e1 = b.mul(v, c2v);
    let e2 = b.sub(e1, x);
    let eb = b.current_block();
    b.jump(merge);
    b.switch_to(merge);
    let r = b.phi_placeholder(i64t);
    b.add_phi_incoming(r, tb, t2);
    b.add_phi_incoming(r, eb, e2);
    b.returns(&[i64t]);
    b.ret(vec![r]);
}

/// Defines the generated object types in a module's type table: the
/// nested `Inner { u, v }` first, then `Pt { a, b, sink, tags, link }`
/// whose `link` field holds a `&Inner` (one level of object nesting).
fn define_obj_types(mb: &mut ModuleBuilder) -> GenObjTypes {
    let i64t = mb.module.types.intern(Type::I64);
    let tags_t = mb.module.types.seq_of(i64t);
    let inner = mb
        .module
        .types
        .define_object(
            "Inner",
            vec![
                Field {
                    name: "u".into(),
                    ty: i64t,
                },
                Field {
                    name: "v".into(),
                    ty: i64t,
                },
            ],
        )
        .expect("Inner is not recursive");
    let inner_ref = mb.module.types.ref_of(inner);
    let pt = mb
        .module
        .types
        .define_object(
            "Pt",
            vec![
                Field {
                    name: "a".into(),
                    ty: i64t,
                },
                Field {
                    name: "b".into(),
                    ty: i64t,
                },
                Field {
                    name: "sink".into(),
                    ty: i64t,
                },
                Field {
                    name: "tags".into(),
                    ty: tags_t,
                },
                Field {
                    name: "link".into(),
                    ty: inner_ref,
                },
            ],
        )
        .expect("Pt is not recursive");
    GenObjTypes { pt, inner }
}

/// Builds the module and the oracle result for a whole case. Helpers are
/// emitted first (so `main` can call them); index clamping in every
/// function is derived from one oracle state threaded in call order, so
/// any op lists form a valid program.
pub fn build_case(prog: &CaseProgram) -> (Module, i64) {
    let mut mb = ModuleBuilder::new("fuzz");
    let has_obj = prog.main.iter().any(Op::is_obj);
    let has_probe = prog
        .helpers
        .iter()
        .any(|h| matches!(h, Helper::ObjProbe(..)));
    // Object-probe helpers need the types even when `main` has no pool.
    let types = (has_obj || has_probe).then(|| define_obj_types(&mut mb));

    // Pure simulation of main's ops: helpers run against the state they
    // leave behind.
    let mut state = OracleState::with_objs(has_obj);
    for (pos, &op) in prog.main.iter().enumerate() {
        step(&mut state, pos as i64 + 1, op, has_obj);
    }

    // Helpers, in call order, threading the oracle accumulator `r`.
    let mut r = 0i64;
    let mut fids: Vec<FuncId> = Vec::new();
    for (k, h) in prog.helpers.iter().enumerate() {
        let name = format!("helper{k}");
        match h {
            Helper::Ops(ops) => {
                let mut delta = 0i64;
                let fid = mb.func(&name, Form::Mut, |b| {
                    delta = emit_ops_helper_body(b, ops, &mut state);
                });
                r = r.wrapping_add(delta);
                fids.push(fid);
            }
            Helper::Scalar(c1, c2) => {
                let fid = mb.func(&name, Form::Mut, |b| emit_scalar_helper_body(b, *c1, *c2));
                r = scalar_helper_eval(*c1, *c2, r, (k as i64 + 1) * 13);
                fids.push(fid);
            }
            Helper::ObjProbe(c1, c2) => {
                let inner = types.expect("obj types exist for probes").inner;
                let fid = mb.func(&name, Form::Mut, |b| {
                    emit_obj_probe_body(b, inner, *c1, *c2)
                });
                // The call site allocates `Inner { u: (k+1)*3, v: (k+1)*5 }`.
                let (u0, v0) = ((k as i64 + 1) * 3, (k as i64 + 1) * 5);
                r = obj_probe_eval(*c1, *c2, u0, v0, r);
                fids.push(fid);
            }
        }
    }

    // `state` now holds the post-helpers heap: the epilogue folds run
    // over it at runtime, so the oracle folds over it here.
    let mut expect = 0i64;
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let mut ctx = emit_preamble(b, types.filter(|_| has_obj));
        let mut st = OracleState::with_objs(has_obj);
        let main_extra = emit_ops(b, &prog.main, &mut ctx, &mut st);
        let mut rv = b.i64(0);
        for (k, h) in prog.helpers.iter().enumerate() {
            let rets = match h {
                Helper::Ops(_) => b.call(
                    memoir_ir::Callee::Func(fids[k]),
                    vec![ctx.s, ctx.a, rv],
                    &[i64t],
                ),
                Helper::Scalar(..) => {
                    let w = b.i64((k as i64 + 1) * 13);
                    b.call(memoir_ir::Callee::Func(fids[k]), vec![rv, w], &[i64t])
                }
                Helper::ObjProbe(..) => {
                    let inner = types.expect("obj types exist for probes").inner;
                    let l = b.new_obj(inner);
                    let u0 = b.i64((k as i64 + 1) * 3);
                    let v0 = b.i64((k as i64 + 1) * 5);
                    b.field_write(l, inner, I_U, u0);
                    b.field_write(l, inner, I_V, v0);
                    b.call(memoir_ir::Callee::Func(fids[k]), vec![l, rv], &[i64t])
                }
            };
            rv = rets[0];
        }
        let acc = emit_seq_fold(b, ctx.s);
        let kacc = emit_assoc_fold(b, ctx.a);
        let t1 = b.add(acc, ctx.extra);
        let mut total = b.add(t1, kacc);
        if let Some(oc) = &ctx.objs {
            let ofold = emit_obj_fold(b, oc);
            let dfold = emit_docs_fold(b, oc);
            let adfold = emit_adocs_fold(b, oc);
            let t2 = b.add(ofold, dfold);
            let t3 = b.add(t2, adfold);
            total = b.add(total, t3);
        }
        total = b.add(total, rv);
        b.returns(&[i64t]);
        b.ret(vec![total]);
        expect = seq_fold_oracle(&state.seq)
            .wrapping_add(main_extra)
            .wrapping_add(assoc_fold_oracle(&state.assoc))
            .wrapping_add(obj_fold_oracle(&state.objs))
            .wrapping_add(docs_fold_oracle(&state))
            .wrapping_add(adocs_fold_oracle(&state))
            .wrapping_add(r);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    (m, expect)
}

/// Samples a per-case harness configuration, so a campaign varies the
/// fault policy and budgets *per case* instead of fixing them for the
/// whole run (explicit `--on-fault`/`--budget` flags pin them again).
///
/// Policy is Abort half the time (every fault is a crash) and a
/// recovering policy otherwise (rollback soundness is the fuzzed
/// property). Budgets are sampled only alongside recovering policies and
/// only on the deterministic axes — a fixpoint iteration cap (never a
/// fault, just an earlier stop) and a growth factor generous enough
/// (8–16×) that legitimate passes stay far inside it; wall-clock budgets
/// would make campaigns flaky. `lower` makes it a through-lowering case
/// with a random [`random_lir_spec`](crate::genspec::random_lir_spec)
/// phase; half of those also lower through the adaptive representation
/// selector (dense / inline layouts for provably bounded collections).
/// Injection plans are never sampled: they come only from the
/// `--inject` flag. The per-function probe seed is left unset here; the
/// campaign driver samples it for multi-function cases (see
/// [`CaseConfig::probe_seed`](crate::harness::CaseConfig)).
pub fn random_case_config(rng: &mut SplitMix64, lower: bool) -> CaseConfig {
    let policy = match rng.below(4) {
        0 | 1 => FaultPolicy::Abort,
        2 => FaultPolicy::SkipPass,
        _ => FaultPolicy::StopPipeline,
    };
    let mut budgets = Budgets::none();
    if policy != FaultPolicy::Abort {
        if rng.chance(1, 3) {
            budgets.max_fixpoint_iters = Some([1, 2, 4][rng.index(3)]);
        }
        if rng.chance(1, 4) {
            budgets.max_growth = Some([8.0, 16.0][rng.index(2)]);
        }
    }
    CaseConfig {
        policy,
        inject: None,
        budgets,
        lir_spec: if lower {
            Some(crate::genspec::random_lir_spec(rng))
        } else {
            None
        },
        // Half of all through-lowering cases lower through the adaptive
        // representation selector, so the differential oracles cover
        // dense / inline layouts as heavily as the default hashed one.
        adaptive: lower && rng.chance(1, 2),
        probe_seed: None,
        // One case in eight also runs the cached-vs-cold differential
        // oracle (two extra compiles through a shared compile cache).
        cache_check: rng.chance(1, 8),
        // Service faults are never sampled here: the `memoir-fuzz
        // service` campaign driver samples them (two extra service
        // batches per case is too expensive for the default campaign).
        service_fault: None,
        // The symbolic oracle is opt-in (`--sym`): path enumeration on
        // every case would dominate campaign throughput.
        sym: false,
    }
}

/// Builds the module and the oracle result together for a single-function
/// case (indices are clamped identically in both, so every op list is a
/// valid program).
pub fn build(ops: &[Op]) -> (Module, i64) {
    build_case(&CaseProgram::single(ops.to_vec()))
}

/// Builds one module containing one generated function per op list
/// (`main0`, `main1`, …), with the oracle result for each — multi-function
/// subjects for the sharded pass executor. The entry is `main0`.
pub fn build_multi(progs: &[Vec<Op>]) -> (Module, Vec<i64>) {
    let mut expects = Vec::with_capacity(progs.len());
    let mut mb = ModuleBuilder::new("fuzz-multi");
    let has_obj = progs.iter().flatten().any(Op::is_obj);
    let types = has_obj.then(|| define_obj_types(&mut mb));
    for (i, ops) in progs.iter().enumerate() {
        let name = format!("main{i}");
        let func_obj = ops.iter().any(Op::is_obj);
        mb.func(&name, Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let mut ctx = emit_preamble(b, types.filter(|_| func_obj));
            let mut st = OracleState::with_objs(func_obj);
            let extra_oracle = emit_ops(b, ops, &mut ctx, &mut st);
            let acc = emit_seq_fold(b, ctx.s);
            let kacc = emit_assoc_fold(b, ctx.a);
            let t1 = b.add(acc, ctx.extra);
            let mut total = b.add(t1, kacc);
            if let Some(oc) = &ctx.objs {
                let ofold = emit_obj_fold(b, oc);
                let dfold = emit_docs_fold(b, oc);
                let adfold = emit_adocs_fold(b, oc);
                let t2 = b.add(ofold, dfold);
                let t3 = b.add(t2, adfold);
                total = b.add(total, t3);
            }
            b.returns(&[i64t]);
            b.ret(vec![total]);
            expects.push(
                seq_fold_oracle(&st.seq)
                    .wrapping_add(extra_oracle)
                    .wrapping_add(assoc_fold_oracle(&st.assoc))
                    .wrapping_add(obj_fold_oracle(&st.objs))
                    .wrapping_add(docs_fold_oracle(&st))
                    .wrapping_add(adocs_fold_oracle(&st)),
            );
        });
    }
    let mut m = mb.finish();
    m.entry = m.func_by_name("main0");
    (m, expects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_as_text() {
        let ops = vec![
            Op::Push(-3),
            Op::Write(4, 7),
            Op::InsertAt(2, -1),
            Op::Remove(0),
            Op::SwapElems(1, 2),
            Op::RemoveRange(1, 3),
            Op::AssocInsert(5, -9),
            Op::AssocRemove(5),
            Op::AssocHas(21),
            Op::AssocKeys,
            Op::ObjWrite(1, 2, -5),
            Op::ObjRead(0, 1),
            Op::ObjTagPush(3, 7),
            Op::LinkWrite(1, 0, -8),
            Op::LinkRead(0, 1),
            Op::LinkNew(1, 6),
            Op::DocPush(1),
            Op::DocWrite(2, 1, -4),
            Op::DocRead(3, 0),
            Op::DocAssocInsert(9, 1),
            Op::DocAssocRead(9, 1),
        ];
        for op in &ops {
            let text = op.to_string();
            assert_eq!(text.parse::<Op>().unwrap(), *op, "{text}");
        }
        assert!("push".parse::<Op>().is_err());
        assert!("nuke 1".parse::<Op>().is_err());
        assert!("push 1 2".parse::<Op>().is_err());
        assert!("assoc-insert 1".parse::<Op>().is_err());
        assert!("assoc-keys 1".parse::<Op>().is_err());
        assert!("obj-write 1 2".parse::<Op>().is_err());
        assert!("obj-read 1 2 3".parse::<Op>().is_err());
        assert!("obj-link-write 1 2".parse::<Op>().is_err());
        assert!("doc-push".parse::<Op>().is_err());
        assert!("doc-assoc-read 1 2 3".parse::<Op>().is_err());
    }

    #[test]
    fn build_matches_the_oracle() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10 {
            let ops = random_ops(&mut rng, 30);
            let (m, expect) = build(&ops);
            memoir_ir::verifier::assert_valid(&m);
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
            assert_eq!(got, expect, "ops: {ops:?}");
        }
    }

    #[test]
    fn object_programs_match_the_oracle() {
        let mut rng = SplitMix64::new(2026);
        let dims = CaseDims {
            objects: true,
            multi: false,
        };
        let mut with_obj = 0;
        for _ in 0..20 {
            let prog = random_case(&mut rng, 30, dims);
            if prog.main.iter().any(Op::is_obj) {
                with_obj += 1;
            }
            let (m, expect) = build_case(&prog);
            memoir_ir::verifier::assert_valid(&m);
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
            assert_eq!(got, expect, "prog: {prog:?}");
        }
        assert!(with_obj > 5, "object ops under-sampled: {with_obj}");
    }

    #[test]
    fn object_ops_are_observable() {
        // slot 0: a=5, b=-2, tags=[3]; slot 1: untouched (all zero).
        let prog = CaseProgram::single(vec![
            Op::ObjWrite(0, 0, 5),
            Op::ObjWrite(0, 1, -2),
            Op::ObjWrite(0, 2, 99), // sink: must not affect the result
            Op::ObjTagPush(0, 3),
            Op::ObjRead(2, 0), // slot 2 % 2 = 0, field a: +weight(5) * 5
        ]);
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        // extra = 5*5 = 25; obj fold = 1*(5 + 2*(-2) + 3) = 4.
        assert_eq!(expect, 25 + 4);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn object_graph_ops_are_observable() {
        let prog = CaseProgram::single(vec![
            Op::LinkWrite(0, 0, 4),   // slot0.link.u = 4
            Op::LinkNew(0, 9),        // re-link slot0: Inner { u: 9, v: 4 }
            Op::LinkRead(0, 1),       // +weight(3) * v(4) = 12
            Op::DocPush(0),           // docs = [&slot0]
            Op::DocWrite(0, 0, 6),    // through the alias: slot0.a = 6
            Op::DocRead(0, 0),        // +weight(6) * a(6) = 36
            Op::DocAssocInsert(5, 1), // adocs = {5: &slot1}
            Op::DocAssocRead(5, 0),   // +weight(8) * slot1.a(0) = 0
        ]);
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        // extra = 12 + 36 = 48;
        // obj fold = 1*(6 + 3*9 + 5*4) + 2*0 = 53;
        // docs fold = 2*0 + (6 + 2*0) = 6;
        // adocs fold = 1*(5 + 2*0 + 3*0) = 5.
        assert_eq!(expect, 48 + 53 + 6 + 5);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn doc_ops_on_empty_collections_resolve_to_skip() {
        // No DocPush/DocAssocInsert precedes the reads/writes, so every
        // doc op must resolve to Skip instead of trapping.
        let prog = CaseProgram::single(vec![
            Op::DocWrite(0, 0, 6),
            Op::DocRead(1, 1),
            Op::DocAssocRead(3, 0),
        ]);
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(expect, 0);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn obj_probe_helpers_match_their_eval() {
        // `main` has no object ops, so the probe helper alone forces the
        // object types plus the call-site `Inner` allocation.
        let prog = CaseProgram {
            main: vec![],
            helpers: vec![Helper::ObjProbe(3, -2), Helper::ObjProbe(-1, 5)],
        };
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        let r1 = obj_probe_eval(3, -2, 3, 5, 0);
        let r2 = obj_probe_eval(-1, 5, 6, 10, r1);
        assert_eq!(expect, r2);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn multi_function_cases_match_the_oracle() {
        let mut rng = SplitMix64::new(41);
        let dims = CaseDims {
            objects: true,
            multi: true,
        };
        for _ in 0..20 {
            let prog = random_case(&mut rng, 25, dims);
            let (m, expect) = build_case(&prog);
            memoir_ir::verifier::assert_valid(&m);
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
            assert_eq!(got, expect, "prog: {prog:?}");
        }
    }

    #[test]
    fn helpers_mutate_the_callers_collections_by_ref() {
        // Helper pushes 7 onto the shared (initially empty) sequence; the
        // fold in main must see it: seq fold = 7, helper returns
        // 0 + 0 + fold(=7) + 0, so total = 7 (fold) + 7 (r).
        let prog = CaseProgram {
            main: vec![],
            helpers: vec![Helper::Ops(vec![Op::Push(7)])],
        };
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(expect, 14);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn scalar_helpers_match_their_eval() {
        let prog = CaseProgram {
            main: vec![Op::Push(1)],
            helpers: vec![Helper::Scalar(3, -2), Helper::Scalar(-1, 5)],
        };
        let (m, expect) = build_case(&prog);
        memoir_ir::verifier::assert_valid(&m);
        let r1 = scalar_helper_eval(3, -2, 0, 13);
        let r2 = scalar_helper_eval(-1, 5, r1, 26);
        // seq fold = 1.
        assert_eq!(expect, 1 + r2);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn v1_random_op_stream_is_preserved() {
        // `random_op` and `random_op_dim(_, false)` must draw identical
        // streams so that v1 `.repro` seeds stay replayable.
        let mut a = SplitMix64::new(555);
        let mut b = SplitMix64::new(555);
        for _ in 0..500 {
            assert_eq!(random_op(&mut a), random_op_dim(&mut b, false));
        }
    }

    #[test]
    fn assoc_ops_hit_overwrite_and_probe_paths() {
        let ops = vec![
            Op::AssocHas(3),       // miss: weight 1 not added
            Op::AssocInsert(3, 5), // {3: 5}
            Op::AssocInsert(3, 7), // overwrite in place: {3: 7}
            Op::AssocInsert(4, 1), // {3: 7, 4: 1}
            Op::AssocHas(3),       // hit: +5
            Op::AssocKeys,         // +6 * 2 keys
            Op::AssocRemove(4),    // {3: 7}
            Op::AssocRemove(4),    // absent: not emitted
            Op::AssocKeys,         // +9 * 1 key
        ];
        let (m, expect) = build(&ops);
        memoir_ir::verifier::assert_valid(&m);
        // extra = 5 + 12 + 9 = 26; assoc fold = 1*(3 + 2*7) = 17.
        assert_eq!(expect, 26 + 17);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn random_case_configs_cover_the_policy_space() {
        let mut rng = SplitMix64::new(17);
        let (mut abort, mut skip, mut stop, mut budgeted, mut lowered) = (0, 0, 0, 0, 0);
        let (mut cached, mut adaptive) = (0, 0);
        for i in 0..200 {
            let cfg = random_case_config(&mut rng, i % 2 == 0);
            match cfg.policy {
                FaultPolicy::Abort => {
                    abort += 1;
                    // Budgets ride only with recovering policies.
                    assert!(cfg.budgets.is_unlimited(), "{:?}", cfg.budgets);
                }
                FaultPolicy::SkipPass => skip += 1,
                FaultPolicy::StopPipeline => stop += 1,
            }
            if !cfg.budgets.is_unlimited() {
                budgeted += 1;
                // Only the deterministic axes are sampled.
                assert!(cfg.budgets.max_pass_millis.is_none());
                assert!(cfg.budgets.max_pipeline_millis.is_none());
            }
            assert!(cfg.inject.is_none());
            assert!(cfg.probe_seed.is_none());
            assert_eq!(cfg.lir_spec.is_some(), i % 2 == 0);
            if cfg.lir_spec.is_some() {
                lowered += 1;
            }
            if cfg.cache_check {
                cached += 1;
            }
            if cfg.adaptive {
                // Adaptive layouts ride only with the lowering phase.
                assert!(cfg.lir_spec.is_some());
                adaptive += 1;
            }
        }
        assert!(
            abort > 60 && skip > 25 && stop > 25,
            "{abort}/{skip}/{stop}"
        );
        assert!(budgeted > 10, "budget axis never sampled");
        assert_eq!(lowered, 100);
        assert!(cached > 5, "cache-check axis never sampled");
        assert!(adaptive > 25, "adaptive axis never sampled: {adaptive}");
    }

    #[test]
    fn build_multi_matches_per_function_oracles() {
        let mut rng = SplitMix64::new(7);
        let progs: Vec<Vec<Op>> = (0..5).map(|_| random_ops(&mut rng, 25)).collect();
        let (m, expects) = build_multi(&progs);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(m.funcs.ids().count(), 5);
        for (i, expect) in expects.iter().enumerate() {
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name(&format!("main{i}"), vec![]).unwrap()[0]
                .as_int()
                .unwrap();
            assert_eq!(got, *expect, "func {i}, ops: {:?}", progs[i]);
        }
    }
}
