//! Random MUT-op sequence programs with a built-in oracle.
//!
//! This is the program generator of `tests/pipeline_differential.rs`,
//! promoted to a library so the fuzz harness, the reducer, and the
//! property tests all draw from the same distribution: a straight-line
//! prefix of sequence mutations (push/write/insert/remove/swap/
//! remove-range) followed by a fold loop, with a plain-Rust oracle
//! computing the expected result alongside.

use crate::rng::SplitMix64;
use memoir_ir::{CmpOp, Form, Module, ModuleBuilder, Type};
use std::fmt;
use std::str::FromStr;

/// One sequence mutation in the generated program. Indices are reduced
/// modulo the current length at build time, so any byte values are valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Append a value.
    Push(i8),
    /// Overwrite the element at index `i % len`.
    Write(u8, i8),
    /// Insert at index `i % (len + 1)`.
    InsertAt(u8, i8),
    /// Remove the element at index `i % len`.
    Remove(u8),
    /// Swap the elements at two (distinct-after-mod) indices.
    SwapElems(u8, u8),
    /// Remove the half-open range between two indices.
    RemoveRange(u8, u8),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Push(v) => write!(f, "push {v}"),
            Op::Write(i, v) => write!(f, "write {i} {v}"),
            Op::InsertAt(i, v) => write!(f, "insert {i} {v}"),
            Op::Remove(i) => write!(f, "remove {i}"),
            Op::SwapElems(a, b) => write!(f, "swap {a} {b}"),
            Op::RemoveRange(a, b) => write!(f, "remove-range {a} {b}"),
        }
    }
}

impl FromStr for Op {
    type Err = String;

    fn from_str(s: &str) -> Result<Op, String> {
        let mut it = s.split_whitespace();
        let head = it.next().ok_or("empty op")?;
        let mut arg = |name: &str| -> Result<i64, String> {
            it.next()
                .ok_or_else(|| format!("op `{head}` is missing its {name} argument"))?
                .parse::<i64>()
                .map_err(|_| format!("op `{s}` has a bad {name} argument"))
        };
        let op = match head {
            "push" => Op::Push(arg("value")? as i8),
            "write" => Op::Write(arg("index")? as u8, arg("value")? as i8),
            "insert" => Op::InsertAt(arg("index")? as u8, arg("value")? as i8),
            "remove" => Op::Remove(arg("index")? as u8),
            "swap" => Op::SwapElems(arg("index")? as u8, arg("index")? as u8),
            "remove-range" => Op::RemoveRange(arg("index")? as u8, arg("index")? as u8),
            other => return Err(format!("unknown op `{other}`")),
        };
        if it.next().is_some() {
            return Err(format!("op `{s}` has trailing arguments"));
        }
        Ok(op)
    }
}

/// Draws one random op (the `tests/pipeline_differential.rs` weights).
pub fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.below(11) {
        0..=2 => Op::Push(rng.next_u64() as i8),
        3..=4 => Op::Write(rng.next_u64() as u8, rng.next_u64() as i8),
        5..=6 => Op::InsertAt(rng.next_u64() as u8, rng.next_u64() as i8),
        7 => Op::Remove(rng.next_u64() as u8),
        8..=9 => Op::SwapElems(rng.next_u64() as u8, rng.next_u64() as u8),
        _ => Op::RemoveRange(rng.next_u64() as u8, rng.next_u64() as u8),
    }
}

/// Draws a random op sequence of length `0..max_len`.
pub fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let n = rng.index(max_len.max(1));
    (0..n).map(|_| random_op(rng)).collect()
}

/// Builds the module and the oracle result together (indices are clamped
/// identically in both, so every op list is a valid program).
pub fn build(ops: &[Op]) -> (Module, i64) {
    let mut oracle: Vec<i64> = Vec::new();
    let mut mb = ModuleBuilder::new("fuzz");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let zero = b.index(0);
        let s = b.new_seq(i64t, zero);
        for o in ops {
            match *o {
                Op::Push(v) => {
                    let sz = b.size(s);
                    let vv = b.i64(v as i64);
                    b.mut_insert(s, sz, Some(vv));
                    oracle.push(v as i64);
                }
                Op::Write(i, v) => {
                    if !oracle.is_empty() {
                        let i = i as usize % oracle.len();
                        let iv = b.index(i as u64);
                        let vv = b.i64(v as i64);
                        b.mut_write(s, iv, vv);
                        oracle[i] = v as i64;
                    }
                }
                Op::InsertAt(i, v) => {
                    let i = i as usize % (oracle.len() + 1);
                    let iv = b.index(i as u64);
                    let vv = b.i64(v as i64);
                    b.mut_insert(s, iv, Some(vv));
                    oracle.insert(i, v as i64);
                }
                Op::Remove(i) => {
                    if !oracle.is_empty() {
                        let i = i as usize % oracle.len();
                        let iv = b.index(i as u64);
                        b.mut_remove(s, iv);
                        oracle.remove(i);
                    }
                }
                Op::SwapElems(a, c) => {
                    if !oracle.is_empty() {
                        let a = a as usize % oracle.len();
                        let c = c as usize % oracle.len();
                        // Disjoint or identical single-element ranges only.
                        if a != c {
                            let av = b.index(a as u64);
                            let a1 = b.index(a as u64 + 1);
                            let cv = b.index(c as u64);
                            b.mut_swap(s, av, a1, cv);
                            oracle.swap(a, c);
                        }
                    }
                }
                Op::RemoveRange(a, c) => {
                    if !oracle.is_empty() {
                        let a = a as usize % oracle.len();
                        let c = c as usize % oracle.len();
                        let (lo, hi) = (a.min(c), a.max(c));
                        let lov = b.index(lo as u64);
                        let hiv = b.index(hi as u64);
                        b.mut_remove_range(s, lov, hiv);
                        oracle.drain(lo..hi);
                    }
                }
            }
        }
        // Epilogue: fold the sequence with a loop: acc = Σ (2*acc + elem).
        let idxt = b.ty(Type::Index);
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        let zero64 = b.i64(0);
        let pre = b.current_block();
        b.jump(header);
        b.switch_to(header);
        let i = b.phi_placeholder(idxt);
        let acc = b.phi_placeholder(i64t);
        b.add_phi_incoming(i, pre, zero);
        b.add_phi_incoming(acc, pre, zero64);
        let sz = b.size(s);
        let done = b.cmp(CmpOp::Ge, i, sz);
        b.branch(done, exit, body);
        b.switch_to(body);
        let v = b.read(s, i);
        let two = b.i64(2);
        let acc2x = b.mul(acc, two);
        let acc2 = b.add(acc2x, v);
        let one = b.index(1);
        let next = b.add(i, one);
        let bb = b.current_block();
        b.add_phi_incoming(i, bb, next);
        b.add_phi_incoming(acc, bb, acc2);
        b.jump(header);
        b.switch_to(exit);
        b.returns(&[i64t]);
        b.ret(vec![acc]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    let expect = oracle
        .iter()
        .fold(0i64, |a, &v| a.wrapping_mul(2).wrapping_add(v));
    (m, expect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_as_text() {
        let ops = vec![
            Op::Push(-3),
            Op::Write(4, 7),
            Op::InsertAt(2, -1),
            Op::Remove(0),
            Op::SwapElems(1, 2),
            Op::RemoveRange(1, 3),
        ];
        for op in &ops {
            let text = op.to_string();
            assert_eq!(text.parse::<Op>().unwrap(), *op, "{text}");
        }
        assert!("push".parse::<Op>().is_err());
        assert!("nuke 1".parse::<Op>().is_err());
        assert!("push 1 2".parse::<Op>().is_err());
    }

    #[test]
    fn build_matches_the_oracle() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10 {
            let ops = random_ops(&mut rng, 30);
            let (m, expect) = build(&ops);
            memoir_ir::verifier::assert_valid(&m);
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
            assert_eq!(got, expect, "ops: {ops:?}");
        }
    }
}
