//! Random MUT-op sequence programs with a built-in oracle.
//!
//! This is the program generator of `tests/pipeline_differential.rs`,
//! promoted to a library so the fuzz harness, the reducer, and the
//! property tests all draw from the same distribution: a straight-line
//! prefix of sequence mutations (push/write/insert/remove/swap/
//! remove-range) and associative-array mutations (assoc-insert/remove/
//! has/keys over a small key universe) followed by two fold loops — one
//! over the sequence, one over the assoc's insertion-ordered keys — with
//! a plain-Rust oracle computing the expected result alongside.

use crate::harness::CaseConfig;
use crate::rng::SplitMix64;
use memoir_ir::{CmpOp, Form, FunctionBuilder, Module, ModuleBuilder, Type};
use passman::{Budgets, FaultPolicy};
use std::fmt;
use std::str::FromStr;

/// One collection mutation in the generated program. Sequence indices are
/// reduced modulo the current length at build time and assoc keys modulo
/// a small key universe, so any byte values are valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Append a value.
    Push(i8),
    /// Overwrite the element at index `i % len`.
    Write(u8, i8),
    /// Insert at index `i % (len + 1)`.
    InsertAt(u8, i8),
    /// Remove the element at index `i % len`.
    Remove(u8),
    /// Swap the elements at two (distinct-after-mod) indices.
    SwapElems(u8, u8),
    /// Remove the half-open range between two indices.
    RemoveRange(u8, u8),
    /// Insert (or overwrite) key `k % 16` in the assoc.
    AssocInsert(u8, i8),
    /// Remove key `k % 16` from the assoc (emitted only when present —
    /// removal of a missing key traps).
    AssocRemove(u8),
    /// Probe key `k % 16` and fold the boolean into the result
    /// (position-weighted, so reorderings are observable).
    AssocHas(u8),
    /// Take the key-sequence size and fold it into the result
    /// (position-weighted).
    AssocKeys,
}

/// Assoc keys are drawn from `0..ASSOC_KEYS` so that inserts, removes and
/// probes collide often enough to exercise overwrite and miss paths.
pub const ASSOC_KEYS: u8 = 16;

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Push(v) => write!(f, "push {v}"),
            Op::Write(i, v) => write!(f, "write {i} {v}"),
            Op::InsertAt(i, v) => write!(f, "insert {i} {v}"),
            Op::Remove(i) => write!(f, "remove {i}"),
            Op::SwapElems(a, b) => write!(f, "swap {a} {b}"),
            Op::RemoveRange(a, b) => write!(f, "remove-range {a} {b}"),
            Op::AssocInsert(k, v) => write!(f, "assoc-insert {k} {v}"),
            Op::AssocRemove(k) => write!(f, "assoc-remove {k}"),
            Op::AssocHas(k) => write!(f, "assoc-has {k}"),
            Op::AssocKeys => write!(f, "assoc-keys"),
        }
    }
}

impl FromStr for Op {
    type Err = String;

    fn from_str(s: &str) -> Result<Op, String> {
        let mut it = s.split_whitespace();
        let head = it.next().ok_or("empty op")?;
        let mut arg = |name: &str| -> Result<i64, String> {
            it.next()
                .ok_or_else(|| format!("op `{head}` is missing its {name} argument"))?
                .parse::<i64>()
                .map_err(|_| format!("op `{s}` has a bad {name} argument"))
        };
        let op = match head {
            "push" => Op::Push(arg("value")? as i8),
            "write" => Op::Write(arg("index")? as u8, arg("value")? as i8),
            "insert" => Op::InsertAt(arg("index")? as u8, arg("value")? as i8),
            "remove" => Op::Remove(arg("index")? as u8),
            "swap" => Op::SwapElems(arg("index")? as u8, arg("index")? as u8),
            "remove-range" => Op::RemoveRange(arg("index")? as u8, arg("index")? as u8),
            "assoc-insert" => Op::AssocInsert(arg("key")? as u8, arg("value")? as i8),
            "assoc-remove" => Op::AssocRemove(arg("key")? as u8),
            "assoc-has" => Op::AssocHas(arg("key")? as u8),
            "assoc-keys" => Op::AssocKeys,
            other => return Err(format!("unknown op `{other}`")),
        };
        if it.next().is_some() {
            return Err(format!("op `{s}` has trailing arguments"));
        }
        Ok(op)
    }
}

/// Draws one random op (the `tests/pipeline_differential.rs` weights,
/// extended with the associative ops).
pub fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.below(16) {
        0..=2 => Op::Push(rng.next_u64() as i8),
        3..=4 => Op::Write(rng.next_u64() as u8, rng.next_u64() as i8),
        5..=6 => Op::InsertAt(rng.next_u64() as u8, rng.next_u64() as i8),
        7 => Op::Remove(rng.next_u64() as u8),
        8..=9 => Op::SwapElems(rng.next_u64() as u8, rng.next_u64() as u8),
        10 => Op::RemoveRange(rng.next_u64() as u8, rng.next_u64() as u8),
        11..=12 => Op::AssocInsert(rng.next_u64() as u8, rng.next_u64() as i8),
        13 => Op::AssocRemove(rng.next_u64() as u8),
        14 => Op::AssocHas(rng.next_u64() as u8),
        _ => Op::AssocKeys,
    }
}

/// Draws a random op sequence of length `0..max_len`.
pub fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let n = rng.index(max_len.max(1));
    (0..n).map(|_| random_op(rng)).collect()
}

/// Emits one program body into a function builder and returns the oracle
/// result. The function takes no parameters and returns one `i64`:
/// `seq_fold + position-weighted has/keys probes + assoc_fold`.
fn emit_body(b: &mut FunctionBuilder<'_>, ops: &[Op]) -> i64 {
    let mut seq_oracle: Vec<i64> = Vec::new();
    // Insertion-ordered, mirroring the interpreter's assoc key order.
    let mut assoc_oracle: Vec<(i64, i64)> = Vec::new();
    let mut extra_oracle: i64 = 0;

    let i64t = b.ty(Type::I64);
    let idxt = b.ty(Type::Index);
    let zero = b.index(0);
    let zero64 = b.i64(0);
    let s = b.new_seq(i64t, zero);
    let a = b.new_assoc(i64t, i64t);
    // Running accumulator for the probe ops (straight-line, entry block).
    let mut extra = zero64;
    for (pos, o) in ops.iter().enumerate() {
        let weight = pos as i64 + 1;
        match *o {
            Op::Push(v) => {
                let sz = b.size(s);
                let vv = b.i64(v as i64);
                b.mut_insert(s, sz, Some(vv));
                seq_oracle.push(v as i64);
            }
            Op::Write(i, v) => {
                if !seq_oracle.is_empty() {
                    let i = i as usize % seq_oracle.len();
                    let iv = b.index(i as u64);
                    let vv = b.i64(v as i64);
                    b.mut_write(s, iv, vv);
                    seq_oracle[i] = v as i64;
                }
            }
            Op::InsertAt(i, v) => {
                let i = i as usize % (seq_oracle.len() + 1);
                let iv = b.index(i as u64);
                let vv = b.i64(v as i64);
                b.mut_insert(s, iv, Some(vv));
                seq_oracle.insert(i, v as i64);
            }
            Op::Remove(i) => {
                if !seq_oracle.is_empty() {
                    let i = i as usize % seq_oracle.len();
                    let iv = b.index(i as u64);
                    b.mut_remove(s, iv);
                    seq_oracle.remove(i);
                }
            }
            Op::SwapElems(x, c) => {
                if !seq_oracle.is_empty() {
                    let x = x as usize % seq_oracle.len();
                    let c = c as usize % seq_oracle.len();
                    // Disjoint or identical single-element ranges only.
                    if x != c {
                        let xv = b.index(x as u64);
                        let x1 = b.index(x as u64 + 1);
                        let cv = b.index(c as u64);
                        b.mut_swap(s, xv, x1, cv);
                        seq_oracle.swap(x, c);
                    }
                }
            }
            Op::RemoveRange(x, c) => {
                if !seq_oracle.is_empty() {
                    let x = x as usize % seq_oracle.len();
                    let c = c as usize % seq_oracle.len();
                    let (lo, hi) = (x.min(c), x.max(c));
                    let lov = b.index(lo as u64);
                    let hiv = b.index(hi as u64);
                    b.mut_remove_range(s, lov, hiv);
                    seq_oracle.drain(lo..hi);
                }
            }
            Op::AssocInsert(k, v) => {
                let key = (k % ASSOC_KEYS) as i64;
                let kv = b.i64(key);
                let vv = b.i64(v as i64);
                b.mut_insert(a, kv, Some(vv));
                // Overwrite keeps the original insertion position.
                match assoc_oracle.iter_mut().find(|(ek, _)| *ek == key) {
                    Some(e) => e.1 = v as i64,
                    None => assoc_oracle.push((key, v as i64)),
                }
            }
            Op::AssocRemove(k) => {
                let key = (k % ASSOC_KEYS) as i64;
                if assoc_oracle.iter().any(|(ek, _)| *ek == key) {
                    let kv = b.i64(key);
                    b.mut_remove(a, kv);
                    assoc_oracle.retain(|(ek, _)| *ek != key);
                }
            }
            Op::AssocHas(k) => {
                let key = (k % ASSOC_KEYS) as i64;
                let kv = b.i64(key);
                let h = b.has(a, kv);
                let w = b.i64(weight);
                let hit = b.select(h, w, zero64);
                extra = b.add(extra, hit);
                if assoc_oracle.iter().any(|(ek, _)| *ek == key) {
                    extra_oracle = extra_oracle.wrapping_add(weight);
                }
            }
            Op::AssocKeys => {
                let ks = b.keys(a);
                let n = b.size(ks);
                let ni = b.cast(Type::I64, n);
                let w = b.i64(weight);
                let term = b.mul(ni, w);
                extra = b.add(extra, term);
                extra_oracle =
                    extra_oracle.wrapping_add(weight.wrapping_mul(assoc_oracle.len() as i64));
            }
        }
    }

    // Epilogue 1: fold the sequence with a loop: acc = Σ (2*acc + elem).
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    let pre = b.current_block();
    b.jump(header);
    b.switch_to(header);
    let i = b.phi_placeholder(idxt);
    let acc = b.phi_placeholder(i64t);
    b.add_phi_incoming(i, pre, zero);
    b.add_phi_incoming(acc, pre, zero64);
    let sz = b.size(s);
    let done = b.cmp(CmpOp::Ge, i, sz);
    b.branch(done, exit, body);
    b.switch_to(body);
    let v = b.read(s, i);
    let two = b.i64(2);
    let acc2x = b.mul(acc, two);
    let acc2 = b.add(acc2x, v);
    let one = b.index(1);
    let next = b.add(i, one);
    let bb = b.current_block();
    b.add_phi_incoming(i, bb, next);
    b.add_phi_incoming(acc, bb, acc2);
    b.jump(header);
    b.switch_to(exit);

    // Epilogue 2: fold the assoc through its insertion-ordered key
    // sequence, weighting by position so key-order bugs are observable:
    // kacc = Σ_j (j+1) * (key_j + 2*value_j).
    let ks = b.keys(a);
    let ksz = b.size(ks);
    let header2 = b.block("kheader");
    let body2 = b.block("kbody");
    let exit2 = b.block("kexit");
    let pre2 = b.current_block();
    b.jump(header2);
    b.switch_to(header2);
    let j = b.phi_placeholder(idxt);
    let kacc = b.phi_placeholder(i64t);
    b.add_phi_incoming(j, pre2, zero);
    b.add_phi_incoming(kacc, pre2, zero64);
    let done2 = b.cmp(CmpOp::Ge, j, ksz);
    b.branch(done2, exit2, body2);
    b.switch_to(body2);
    let key = b.read(ks, j);
    let val = b.read(a, key);
    let jv = b.cast(Type::I64, j);
    let one64 = b.i64(1);
    let w = b.add(jv, one64);
    let val2 = b.mul(val, two);
    let kv2 = b.add(key, val2);
    let term = b.mul(w, kv2);
    let kacc2 = b.add(kacc, term);
    let next2 = b.add(j, one);
    let bb2 = b.current_block();
    b.add_phi_incoming(j, bb2, next2);
    b.add_phi_incoming(kacc, bb2, kacc2);
    b.jump(header2);
    b.switch_to(exit2);
    let t1 = b.add(acc, extra);
    let total = b.add(t1, kacc);
    b.returns(&[i64t]);
    b.ret(vec![total]);

    let seq_fold = seq_oracle
        .iter()
        .fold(0i64, |x, &v| x.wrapping_mul(2).wrapping_add(v));
    let assoc_fold = assoc_oracle
        .iter()
        .enumerate()
        .fold(0i64, |x, (j, &(k, v))| {
            let w = j as i64 + 1;
            x.wrapping_add(w.wrapping_mul(k.wrapping_add(v.wrapping_mul(2))))
        });
    seq_fold.wrapping_add(extra_oracle).wrapping_add(assoc_fold)
}

/// Samples a per-case harness configuration, so a campaign varies the
/// fault policy and budgets *per case* instead of fixing them for the
/// whole run (explicit `--on-fault`/`--budget` flags pin them again).
///
/// Policy is Abort half the time (every fault is a crash) and a
/// recovering policy otherwise (rollback soundness is the fuzzed
/// property). Budgets are sampled only alongside recovering policies and
/// only on the deterministic axes — a fixpoint iteration cap (never a
/// fault, just an earlier stop) and a growth factor generous enough
/// (8–16×) that legitimate passes stay far inside it; wall-clock budgets
/// would make campaigns flaky. `lower` makes it a through-lowering case
/// with a random [`random_lir_spec`](crate::genspec::random_lir_spec)
/// phase. Injection plans are never sampled: they come only from the
/// `--inject` flag.
pub fn random_case_config(rng: &mut SplitMix64, lower: bool) -> CaseConfig {
    let policy = match rng.below(4) {
        0 | 1 => FaultPolicy::Abort,
        2 => FaultPolicy::SkipPass,
        _ => FaultPolicy::StopPipeline,
    };
    let mut budgets = Budgets::none();
    if policy != FaultPolicy::Abort {
        if rng.chance(1, 3) {
            budgets.max_fixpoint_iters = Some([1, 2, 4][rng.index(3)]);
        }
        if rng.chance(1, 4) {
            budgets.max_growth = Some([8.0, 16.0][rng.index(2)]);
        }
    }
    CaseConfig {
        policy,
        inject: None,
        budgets,
        lir_spec: if lower {
            Some(crate::genspec::random_lir_spec(rng))
        } else {
            None
        },
    }
}

/// Builds the module and the oracle result together (indices are clamped
/// identically in both, so every op list is a valid program).
pub fn build(ops: &[Op]) -> (Module, i64) {
    let mut expect = 0i64;
    let mut mb = ModuleBuilder::new("fuzz");
    mb.func("main", Form::Mut, |b| {
        expect = emit_body(b, ops);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    (m, expect)
}

/// Builds one module containing one generated function per op list
/// (`main0`, `main1`, …), with the oracle result for each — multi-function
/// subjects for the sharded pass executor. The entry is `main0`.
pub fn build_multi(progs: &[Vec<Op>]) -> (Module, Vec<i64>) {
    let mut expects = Vec::with_capacity(progs.len());
    let mut mb = ModuleBuilder::new("fuzz-multi");
    for (i, ops) in progs.iter().enumerate() {
        let name = format!("main{i}");
        mb.func(&name, Form::Mut, |b| {
            expects.push(emit_body(b, ops));
        });
    }
    let mut m = mb.finish();
    m.entry = m.func_by_name("main0");
    (m, expects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_as_text() {
        let ops = vec![
            Op::Push(-3),
            Op::Write(4, 7),
            Op::InsertAt(2, -1),
            Op::Remove(0),
            Op::SwapElems(1, 2),
            Op::RemoveRange(1, 3),
            Op::AssocInsert(5, -9),
            Op::AssocRemove(5),
            Op::AssocHas(21),
            Op::AssocKeys,
        ];
        for op in &ops {
            let text = op.to_string();
            assert_eq!(text.parse::<Op>().unwrap(), *op, "{text}");
        }
        assert!("push".parse::<Op>().is_err());
        assert!("nuke 1".parse::<Op>().is_err());
        assert!("push 1 2".parse::<Op>().is_err());
        assert!("assoc-insert 1".parse::<Op>().is_err());
        assert!("assoc-keys 1".parse::<Op>().is_err());
    }

    #[test]
    fn build_matches_the_oracle() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10 {
            let ops = random_ops(&mut rng, 30);
            let (m, expect) = build(&ops);
            memoir_ir::verifier::assert_valid(&m);
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
            assert_eq!(got, expect, "ops: {ops:?}");
        }
    }

    #[test]
    fn assoc_ops_hit_overwrite_and_probe_paths() {
        let ops = vec![
            Op::AssocHas(3),       // miss: weight 1 not added
            Op::AssocInsert(3, 5), // {3: 5}
            Op::AssocInsert(3, 7), // overwrite in place: {3: 7}
            Op::AssocInsert(4, 1), // {3: 7, 4: 1}
            Op::AssocHas(3),       // hit: +5
            Op::AssocKeys,         // +6 * 2 keys
            Op::AssocRemove(4),    // {3: 7}
            Op::AssocRemove(4),    // absent: not emitted
            Op::AssocKeys,         // +9 * 1 key
        ];
        let (m, expect) = build(&ops);
        memoir_ir::verifier::assert_valid(&m);
        // extra = 5 + 12 + 9 = 26; assoc fold = 1*(3 + 2*7) = 17.
        assert_eq!(expect, 26 + 17);
        let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
        let got = vm.run_by_name("main", vec![]).unwrap()[0].as_int().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn random_case_configs_cover_the_policy_space() {
        let mut rng = SplitMix64::new(17);
        let (mut abort, mut skip, mut stop, mut budgeted, mut lowered) = (0, 0, 0, 0, 0);
        for i in 0..200 {
            let cfg = random_case_config(&mut rng, i % 2 == 0);
            match cfg.policy {
                FaultPolicy::Abort => {
                    abort += 1;
                    // Budgets ride only with recovering policies.
                    assert!(cfg.budgets.is_unlimited(), "{:?}", cfg.budgets);
                }
                FaultPolicy::SkipPass => skip += 1,
                FaultPolicy::StopPipeline => stop += 1,
            }
            if !cfg.budgets.is_unlimited() {
                budgeted += 1;
                // Only the deterministic axes are sampled.
                assert!(cfg.budgets.max_pass_millis.is_none());
                assert!(cfg.budgets.max_pipeline_millis.is_none());
            }
            assert!(cfg.inject.is_none());
            assert_eq!(cfg.lir_spec.is_some(), i % 2 == 0);
            if cfg.lir_spec.is_some() {
                lowered += 1;
            }
        }
        assert!(
            abort > 60 && skip > 25 && stop > 25,
            "{abort}/{skip}/{stop}"
        );
        assert!(budgeted > 10, "budget axis never sampled");
        assert_eq!(lowered, 100);
    }

    #[test]
    fn build_multi_matches_per_function_oracles() {
        let mut rng = SplitMix64::new(7);
        let progs: Vec<Vec<Op>> = (0..5).map(|_| random_ops(&mut rng, 25)).collect();
        let (m, expects) = build_multi(&progs);
        memoir_ir::verifier::assert_valid(&m);
        assert_eq!(m.funcs.ids().count(), 5);
        for (i, expect) in expects.iter().enumerate() {
            let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
            let got = vm.run_by_name(&format!("main{i}"), vec![]).unwrap()[0]
                .as_int()
                .unwrap();
            assert_eq!(got, *expect, "func {i}, ops: {:?}", progs[i]);
        }
    }
}
