//! Random — but always well-formed — pipeline specs.
//!
//! Generated specs follow the phase discipline the real driver enforces:
//! `ssa-construct` first, a run of SSA-form middle passes (possibly
//! wrapped in a `fixpoint` group), `ssa-destruct`, then MUT-form layout
//! passes. That keeps every generated spec *valid*, so any failure the
//! harness sees is a genuine pipeline bug rather than a phase-ordering
//! usage error. The use-phi passes are excluded: they are subroutines of
//! ssa-construct/destruct, not standalone pipeline stages.

use crate::rng::SplitMix64;
use passman::{PassCall, PipelineSpec, SpecStep};

/// SSA-form middle-end passes safe to run in any order between
/// construction and destruction.
pub const MIDDLE_POOL: &[&str] = &[
    "constprop",
    "simplify",
    "fusion",
    "dce",
    "sink",
    "dee",
    "dee-strict",
    "dee-specialize",
];

/// MUT-form layout passes safe to run after `ssa-destruct`.
pub const LAYOUT_POOL: &[&str] = &["field-elision", "rie", "key-fold", "dfe"];

/// Low-level IR passes safe to run in any order after `mem2reg`.
pub const LIR_POOL: &[&str] = &["constfold", "gvn", "sink", "dce"];

/// Draws a random well-formed spec: 0–4 middle passes (one group of
/// which may become a `fixpoint<max=3>(...)`), then 0–2 layout passes.
pub fn random_spec(rng: &mut SplitMix64) -> PipelineSpec {
    let mut steps = vec![SpecStep::pass("ssa-construct")];

    let n_middle = rng.index(5);
    let mut middle: Vec<PassCall> = (0..n_middle)
        .map(|_| PassCall::named(MIDDLE_POOL[rng.index(MIDDLE_POOL.len())]))
        .collect();
    // Sometimes wrap a suffix of the middle run in a fixpoint group.
    if middle.len() >= 2 && rng.chance(1, 3) {
        let at = rng.index(middle.len() - 1);
        let body = middle.split_off(at);
        steps.extend(middle.drain(..).map(SpecStep::Pass));
        let mut fix = SpecStep::fixpoint(body.iter().map(|c| c.name.clone()));
        if let SpecStep::Fixpoint { opts, .. } = &mut fix {
            *opts =
                passman::PassOptions::from_pairs(vec![("max".to_string(), Some("3".to_string()))]);
        }
        steps.push(fix);
    } else {
        steps.extend(middle.drain(..).map(SpecStep::Pass));
    }

    steps.push(SpecStep::pass("ssa-destruct"));
    for _ in 0..rng.index(3) {
        steps.push(SpecStep::pass(LAYOUT_POOL[rng.index(LAYOUT_POOL.len())]));
    }
    PipelineSpec::new(steps)
}

/// Draws a random low-level-IR pipeline for the post-lowering phase of a
/// through-lowering fuzz case: usually `mem2reg` first (the lir analogue
/// of SSA construction — every lir pass is also valid without it), then
/// 0–4 scalar passes, one run of which may become a `fixpoint<max=3>`
/// group.
pub fn random_lir_spec(rng: &mut SplitMix64) -> PipelineSpec {
    let mut steps = Vec::new();
    if rng.chance(3, 4) {
        steps.push(SpecStep::pass("mem2reg"));
    }
    let n = rng.index(5);
    let mut run: Vec<PassCall> = (0..n)
        .map(|_| PassCall::named(LIR_POOL[rng.index(LIR_POOL.len())]))
        .collect();
    if run.len() >= 2 && rng.chance(1, 3) {
        let at = rng.index(run.len() - 1);
        let body = run.split_off(at);
        steps.extend(run.drain(..).map(SpecStep::Pass));
        let mut fix = SpecStep::fixpoint(body.iter().map(|c| c.name.clone()));
        if let SpecStep::Fixpoint { opts, .. } = &mut fix {
            *opts =
                passman::PassOptions::from_pairs(vec![("max".to_string(), Some("3".to_string()))]);
        }
        steps.push(fix);
    } else {
        steps.extend(run.drain(..).map(SpecStep::Pass));
    }
    PipelineSpec::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_specs_are_well_formed_and_round_trip() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let spec = random_spec(&mut rng);
            let names = spec.pass_names();
            assert_eq!(names.first(), Some(&"ssa-construct"));
            assert!(names.contains(&"ssa-destruct"));
            let text = spec.to_string();
            assert_eq!(PipelineSpec::parse(&text).unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn pool_names_are_all_registered() {
        let reg = memoir_opt::passes::registry();
        for name in MIDDLE_POOL.iter().chain(LAYOUT_POOL) {
            assert!(reg.create(name).is_some(), "unregistered pass `{name}`");
        }
    }

    #[test]
    fn random_lir_specs_are_well_formed_and_round_trip() {
        let reg = lir::passes::registry();
        for name in std::iter::once(&"mem2reg").chain(LIR_POOL) {
            assert!(reg.create(name).is_some(), "unregistered lir pass `{name}`");
        }
        let mut rng = SplitMix64::new(9);
        let mut nonempty = 0;
        for _ in 0..50 {
            let spec = random_lir_spec(&mut rng);
            if spec.steps.is_empty() {
                continue; // "lower only" — valid, but nothing to round-trip
            }
            nonempty += 1;
            let text = spec.to_string();
            assert_eq!(PipelineSpec::parse(&text).unwrap(), spec, "{text}");
        }
        assert!(nonempty > 25, "generator collapsed to empty specs");
    }
}
