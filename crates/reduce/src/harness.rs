//! The fuzz oracle: run one generated case through the pipeline and
//! classify the result.
//!
//! A case is (program, pipeline spec, [`CaseConfig`]). The program
//! ([`CaseProgram`]) is `main`'s op list plus optional helper functions;
//! the config carries the per-case fault policy, budgets, optional fault
//! injection, an optional per-function probe seed, and — for
//! *through-lowering* cases — the low-level IR pipeline to run after the
//! `lower` stage. The harness builds the MUT-form module, runs the
//! pipeline with inter-pass verification forced on and panics caught,
//! then checks the result differentially:
//!
//! 1. the optimized MEMOIR module must verify and agree with the plain
//!    Rust oracle in `memoir-interp` (rollback soundness: this holds
//!    even when a pass or the lowering stage degraded);
//! 2. every non-entry function whose signature survived optimization is
//!    probed on typed argument vectors synthesized by
//!    `memoir-lower::validate` — pre-opt vs post-opt interpreter runs
//!    must agree on both return values and the final contents of
//!    collection arguments (`probe-diverge`);
//! 3. for through-lowering cases, the *direct* lowering of the optimized
//!    MEMOIR module must agree with the oracle on [`lir::LirMachine`]
//!    (isolates `memoir-lower` bugs: `lower-trap` / `lower-miscompile`),
//!    and with the MEMOIR interpreter on synthesized scalar probes
//!    (`lower-probe`);
//! 4. and the pipeline's final, lir-optimized module must verify and
//!    agree too (isolates lir pass bugs: `lir-verify` / `lir-trap` /
//!    `lir-miscompile`).
//!
//! Anything other than "completed and computed the right answer" is a
//! [`Crash`] — including a *degraded* run whose recovered module no
//! longer matches the oracle, which is exactly the rollback soundness
//! the fault-tolerance layer promises.
//!
//! [`Crash`]: Outcome::Crash

use crate::genprog::{build_case, CaseProgram, Helper, Op};
use memoir_opt::lowering::{compile_lowered_with, LowerConfig, LoweredPipeline, LOWER_STAGE};
use memoir_opt::pipeline::compile_spec_with;
use passman::{Budgets, FaultPlan, FaultPolicy, PassOptions, PipelineSpec, RunError, SpecStep};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Interpreter fuel for the differential checks, on either IR.
const FUEL: u64 = 50_000_000;

/// Campaign-wide lowering cross-check tallies (oracle 3), so a fuzz run
/// can report how much of its coverage was symbolically discharged and
/// — crucially — how many functions were silently skipped.
static CC_PROVED: AtomicU64 = AtomicU64::new(0);
static CC_PROBED: AtomicU64 = AtomicU64::new(0);
static CC_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Totals of the lowering cross-check across every case this process has
/// run: functions proved probe-free by the symbolic backend, functions
/// that fell back to concrete probing, and functions skipped outright
/// (non-scalar signatures, no synthesizable probes). `memoir-fuzz`
/// prints these at the end of a campaign.
pub fn cross_check_totals() -> (u64, u64, u64) {
    (
        CC_PROVED.load(Ordering::Relaxed),
        CC_PROBED.load(Ordering::Relaxed),
        CC_SKIPPED.load(Ordering::Relaxed),
    )
}

/// Synthesized probe vectors per preserved function (see
/// [`CaseConfig::probe_seed`]).
const PROBES_PER_FUNC: u64 = 3;

/// How to configure the pass manager for a fuzz case (fixed across a
/// reduction, varied across a campaign — see
/// [`random_case_config`](crate::genprog::random_case_config)).
#[derive(Clone, Debug)]
pub struct CaseConfig {
    /// Fault policy for the run (`Abort` makes every fault a crash;
    /// `SkipPass`/`StopPipeline` exercise rollback instead).
    pub policy: FaultPolicy,
    /// Test-only fault injection plan, replayed exactly.
    pub inject: Option<FaultPlan>,
    /// Pipeline-wide budgets (violations fault under the policy above).
    pub budgets: Budgets,
    /// `Some(spec)` makes this a through-lowering case: after the MEMOIR
    /// phase the module runs through the `lower` stage and then `spec`
    /// on the low-level IR (the spec may be empty — "lower only").
    pub lir_spec: Option<PipelineSpec>,
    /// Lower through the adaptive representation selector
    /// (`memoir_analysis::choose_reprs`): collections the analysis
    /// proves bounded-integer-keyed or small-and-fixed lower to dense /
    /// inline layouts instead of the default hashed runtime. Only
    /// meaningful on through-lowering cases; the differential oracles
    /// must hold bit-for-bit regardless of the layout chosen.
    pub adaptive: bool,
    /// `Some(seed)` turns on per-function probing: every non-entry
    /// function whose signature survived the pipeline is run pre-opt and
    /// post-opt on typed argument vectors synthesized from `seed` (see
    /// `memoir_lower::validate::synth_args`), and — for through-lowering
    /// cases — the direct lowering is cross-checked on the same seeds.
    pub probe_seed: Option<u64>,
    /// Turns on the cached-vs-cold differential oracle: the case is
    /// compiled twice more through one shared
    /// [`passman::CompileCache`] — the second (warm) run must produce a
    /// byte-identical module and an equivalent report (pass names,
    /// changed flags, stats, degradations; timings and the cache's own
    /// counters excluded). A mismatch is a `cache-diverge` crash.
    pub cache_check: bool,
    /// `Some(plan)` turns on the service-envelope differential oracle:
    /// the case is compiled twice more through a one-job
    /// [`memoird`] service — once clean and once under `plan`
    /// (`slow-job@0`, `worker-panic@0`, `poison-cache@0`, …). Both runs
    /// must resolve the job to exactly one terminal outcome
    /// (`service-lost` otherwise) and, because every injected fault is
    /// recoverable by the retry ladder, produce byte-identical output
    /// (`service-diverge` otherwise). Run only on cases that already
    /// pass the plain oracles, so any failure is the envelope's fault.
    pub service_fault: Option<memoird::JobFaultPlan>,
    /// Turns on the symbolic-oracle axis: for cases that pass the plain
    /// oracles, every function of the pre-opt module is (a) checked for
    /// symbolic/concrete agreement — the bounded path enumeration's
    /// prediction on concrete arguments must match the interpreter
    /// (`sym-unsound` otherwise: a bug in the oracle itself) — and (b)
    /// proved equivalent to its post-opt namesake with
    /// `symexec::prove_memoir_equiv` (`sym-diverge` on a confirmed
    /// witness: a miscompile the probe oracles missed).
    pub sym: bool,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            policy: FaultPolicy::Abort,
            inject: None,
            budgets: Budgets::none(),
            lir_spec: None,
            adaptive: false,
            probe_seed: None,
            cache_check: false,
            service_fault: None,
            sym: false,
        }
    }
}

/// The classified result of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Pipeline completed and the optimized module matches the oracle.
    Pass,
    /// Something went wrong.
    Crash {
        /// Stable failure class — reduction holds this fixed so it
        /// shrinks toward *the same* bug. MEMOIR-side classes: `panic`,
        /// `run-error`, `verify`, `miscompile`, `interp`, and
        /// `probe-diverge` (a preserved-signature function disagrees
        /// with its pre-optimization self on synthesized arguments).
        /// Lowering-side classes: `lower-error` (the stage failed),
        /// `lower-verify` (the lir verifier or the cross-IR probe
        /// oracle rejected the stage output), `lower-trap` /
        /// `lower-miscompile` (the direct lowering disagrees with the
        /// oracle), `lower-probe` (it disagrees with the MEMOIR
        /// interpreter on synthesized scalar probes), `lir-verify` /
        /// `lir-trap` / `lir-miscompile` (the lir-optimized module
        /// does). Service-side classes (see
        /// [`CaseConfig::service_fault`]): `service-lost` (a one-job
        /// `memoird` batch did not resolve to exactly one terminal
        /// outcome) and `service-diverge` (the fault-injected service
        /// run produced different bytes than the clean one, or failed a
        /// recoverable fault outright). Symbolic-oracle classes (see
        /// [`CaseConfig::sym`]): `sym-diverge` (the bounded symbolic
        /// oracle proved pre-opt ≢ post-opt with a concretely confirmed
        /// witness) and `sym-unsound` (the oracle's own path-set
        /// prediction disagrees with the concrete interpreter — a bug in
        /// the oracle, not the pipeline). Artifact format:
        /// `docs/REPRO_FORMAT.md`.
        kind: &'static str,
        /// Human-readable one-liner.
        detail: String,
    },
}

impl Outcome {
    /// The failure class, if this is a crash.
    pub fn kind(&self) -> Option<&'static str> {
        match self {
            Outcome::Pass => None,
            Outcome::Crash { kind, .. } => Some(kind),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Verifies the (post-pipeline) MEMOIR module and runs it against the
/// oracle; `None` means both checks passed.
fn check_memoir(m: &memoir_ir::Module, expect: i64) -> Option<Outcome> {
    // The pipeline itself verifies between passes, but re-check the final
    // module so a corrupting *last* pass cannot slip through.
    let errs = memoir_ir::verifier::verify_module(m);
    if let Some(first) = errs.first() {
        return Some(Outcome::Crash {
            kind: "verify",
            detail: format!("verify: {first:?} (+{} more)", errs.len() - 1),
        });
    }
    let mut vm = memoir_interp::Interp::new(m).with_fuel(FUEL);
    match vm.run_by_name("main", vec![]) {
        Err(trap) => Some(Outcome::Crash {
            kind: "interp",
            detail: format!("interp: {trap:?}"),
        }),
        Ok(vals) => match vals.first().and_then(|v| v.as_int()) {
            Some(got) if got == expect => None,
            Some(got) => Some(Outcome::Crash {
                kind: "miscompile",
                detail: format!("miscompile: got {got}, oracle says {expect}"),
            }),
            None => Some(Outcome::Crash {
                kind: "miscompile",
                detail: "miscompile: no integer result".to_string(),
            }),
        },
    }
}

/// Runs a lowered module against the oracle, classifying failures with
/// the given crash-kind prefix (`lower` or `lir`).
fn check_lowered(
    lm: &lir::Module,
    expect: i64,
    trap_kind: &'static str,
    bad_kind: &'static str,
) -> Option<Outcome> {
    match lir::LirMachine::new(lm)
        .with_fuel(FUEL)
        .run_by_name("main", vec![])
    {
        Err(trap) => Some(Outcome::Crash {
            kind: trap_kind,
            detail: format!("{trap_kind}: {trap:?}"),
        }),
        Ok(vals) => match vals.first() {
            Some(&got) if got == expect => None,
            Some(&got) => Some(Outcome::Crash {
                kind: bad_kind,
                detail: format!("{bad_kind}: got {got}, oracle says {expect}"),
            }),
            None => Some(Outcome::Crash {
                kind: bad_kind,
                detail: format!("{bad_kind}: no result"),
            }),
        },
    }
}

/// Canonical signature text of a function (probing only compares
/// functions whose signature survived the pipeline — layout passes like
/// field elision legitimately thread extra parameters).
fn sig_string(m: &memoir_ir::Module, f: &memoir_ir::Function) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for p in &f.params {
        let _ = write!(
            s,
            "{}{},",
            if p.by_ref { "&" } else { "" },
            m.types.display(p.ty)
        );
    }
    s.push(';');
    for &t in &f.ret_tys {
        let _ = write!(s, "{},", m.types.display(t));
    }
    s
}

/// A comparable snapshot of a collection argument after a probe run;
/// `None` for non-collections or collections of collections (handles are
/// not comparable across interpreter instances).
fn coll_snapshot(interp: &memoir_interp::Interp, v: &memoir_interp::Value) -> Option<String> {
    use memoir_interp::{Collection, Value};
    let id = v.as_coll()?;
    match interp.store.coll(id) {
        Collection::Seq(elems) => {
            if elems.iter().any(|e| matches!(e, Value::Coll(_))) {
                return None;
            }
            Some(format!("{elems:?}"))
        }
        Collection::Assoc { map, order } => {
            let entries: Vec<_> = order
                .iter()
                .map(|k| (k.clone(), map.get(k).cloned()))
                .collect();
            if entries
                .iter()
                .any(|(_, v)| matches!(v, Some(Value::Coll(_))))
            {
                return None;
            }
            Some(format!("{entries:?}"))
        }
    }
}

/// Probes every preserved-signature non-entry function of `m` against
/// its pre-optimization self `m0` on synthesized typed argument vectors:
/// return values and the final contents of collection arguments must
/// agree. Probes where the *pre*-optimization run traps are skipped
/// (passes may legally remove dead trapping reads).
fn probe_functions(m0: &memoir_ir::Module, m: &memoir_ir::Module, seed: u64) -> Option<Outcome> {
    use memoir_lower::{materialize, mix_seed, synth_args};

    type ProbeResult = Result<(Vec<i64>, Vec<Option<String>>), memoir_interp::Trap>;
    for (fidx, (_, f)) in m0.funcs.iter().enumerate() {
        if f.name == "main" {
            continue; // the whole-program oracle already covers the entry
        }
        let Some(post_fid) = m.func_by_name(&f.name) else {
            continue;
        };
        if sig_string(m0, f) != sig_string(m, &m.funcs[post_fid]) {
            continue;
        }
        let param_tys: Vec<memoir_ir::TypeId> = f.params.iter().map(|p| p.ty).collect();
        for pi in 0..PROBES_PER_FUNC {
            let Some(args) = synth_args(&m0.types, &param_tys, mix_seed(seed ^ pi, fidx as u64))
            else {
                break; // un-synthesizable parameter type
            };
            let run = |mm: &memoir_ir::Module| -> ProbeResult {
                let mut interp = memoir_interp::Interp::new(mm).with_fuel(FUEL);
                // `synth_args` never emits collection-valued assoc keys,
                // so materialization cannot fail here.
                let vals: Vec<memoir_interp::Value> = args
                    .iter()
                    .map(|a| materialize(&mut interp, a).expect("synthesized args materialize"))
                    .collect();
                let rets = interp.run_by_name(&f.name, vals.clone())?;
                let ret_ints = rets.iter().filter_map(|v| v.as_int()).collect();
                let snaps = vals.iter().map(|v| coll_snapshot(&interp, v)).collect();
                Ok((ret_ints, snaps))
            };
            match (run(m0), run(m)) {
                (Err(_), _) => continue,
                (Ok((rets, _)), Err(trap)) => {
                    return Some(Outcome::Crash {
                        kind: "probe-diverge",
                        detail: format!(
                            "probe-diverge: `{}` probe {pi} returned {rets:?} before \
                             optimization but traps after: {trap:?}",
                            f.name
                        ),
                    });
                }
                (Ok(pre), Ok(post)) if pre != post => {
                    return Some(Outcome::Crash {
                        kind: "probe-diverge",
                        detail: format!(
                            "probe-diverge: `{}` probe {pi} changed from {pre:?} to {post:?}",
                            f.name
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    None
}

/// Runs one whole-language case end to end and classifies it.
///
/// ```
/// use passman::PipelineSpec;
/// use reduce::{run_case_prog, CaseConfig, CaseProgram, Op, Outcome};
///
/// let prog = CaseProgram::single(vec![Op::Push(3), Op::AssocInsert(2, -1)]);
/// let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
/// assert_eq!(run_case_prog(&prog, &spec, &CaseConfig::default()), Outcome::Pass);
/// ```
pub fn run_case_prog(prog: &CaseProgram, spec: &PipelineSpec, cfg: &CaseConfig) -> Outcome {
    let out = match &cfg.lir_spec {
        None => run_memoir_case(prog, spec, cfg),
        Some(lir_spec) => run_lowered_case(prog, spec, lir_spec, cfg),
    };
    if cfg.cache_check && out == Outcome::Pass {
        if let Some(crash) = check_cache_coherence(prog, spec, cfg) {
            return crash;
        }
    }
    if cfg.sym && out == Outcome::Pass {
        if let Some(crash) = check_sym_oracle(prog, spec, cfg) {
            return crash;
        }
    }
    if cfg.service_fault.is_some() && out == Outcome::Pass {
        if let Some(crash) = check_service_envelope(prog, spec, cfg) {
            return crash;
        }
    }
    out
}

/// Concrete argument vectors for the symbolic/concrete agreement check:
/// small magnitudes (boundary indices live there) clamped into each
/// parameter's type domain, varied per probe.
fn sym_probe_args(domains: &[(i64, i64)], fidx: u64, probe: u64) -> Vec<i64> {
    const PICKS: [i64; 5] = [0, 1, -1, 2, 7];
    domains
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| {
            let h = memoir_lower::mix_seed(0xa5_5eed ^ probe, fidx * 31 + i as u64);
            PICKS[(h % PICKS.len() as u64) as usize].clamp(lo, hi)
        })
        .collect()
}

/// The symbolic-oracle axis (`sym-unsound` / `sym-diverge`; see
/// [`CaseConfig::sym`]). Run only on cases that already pass the plain
/// oracles, so any failure is the symbolic engine's or an
/// oracle-visible miscompile's fault. The lowering phase is not
/// re-checked here — the `lower` stage's prove-then-probe cross-check
/// already runs the symbolic oracle across the IR boundary.
fn check_sym_oracle(prog: &CaseProgram, spec: &PipelineSpec, cfg: &CaseConfig) -> Option<Outcome> {
    use memoir_interp::{Interp, Value};

    let (m0, _) = build_case(prog);
    let (mut m, _) = build_case(prog);
    let ran = catch_unwind(AssertUnwindSafe(|| {
        compile_spec_with(&mut m, spec, |mut pm| {
            pm = pm
                .on_fault(cfg.policy)
                .with_budgets(cfg.budgets)
                .verify_between_passes(true);
            if let Some(plan) = cfg.inject.clone() {
                pm = pm.with_fault_injection(plan);
            }
            pm
        })
    }));
    if !matches!(ran, Ok(Ok(_))) {
        // The base oracle already ran this compile and passed; a failure
        // on the re-run is not the symbolic oracle's finding.
        return None;
    }

    let budget = symexec::Budget::default();
    for (fidx, (fid0, f)) in m0.funcs.iter().enumerate() {
        // (a) Soundness of the oracle itself: the enumerated path set's
        // prediction must match the concrete interpreter.
        if let Some(mut pool) = symexec::seed_params(&m0, fid0) {
            if let Ok(paths) = symexec::enumerate_memoir(&m0, fid0, &mut pool, &budget) {
                let domains = symexec::param_domains(&pool);
                for probe in 0..PROBES_PER_FUNC {
                    let args = sym_probe_args(&domains, fidx as u64, probe);
                    let vals: Vec<Value> = f
                        .params
                        .iter()
                        .zip(args.iter())
                        .map(|(p, &v)| match m0.types.get(p.ty) {
                            memoir_ir::Type::Bool => Value::Bool(v != 0),
                            ty => Value::Int(ty, v),
                        })
                        .collect();
                    let concrete = Interp::new(&m0)
                        .with_fuel(FUEL)
                        .run_by_name(&f.name, vals)
                        .ok()
                        .map(|rets| rets.iter().map(Value::as_int).collect::<Option<Vec<i64>>>());
                    let predicted = symexec::predict(&pool, &paths, &args);
                    match (concrete, predicted) {
                        // Non-integer concrete result or no matching
                        // path: no agreement obligation.
                        (Some(None), _) | (_, None) => {}
                        (None, Some(Ok(v))) => {
                            return Some(Outcome::Crash {
                                kind: "sym-unsound",
                                detail: format!(
                                    "sym-unsound: `{}`({args:?}) traps concretely but the \
                                     symbolic path set predicts {v:?}",
                                    f.name
                                ),
                            });
                        }
                        (Some(Some(got)), Some(Err(()))) => {
                            return Some(Outcome::Crash {
                                kind: "sym-unsound",
                                detail: format!(
                                    "sym-unsound: `{}`({args:?}) returns {got:?} concretely but \
                                     the symbolic path set predicts a trap",
                                    f.name
                                ),
                            });
                        }
                        (Some(Some(got)), Some(Ok(v))) if got != v => {
                            return Some(Outcome::Crash {
                                kind: "sym-unsound",
                                detail: format!(
                                    "sym-unsound: `{}`({args:?}) returns {got:?} concretely but \
                                     the symbolic path set predicts {v:?}",
                                    f.name
                                ),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        // (b) Pre-opt ≡ post-opt, with confirmed witnesses only.
        if let symexec::FnVerdict::Diverged { args, detail } =
            symexec::prove_memoir_equiv(&m0, &m, &f.name, &budget)
        {
            return Some(Outcome::Crash {
                kind: "sym-diverge",
                detail: format!(
                    "sym-diverge: `{}` diverges on witness {args:?}: {detail}",
                    f.name
                ),
            });
        }
    }
    None
}

/// The stable part of a run report: everything a warm cache run must
/// reproduce bit-for-bit. Timings and the compile cache's own counters
/// (which legitimately differ cold vs warm) are excluded.
fn report_signature(r: &passman::RunReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for p in &r.passes {
        let stats: Vec<_> = p
            .stats
            .iter()
            .filter(|(k, _)| *k != "cache_hits" && *k != "cache_misses")
            .collect();
        let _ = writeln!(
            s,
            "{} changed={} iter={:?} stats={stats:?}",
            p.name, p.changed, p.fixpoint_iteration
        );
    }
    let _ = writeln!(s, "degradations={:?}", r.degradations);
    let _ = writeln!(s, "stopped_early={}", r.stopped_early);
    s
}

/// One compile of the case with `cache` installed, summarized as
/// `(module text, report signature)` — the pair a warm run must
/// reproduce byte-for-byte.
fn run_with_cache(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    cfg: &CaseConfig,
    cache: &passman::CompileCache,
) -> Result<(String, String), String> {
    let (mut m, _) = build_case(prog);
    match &cfg.lir_spec {
        None => {
            let report = compile_spec_with(&mut m, spec, |mut pm| {
                pm = pm
                    .on_fault(cfg.policy)
                    .with_budgets(cfg.budgets)
                    .verify_between_passes(true)
                    .with_compile_cache(cache.clone());
                if let Some(plan) = cfg.inject.clone() {
                    pm = pm.with_fault_injection(plan);
                }
                pm
            })
            .map_err(|e| format!("run-error: {e}"))?;
            Ok((
                memoir_ir::printer::print_module(&m),
                report_signature(&report.run),
            ))
        }
        Some(lir_spec) => {
            let pipeline = LoweredPipeline {
                memoir: spec.clone(),
                lower_opts: PassOptions::none(),
                lir: lir_spec.clone(),
            };
            let lcfg = LowerConfig {
                policy: cfg.policy,
                budgets: cfg.budgets,
                verify: Some(true),
                inject: cfg.inject.clone(),
                threads: 1,
                cross_check: true,
                full_clone_snapshots: false,
                cache: Some(cache.clone()),
                adaptive: cfg.adaptive,
            };
            let out = compile_lowered_with(&mut m, &pipeline, &lcfg)
                .map_err(|e| format!("run-error: {e}"))?;
            let mut text = memoir_ir::printer::print_module(&m);
            if let Some(lm) = &out.lowered {
                text.push_str(
                    "
== lowered ==
",
                );
                text.push_str(&lir::printer::print_module(lm));
            }
            Ok((text, report_signature(&out.report.run)))
        }
    }
}

/// The cached-vs-cold differential oracle (`cache-diverge`): compiles
/// the case twice through one shared [`passman::CompileCache`]. The
/// first run populates the cache; the second must replay it to a
/// byte-identical module and an equivalent report. Run only on cases
/// that already pass the plain oracles, so any divergence is the
/// cache's fault.
fn check_cache_coherence(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Option<Outcome> {
    let cache = passman::CompileCache::new();
    let run = |label: &str| {
        catch_unwind(AssertUnwindSafe(|| run_with_cache(prog, spec, cfg, &cache)))
            .map_err(|payload| format!("{label} run panicked: {}", panic_message(payload)))
            .and_then(|r| r.map_err(|e| format!("{label} run failed: {e}")))
    };
    let cold = match run("cold") {
        Ok(v) => v,
        Err(detail) => {
            return Some(Outcome::Crash {
                kind: "cache-diverge",
                detail: format!("cache-diverge: {detail}"),
            })
        }
    };
    let warm = match run("warm") {
        Ok(v) => v,
        Err(detail) => {
            return Some(Outcome::Crash {
                kind: "cache-diverge",
                detail: format!("cache-diverge: {detail}"),
            })
        }
    };
    if cold.0 != warm.0 {
        return Some(Outcome::Crash {
            kind: "cache-diverge",
            detail: "cache-diverge: warm run produced a different module than the cold run"
                .to_string(),
        });
    }
    if cold.1 != warm.1 {
        return Some(Outcome::Crash {
            kind: "cache-diverge",
            detail: format!(
                "cache-diverge: warm run report differs from cold:
--- cold
{}--- warm
{}",
                cold.1, warm.1
            ),
        });
    }
    None
}

/// The service-envelope differential oracle (`service-lost` /
/// `service-diverge`): runs the case as a one-job [`memoird`] batch
/// twice — once clean, once under [`CaseConfig::service_fault`] — with
/// the watchdog armed. Both batches must resolve the job to exactly one
/// terminal outcome, and because every injectable service fault is
/// recoverable by the retry ladder, both must compile it to the same
/// bytes. Run only on cases that already pass the plain oracles, so any
/// failure is the envelope's fault.
fn check_service_envelope(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Option<Outcome> {
    let plan = cfg.service_fault.clone()?;
    let crash = |kind: &'static str, detail: String| {
        Some(Outcome::Crash {
            kind,
            detail: format!("{kind}: {detail}"),
        })
    };

    // The service takes the whole pipeline as one spec; for
    // through-lowering cases the lir phase rides behind a `lower` step.
    let mut text = spec.to_string();
    if let Some(lspec) = &cfg.lir_spec {
        if !text.is_empty() {
            text.push(',');
        }
        text.push_str(LOWER_STAGE);
        let ltext = lspec.to_string();
        if !ltext.is_empty() {
            text.push(',');
            text.push_str(&ltext);
        }
    }
    let full_spec = match PipelineSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            return crash(
                "service-lost",
                format!("composed job spec `{text}` does not parse: {e}"),
            )
        }
    };

    let run = |faults: Vec<memoird::JobFaultPlan>| {
        let (m, _) = build_case(prog);
        let mut job = memoird::JobSpec::new("fuzz-case", m, full_spec.clone());
        job.policy = cfg.policy;
        job.budgets = cfg.budgets;
        let scfg = memoird::ServiceConfig {
            workers: 1,
            // Generous for a fuzz-sized compile, but small enough that
            // `slow-job`'s stall (which sleeps past it) trips the
            // watchdog rather than the campaign's patience.
            timeout_ms: Some(1000),
            seed: 0x5e41ce,
            cache: Some(passman::CompileCache::new()),
            retry: memoird::RetryPolicy {
                base_backoff_ms: 1,
                max_backoff_ms: 8,
                ..Default::default()
            },
            faults,
            ..Default::default()
        };
        memoird::run_jobs(scfg, vec![job])
    };
    let (clean, clean_stats) = run(Vec::new());
    let (faulty, faulty_stats) = run(vec![plan.clone()]);

    if clean.len() != 1 || clean_stats.terminal() != 1 {
        return crash(
            "service-lost",
            format!(
                "clean one-job batch resolved {} outcome(s), {} terminal",
                clean.len(),
                clean_stats.terminal()
            ),
        );
    }
    if faulty.len() != 1 || faulty_stats.terminal() != 1 {
        return crash(
            "service-lost",
            format!(
                "one-job batch under `{plan}` resolved {} outcome(s), {} terminal",
                faulty.len(),
                faulty_stats.terminal()
            ),
        );
    }
    match (clean[0].output(), faulty[0].output()) {
        (Some(a), Some(b)) if a == b => None,
        (Some(_), Some(_)) => crash(
            "service-diverge",
            format!(
                "output under `{plan}` differs from the clean run ({} vs {})",
                clean[0].kind(),
                faulty[0].kind()
            ),
        ),
        (None, _) => crash(
            "service-diverge",
            format!(
                "clean service run did not compile the job (outcome `{}`)",
                clean[0].kind()
            ),
        ),
        (_, None) => crash(
            "service-diverge",
            format!(
                "run under `{plan}` did not compile the job (outcome `{}` after {} attempt(s))",
                faulty[0].kind(),
                faulty[0].attempts().len()
            ),
        ),
    }
}

/// Runs one single-function case end to end and classifies it (the v1
/// entry point; see [`run_case_prog`] for the whole-language form).
pub fn run_case(ops: &[Op], spec: &PipelineSpec, cfg: &CaseConfig) -> Outcome {
    run_case_prog(&CaseProgram::single(ops.to_vec()), spec, cfg)
}

fn run_memoir_case(prog: &CaseProgram, spec: &PipelineSpec, cfg: &CaseConfig) -> Outcome {
    let (mut m, expect) = build_case(prog);

    let ran = catch_unwind(AssertUnwindSafe(|| {
        compile_spec_with(&mut m, spec, |mut pm| {
            pm = pm
                .on_fault(cfg.policy)
                .with_budgets(cfg.budgets)
                .verify_between_passes(true);
            if let Some(plan) = cfg.inject.clone() {
                pm = pm.with_fault_injection(plan);
            }
            pm
        })
    }));
    match ran {
        Err(payload) => {
            return Outcome::Crash {
                kind: "panic",
                detail: format!("panic: {}", panic_message(payload)),
            }
        }
        Ok(Err(e)) => {
            return Outcome::Crash {
                kind: "run-error",
                detail: format!("run-error: {e}"),
            }
        }
        Ok(Ok(_report)) => {}
    }

    if let Some(crash) = check_memoir(&m, expect) {
        return crash;
    }
    if let Some(seed) = cfg.probe_seed {
        let (m0, _) = build_case(prog);
        if let Some(crash) = probe_functions(&m0, &m, seed) {
            return crash;
        }
    }
    Outcome::Pass
}

fn run_lowered_case(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    lir_spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Outcome {
    let (mut m, expect) = build_case(prog);
    let pipeline = LoweredPipeline {
        memoir: spec.clone(),
        lower_opts: PassOptions::none(),
        lir: lir_spec.clone(),
    };
    let lcfg = LowerConfig {
        policy: cfg.policy,
        budgets: cfg.budgets,
        verify: Some(true),
        inject: cfg.inject.clone(),
        threads: 1,
        cross_check: true,
        full_clone_snapshots: false,
        cache: None,
        adaptive: cfg.adaptive,
    };

    let ran = catch_unwind(AssertUnwindSafe(|| {
        compile_lowered_with(&mut m, &pipeline, &lcfg)
    }));
    let outcome = match ran {
        Err(payload) => {
            return Outcome::Crash {
                kind: "panic",
                detail: format!("panic: {}", panic_message(payload)),
            }
        }
        Ok(Err(e)) => {
            // Stage faults get their own classes so reduction keeps a
            // lowering bug a lowering bug.
            let kind = match &e {
                RunError::VerifyFailed { pass, .. } if pass == LOWER_STAGE => "lower-verify",
                RunError::PassFailed { pass, .. } if pass == LOWER_STAGE => "lower-error",
                _ => "run-error",
            };
            return Outcome::Crash {
                kind,
                detail: format!("{kind}: {e}"),
            };
        }
        Ok(Ok(out)) => out,
    };

    // Oracle 1: the optimized MEMOIR module is always checkable — and
    // must stay correct even when the stage (or a pass) degraded.
    if let Some(crash) = check_memoir(&m, expect) {
        return crash;
    }
    // Oracle 2: preserved-signature functions on synthesized inputs.
    if let Some(seed) = cfg.probe_seed {
        let (m0, _) = build_case(prog);
        if let Some(crash) = probe_functions(&m0, &m, seed) {
            return crash;
        }
    }
    let Some(lm) = outcome.lowered else {
        // The stage or the MEMOIR phase degraded under a recovering
        // policy: graceful containment, the (just-checked) MEMOIR module
        // is the pipeline's result.
        return Outcome::Pass;
    };

    // Oracle 3: the *direct* lowering of the optimized MEMOIR module —
    // pre-lir-opt, so a divergence here is memoir-lower's fault.
    match memoir_lower::lower_module(&m) {
        Err(e) => {
            return Outcome::Crash {
                kind: "lower-error",
                detail: format!("lower-error: direct lowering failed after the stage ran: {e}"),
            }
        }
        Ok(direct) => {
            if let Some(crash) = check_lowered(&direct, expect, "lower-trap", "lower-miscompile") {
                return crash;
            }
            // Cross-IR agreement on this case's probe seeds (scalar
            // signatures only — e.g. the generated scalar helpers).
            if let Some(seed) = cfg.probe_seed {
                match memoir_lower::cross_validate(&m, &direct, &[seed, seed ^ 0x9e3779b9]) {
                    Err(e) => {
                        return Outcome::Crash {
                            kind: "lower-probe",
                            detail: format!("lower-probe: {e}"),
                        };
                    }
                    Ok(report) => {
                        CC_PROVED.fetch_add(report.functions_proved as u64, Ordering::Relaxed);
                        CC_PROBED.fetch_add(report.functions_probed as u64, Ordering::Relaxed);
                        CC_SKIPPED.fetch_add(report.functions_skipped as u64, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    // Oracle 4: the pipeline's final lir-optimized module. The stage
    // verifier already vetted its input, so re-verify and blame the lir
    // passes for anything new.
    let errs = lir::verifier::verify_module(&lm);
    if let Some(first) = errs.first() {
        return Outcome::Crash {
            kind: "lir-verify",
            detail: format!("lir-verify: {first} (+{} more)", errs.len() - 1),
        };
    }
    check_lowered(&lm, expect, "lir-trap", "lir-miscompile").unwrap_or(Outcome::Pass)
}

/// Shrinks the `fixpoint(...)` groups inside a step list: ddmin each
/// group's body, then try flattening the group to plain passes (a group
/// that only needs one trip is noise in a repro). `eval` judges a trial
/// step list ("still the same crash").
fn shrink_fixpoints(mut steps: Vec<SpecStep>, eval: impl Fn(&[SpecStep]) -> bool) -> Vec<SpecStep> {
    let mut i = 0;
    while i < steps.len() {
        let SpecStep::Fixpoint { opts, body } = steps[i].clone() else {
            i += 1;
            continue;
        };
        let body = crate::ddmin::ddmin(&body, |cand| {
            if cand.is_empty() {
                return false; // fixpoint() is not a valid spec
            }
            let mut trial = steps.clone();
            trial[i] = SpecStep::Fixpoint {
                opts: opts.clone(),
                body: cand.to_vec(),
            };
            eval(&trial)
        });
        let mut flat = steps.clone();
        flat.splice(i..=i, body.iter().cloned().map(SpecStep::Pass));
        if eval(&flat) {
            steps = flat;
            i += body.len();
        } else {
            steps[i] = SpecStep::Fixpoint { opts, body };
            i += 1;
        }
    }
    steps
}

/// Reduces a crashing whole-language case: the config shrinks first
/// (service envelope and cache oracle dropped, budgets cleared, probe
/// seed dropped, the lir phase dropped entirely),
/// then ddmin over the helper list, `main`'s ops, each surviving
/// helper's ops, the MEMOIR pipeline steps, and the lir pipeline steps —
/// holding the failure *class* fixed throughout so the shrink converges
/// on the original bug rather than a new one.
///
/// Returns the minimized `(program, spec, config)` and the (possibly
/// re-worded) failure detail of the minimized case.
pub fn reduce_case_prog(
    prog: &CaseProgram,
    spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Option<(CaseProgram, PipelineSpec, CaseConfig, String)> {
    let kind = run_case_prog(prog, spec, cfg).kind()?;
    let same_kind = |o: &Outcome| o.kind() == Some(kind);
    let mut cfg = cfg.clone();
    let mut prog = prog.clone();

    // Config first, so every later trial runs the cheapest harness that
    // still crashes: without the service envelope (two extra service
    // batches per trial — by far the most expensive axis, so it goes
    // first), the cache oracle, budgets, probing, adaptive layouts, or
    // the lowering phase.
    if cfg.service_fault.is_some() {
        let mut trial = cfg.clone();
        trial.service_fault = None;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if cfg.cache_check {
        let mut trial = cfg.clone();
        trial.cache_check = false;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if cfg.sym {
        let mut trial = cfg.clone();
        trial.sym = false;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if !cfg.budgets.is_unlimited() {
        let mut trial = cfg.clone();
        trial.budgets = Budgets::none();
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if cfg.probe_seed.is_some() {
        let mut trial = cfg.clone();
        trial.probe_seed = None;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if cfg.adaptive {
        let mut trial = cfg.clone();
        trial.adaptive = false;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }
    if cfg.lir_spec.is_some() {
        let mut trial = cfg.clone();
        trial.lir_spec = None;
        if same_kind(&run_case_prog(&prog, spec, &trial)) {
            cfg = trial;
        }
    }

    // Whole helpers first (cheapest structural shrink) …
    prog.helpers = crate::ddmin::ddmin(&prog.helpers, |cand| {
        let trial = CaseProgram {
            main: prog.main.clone(),
            helpers: cand.to_vec(),
        };
        same_kind(&run_case_prog(&trial, spec, &cfg))
    });
    // … then main's ops …
    prog.main = crate::ddmin::ddmin(&prog.main, |cand| {
        let trial = CaseProgram {
            main: cand.to_vec(),
            helpers: prog.helpers.clone(),
        };
        same_kind(&run_case_prog(&trial, spec, &cfg))
    });
    // … then each surviving ops helper's op list.
    for i in 0..prog.helpers.len() {
        let Helper::Ops(ops) = prog.helpers[i].clone() else {
            continue;
        };
        let min = crate::ddmin::ddmin(&ops, |cand| {
            let mut trial = prog.clone();
            trial.helpers[i] = Helper::Ops(cand.to_vec());
            same_kind(&run_case_prog(&trial, spec, &cfg))
        });
        prog.helpers[i] = Helper::Ops(min);
    }

    let steps = crate::ddmin::ddmin(&spec.steps, |candidate| {
        same_kind(&run_case_prog(
            &prog,
            &PipelineSpec::new(candidate.to_vec()),
            &cfg,
        ))
    });
    // Steps are atomic to ddmin, so shrink inside surviving fixpoint
    // groups too.
    let steps = shrink_fixpoints(steps, |trial| {
        same_kind(&run_case_prog(
            &prog,
            &PipelineSpec::new(trial.to_vec()),
            &cfg,
        ))
    });
    let spec = PipelineSpec::new(steps);

    // The lir phase shrinks the same way (an empty lir spec is valid:
    // "lower, then nothing").
    if let Some(lspec) = cfg.lir_spec.clone() {
        let with_lir = |steps: &[SpecStep], cfg: &CaseConfig| {
            let mut trial = cfg.clone();
            trial.lir_spec = Some(PipelineSpec::new(steps.to_vec()));
            trial
        };
        let lsteps = crate::ddmin::ddmin(&lspec.steps, |candidate| {
            same_kind(&run_case_prog(&prog, &spec, &with_lir(candidate, &cfg)))
        });
        let lsteps = shrink_fixpoints(lsteps, |trial| {
            same_kind(&run_case_prog(&prog, &spec, &with_lir(trial, &cfg)))
        });
        cfg.lir_spec = Some(PipelineSpec::new(lsteps));
    }

    // One more main-ops pass: a smaller spec may admit a smaller program.
    prog.main = crate::ddmin::ddmin(&prog.main, |cand| {
        let trial = CaseProgram {
            main: cand.to_vec(),
            helpers: prog.helpers.clone(),
        };
        same_kind(&run_case_prog(&trial, &spec, &cfg))
    });

    match run_case_prog(&prog, &spec, &cfg) {
        Outcome::Crash { detail, .. } => Some((prog, spec, cfg, detail)),
        Outcome::Pass => None, // shrink lost the bug (should not happen)
    }
}

/// Reduces a crashing single-function case (the v1 entry point; see
/// [`reduce_case_prog`] for the whole-language form).
pub fn reduce_case(
    ops: &[Op],
    spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Option<(Vec<Op>, PipelineSpec, CaseConfig, String)> {
    let (prog, spec, cfg, detail) =
        reduce_case_prog(&CaseProgram::single(ops.to_vec()), spec, cfg)?;
    Some((prog.main, spec, cfg, detail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{random_case, random_case_config, random_ops, CaseDims};
    use crate::genspec::{random_lir_spec, random_spec};
    use crate::rng::SplitMix64;

    #[test]
    fn healthy_cases_pass() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..5 {
            let ops = random_ops(&mut rng, 20);
            let spec = random_spec(&mut rng);
            let out = run_case(&ops, &spec, &CaseConfig::default());
            assert_eq!(out, Outcome::Pass, "ops {ops:?} spec {spec}");
        }
    }

    #[test]
    fn healthy_cases_pass_through_lowering() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..5 {
            let ops = random_ops(&mut rng, 20);
            let spec = random_spec(&mut rng);
            let mut cfg = random_case_config(&mut rng, true);
            cfg.lir_spec = Some(random_lir_spec(&mut rng));
            let out = run_case(&ops, &spec, &cfg);
            assert_eq!(
                out,
                Outcome::Pass,
                "ops {ops:?} spec {spec} lir {:?}",
                cfg.lir_spec
            );
        }
    }

    #[test]
    fn healthy_whole_language_cases_pass_with_probing() {
        let mut rng = SplitMix64::new(29);
        let dims = CaseDims {
            objects: true,
            multi: true,
        };
        for i in 0..5 {
            let prog = random_case(&mut rng, 20, dims);
            let spec = random_spec(&mut rng);
            let mut cfg = random_case_config(&mut rng, i % 2 == 0);
            cfg.probe_seed = Some(rng.next_u64());
            let out = run_case_prog(&prog, &spec, &cfg);
            assert_eq!(out, Outcome::Pass, "prog {prog:?} spec {spec}");
        }
    }

    /// Reduced from `memoir-fuzz run --lower --seed 7` (crash-7-172):
    /// `dee-strict` + `ssa-destruct` leave the lowered module's block
    /// layout non-dominance-sorted, and lir's GVN used to pick the
    /// *layout-first* congruent instruction as the class leader —
    /// replacing a dominating definition with a dominated one and
    /// trapping as `lir-trap: Malformed("unbound value")`. Must Pass
    /// now that GVN gates replacements on dominance.
    #[test]
    fn gvn_respects_dominance_in_lowered_modules() {
        let ops = vec![Op::Push(-15), Op::Write(61, 67), Op::Push(67)];
        let spec =
            PipelineSpec::parse("ssa-construct,fixpoint<max=3>(dee-strict),ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::SkipPass,
            lir_spec: Some(PipelineSpec::parse("gvn").unwrap()),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);

        // crash-1234-101: same root cause through a different spec.
        let ops = vec![
            Op::Push(88),
            Op::Write(64, 9),
            Op::AssocInsert(169, -103),
            Op::Push(-25),
        ];
        let spec = PipelineSpec::parse("ssa-construct,dee-strict,dee-strict,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::StopPipeline,
            lir_spec: Some(PipelineSpec::parse("gvn").unwrap()),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    /// Reduced from `memoir-fuzz run --lower --seed 7` (crash-7-193,
    /// reproduces without the lowering phase): constprop branch folding
    /// inside a fixpoint left a φ with an incoming from a now-unreachable
    /// arm — legal SSA per the verifier's one-incoming-per-structural-
    /// predecessor invariant — and `ssa-destruct` panicked trying to
    /// resolve the never-translated value.
    #[test]
    fn ssa_destruct_tolerates_unreachable_phi_incomings() {
        let ops = vec![Op::InsertAt(81, 31), Op::Write(156, -28), Op::Remove(90)];
        let spec =
            PipelineSpec::parse("ssa-construct,fixpoint<max=3>(constprop,dee-strict),ssa-destruct")
                .unwrap();
        assert_eq!(run_case(&ops, &spec, &CaseConfig::default()), Outcome::Pass);

        // Second manifestation of the same case: with the panic fixed,
        // destruction used to materialize the stranded arm as an empty,
        // terminator-less block, which the (stricter) lir verifier
        // rejected right after the `lower` stage.
        let cfg = CaseConfig {
            lir_spec: Some(PipelineSpec::new(Vec::new())),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    /// Reduced from `memoir-fuzz run --lower --seed 7` (crash-7-46):
    /// the same backward-layout shape made lir's sink pass panic on a
    /// reversed slice range in `region_between`.
    #[test]
    fn sink_survives_backward_layout_in_lowered_modules() {
        let ops = vec![
            Op::Push(32),
            Op::Write(209, -115),
            Op::AssocKeys,
            Op::Push(12),
        ];
        let spec = PipelineSpec::parse("ssa-construct,dee-strict,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            lir_spec: Some(PipelineSpec::parse("sink").unwrap()),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    /// Adaptive lowered cases must pass the same differential oracles
    /// as the default hashed layout: the representation selector only
    /// changes storage, never observable results — with or without
    /// fusion in the MEMOIR phase, with or without a lir phase after
    /// `lower`, and under argument probing.
    #[test]
    fn adaptive_lowering_passes_the_differential_oracles() {
        let ops = vec![
            Op::Push(7),
            Op::AssocInsert(3, 40),
            Op::AssocInsert(3, -2),
            Op::Write(1, 9),
            Op::AssocKeys,
            Op::Push(-5),
        ];
        for spec in [
            "ssa-construct,constprop,dce,ssa-destruct",
            "ssa-construct,constprop,fusion,dce,ssa-destruct",
        ] {
            let spec = PipelineSpec::parse(spec).unwrap();
            for lir in ["", "mem2reg,gvn,dce"] {
                let cfg = CaseConfig {
                    lir_spec: Some(
                        PipelineSpec::parse(lir).unwrap_or_else(|_| PipelineSpec::new(Vec::new())),
                    ),
                    adaptive: true,
                    probe_seed: Some(11),
                    ..CaseConfig::default()
                };
                assert_eq!(
                    run_case(&ops, &spec, &cfg),
                    Outcome::Pass,
                    "spec `{spec}` + lir `{lir}`"
                );
            }
        }
    }

    #[test]
    fn injected_panic_is_a_crash_under_abort() {
        let ops = vec![Op::Push(1), Op::Push(2)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dce".parse().unwrap()),
            ..CaseConfig::default()
        };
        let out = run_case(&ops, &spec, &cfg);
        assert_eq!(out.kind(), Some("panic"), "{out:?}");
    }

    #[test]
    fn injected_panic_is_recovered_under_skip() {
        let ops = vec![Op::Push(1), Op::Push(2), Op::Write(0, 9)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::SkipPass,
            inject: Some("panic@dce".parse().unwrap()),
            ..CaseConfig::default()
        };
        // Rollback must leave an interpreter-correct module: no crash.
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    #[test]
    fn injected_stage_fault_classifies_and_recovers() {
        let ops = vec![Op::Push(3), Op::AssocInsert(1, 4)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let lir_spec = PipelineSpec::parse("mem2reg,dce").unwrap();

        // An injected verify failure at the stage is its own class…
        let cfg = CaseConfig {
            inject: Some("verify@lower".parse().unwrap()),
            lir_spec: Some(lir_spec.clone()),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg).kind(), Some("lower-verify"));

        // …an injected stage panic under Abort is a plain panic…
        let cfg = CaseConfig {
            inject: Some("panic@lower".parse().unwrap()),
            lir_spec: Some(lir_spec.clone()),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg).kind(), Some("panic"));

        // …and under a recovering policy the stage fault is contained:
        // the MEMOIR module is the (oracle-correct) result.
        let cfg = CaseConfig {
            policy: FaultPolicy::StopPipeline,
            inject: Some("panic@lower".parse().unwrap()),
            lir_spec: Some(lir_spec),
            ..CaseConfig::default()
        };
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    #[test]
    fn reduction_shrinks_an_injected_crash() {
        let mut rng = SplitMix64::new(3);
        let ops = random_ops(&mut rng, 40);
        let spec = PipelineSpec::parse(
            "ssa-construct,constprop,fixpoint<max=3>(simplify,dce),dee,ssa-destruct,rie,dfe",
        )
        .unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dee".parse().unwrap()),
            ..CaseConfig::default()
        };
        let (min_ops, min_spec, _, detail) = reduce_case(&ops, &spec, &cfg).expect("still crashes");
        assert!(min_ops.len() <= 8, "ops not minimal: {min_ops:?}");
        assert!(
            min_spec.steps.len() <= 2,
            "spec not minimal: {min_spec} ({} steps)",
            min_spec.steps.len()
        );
        assert!(detail.starts_with("panic:"), "{detail}");
    }

    #[test]
    fn healthy_cases_pass_the_cache_oracle() {
        let mut rng = SplitMix64::new(41);
        for i in 0..4 {
            let prog = random_case(
                &mut rng,
                15,
                CaseDims {
                    objects: true,
                    multi: true,
                },
            );
            let spec = random_spec(&mut rng);
            let mut cfg = random_case_config(&mut rng, i % 2 == 0);
            cfg.cache_check = true;
            let out = run_case_prog(&prog, &spec, &cfg);
            assert_eq!(out, Outcome::Pass, "prog {prog:?} spec {spec}");
        }
    }

    #[test]
    fn healthy_cases_pass_the_service_envelope() {
        // Every injectable service fault is recoverable, so a passing
        // case must stay byte-identical through the one-job envelope —
        // including through-lowering cases, whose lir phase rides behind
        // a `lower` step in the composed job spec.
        let prog = CaseProgram::single(vec![Op::Push(3), Op::AssocInsert(2, -1), Op::Write(0, 9)]);
        let spec = PipelineSpec::parse("ssa-construct,constprop,dce,ssa-destruct").unwrap();
        for plan in ["worker-panic@0", "poison-cache@0", "slow-job@0"] {
            let cfg = CaseConfig {
                service_fault: Some(plan.parse().unwrap()),
                ..CaseConfig::default()
            };
            let out = run_case_prog(&prog, &spec, &cfg);
            assert_eq!(out, Outcome::Pass, "{plan}: {out:?}");
        }
        let lowered = CaseConfig {
            lir_spec: Some(PipelineSpec::parse("mem2reg,constfold,dce").unwrap()),
            service_fault: Some("worker-panic@0".parse().unwrap()),
            ..CaseConfig::default()
        };
        let out = run_case_prog(&prog, &spec, &lowered);
        assert_eq!(out, Outcome::Pass, "{out:?}");
    }

    #[test]
    fn reduction_shrinks_config_too() {
        let ops = vec![Op::Push(1), Op::Push(2), Op::AssocInsert(3, 4)];
        let spec = PipelineSpec::parse("ssa-construct,constprop,dce,ssa-destruct").unwrap();
        // A dce-targeted injected panic: the service envelope, cache
        // oracle, budgets, probing, adaptive layouts, and the lowering
        // phase are irrelevant to the crash, so reduction drops all six.
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dce".parse().unwrap()),
            budgets: Budgets::parse("growth=16.0,fixpoint=4").unwrap(),
            lir_spec: Some(PipelineSpec::parse("mem2reg,fixpoint<max=3>(constfold,dce)").unwrap()),
            adaptive: true,
            probe_seed: Some(42),
            cache_check: true,
            service_fault: Some("worker-panic@0".parse().unwrap()),
            sym: true,
        };
        let (_, _, min_cfg, detail) = reduce_case(&ops, &spec, &cfg).expect("still crashes");
        assert!(min_cfg.budgets.is_unlimited(), "{:?}", min_cfg.budgets);
        assert!(min_cfg.lir_spec.is_none(), "{:?}", min_cfg.lir_spec);
        assert!(min_cfg.probe_seed.is_none(), "{:?}", min_cfg.probe_seed);
        assert!(!min_cfg.adaptive, "adaptive layouts should be dropped");
        assert!(!min_cfg.cache_check, "cache oracle should be dropped");
        assert!(!min_cfg.sym, "symbolic oracle should be dropped");
        assert!(
            min_cfg.service_fault.is_none(),
            "service envelope should be dropped"
        );
        assert!(detail.starts_with("panic:"), "{detail}");
    }

    #[test]
    fn reduction_keeps_the_lir_phase_when_the_crash_needs_it() {
        let ops = vec![Op::Push(5)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        // A fault injected into a *lir* pass only fires when the lir
        // phase actually runs, so `lir_spec` must survive reduction.
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@gvn".parse().unwrap()),
            budgets: Budgets::none(),
            lir_spec: Some(PipelineSpec::parse("mem2reg,gvn,dce").unwrap()),
            adaptive: false,
            probe_seed: None,
            cache_check: false,
            service_fault: None,
            sym: false,
        };
        let out = run_case(&ops, &spec, &cfg);
        assert_eq!(out.kind(), Some("panic"), "{out:?}");
        let (_, _, min_cfg, _) = reduce_case(&ops, &spec, &cfg).expect("still crashes");
        let lspec = min_cfg.lir_spec.expect("lir phase is load-bearing");
        assert_eq!(lspec.pass_names(), vec!["gvn"], "{lspec}");
    }

    /// Reduced from the first whole-language campaign (objects + multi,
    /// probing): a mut push onto a collection read *out of an object
    /// field* got renamed to a fresh SSA version, but nothing stored the
    /// version back into the field — the epilogue's field read folded
    /// the stale, empty tags seq ("got 0, oracle says 252"). Must Pass
    /// now that `ssa-construct` emits the field write-back.
    #[test]
    fn nested_collection_fields_survive_ssa_construction() {
        let prog = CaseProgram::single(vec![Op::ObjTagPush(131, 126)]);
        let spec = PipelineSpec::parse("ssa-construct").unwrap();
        assert_eq!(
            run_case_prog(&prog, &spec, &CaseConfig::default()),
            Outcome::Pass
        );

        // The original shape: pushes from two call sites interleaved
        // with field writes, through the full round-trip.
        let prog = CaseProgram::single(vec![
            Op::ObjTagPush(0, 4),
            Op::ObjWrite(1, 0, -7),
            Op::ObjTagPush(1, 24),
            Op::ObjRead(1, 1),
            Op::ObjTagPush(0, -3),
        ]);
        let spec = PipelineSpec::parse("ssa-construct,dce,simplify,ssa-destruct").unwrap();
        assert_eq!(
            run_case_prog(&prog, &spec, &CaseConfig::default()),
            Outcome::Pass
        );
    }

    #[test]
    fn reduction_shrinks_helpers() {
        // Inject a panic into dce: the helpers are irrelevant, so the
        // reducer must drop them all (and the shape still crashes).
        let prog = CaseProgram {
            main: vec![Op::Push(1), Op::ObjWrite(0, 0, 3)],
            helpers: vec![
                Helper::Ops(vec![Op::Push(2), Op::AssocInsert(1, 1)]),
                Helper::Scalar(3, -1),
            ],
        };
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dce".parse().unwrap()),
            ..CaseConfig::default()
        };
        let (min, _, _, detail) = reduce_case_prog(&prog, &spec, &cfg).expect("still crashes");
        assert!(min.helpers.is_empty(), "helpers not dropped: {min:?}");
        assert!(min.main.is_empty(), "main ops not dropped: {min:?}");
        assert!(detail.starts_with("panic:"), "{detail}");
    }
}
