//! The fuzz oracle: run one generated case through the pipeline and
//! classify the result.
//!
//! A case is (op sequence, pipeline spec, fault policy, optional fault
//! injection). The harness builds the MUT-form module, runs the spec
//! with inter-pass verification forced on, panics caught, and finally
//! executes the optimized module in the interpreter against the plain
//! Rust oracle. Anything other than "completed and computed the right
//! answer" is a [`Crash`] — including a *degraded* run whose recovered
//! module no longer matches the oracle, which is exactly the rollback
//! soundness the fault-tolerance layer promises.

use crate::genprog::{build, Op};
use memoir_opt::pipeline::compile_spec_with;
use passman::{FaultPlan, FaultPolicy, PipelineSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How to configure the pass manager for a fuzz case (fixed across a
/// reduction, varied across a campaign).
#[derive(Clone, Debug)]
pub struct CaseConfig {
    /// Fault policy for the run (`Abort` makes every fault a crash;
    /// `SkipPass`/`StopPipeline` exercise rollback instead).
    pub policy: FaultPolicy,
    /// Test-only fault injection plan, replayed exactly.
    pub inject: Option<FaultPlan>,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            policy: FaultPolicy::Abort,
            inject: None,
        }
    }
}

/// The classified result of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Pipeline completed and the optimized module matches the oracle.
    Pass,
    /// Something went wrong.
    Crash {
        /// Stable failure class (`panic`, `run-error`, `verify`,
        /// `miscompile`, `interp`) — reduction holds this fixed so it
        /// shrinks toward *the same* bug.
        kind: &'static str,
        /// Human-readable one-liner.
        detail: String,
    },
}

impl Outcome {
    /// The failure class, if this is a crash.
    pub fn kind(&self) -> Option<&'static str> {
        match self {
            Outcome::Pass => None,
            Outcome::Crash { kind, .. } => Some(kind),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one case end to end and classifies it.
pub fn run_case(ops: &[Op], spec: &PipelineSpec, cfg: &CaseConfig) -> Outcome {
    let (mut m, expect) = build(ops);

    let ran = catch_unwind(AssertUnwindSafe(|| {
        compile_spec_with(&mut m, spec, |mut pm| {
            pm = pm.on_fault(cfg.policy).verify_between_passes(true);
            if let Some(plan) = cfg.inject.clone() {
                pm = pm.with_fault_injection(plan);
            }
            pm
        })
    }));
    match ran {
        Err(payload) => {
            return Outcome::Crash {
                kind: "panic",
                detail: format!("panic: {}", panic_message(payload)),
            }
        }
        Ok(Err(e)) => {
            return Outcome::Crash {
                kind: "run-error",
                detail: format!("run-error: {e}"),
            }
        }
        Ok(Ok(_report)) => {}
    }

    // The pipeline itself verifies between passes, but re-check the final
    // module so a corrupting *last* pass cannot slip through.
    let errs = memoir_ir::verifier::verify_module(&m);
    if let Some(first) = errs.first() {
        return Outcome::Crash {
            kind: "verify",
            detail: format!("verify: {first:?} (+{} more)", errs.len() - 1),
        };
    }

    let mut vm = memoir_interp::Interp::new(&m).with_fuel(50_000_000);
    match vm.run_by_name("main", vec![]) {
        Err(trap) => Outcome::Crash {
            kind: "interp",
            detail: format!("interp: {trap:?}"),
        },
        Ok(vals) => match vals.first().and_then(|v| v.as_int()) {
            Some(got) if got == expect => Outcome::Pass,
            Some(got) => Outcome::Crash {
                kind: "miscompile",
                detail: format!("miscompile: got {got}, oracle says {expect}"),
            },
            None => Outcome::Crash {
                kind: "miscompile",
                detail: "miscompile: no integer result".to_string(),
            },
        },
    }
}

/// Reduces a crashing case: first ddmin over the op sequence, then over
/// the pipeline steps, holding the failure *class* fixed throughout so
/// the shrink converges on the original bug rather than a new one.
///
/// Returns the minimized `(ops, spec)` and the (possibly re-worded)
/// failure detail of the minimized case.
pub fn reduce_case(
    ops: &[Op],
    spec: &PipelineSpec,
    cfg: &CaseConfig,
) -> Option<(Vec<Op>, PipelineSpec, String)> {
    let kind = run_case(ops, spec, cfg).kind()?;
    let same_kind = |o: &Outcome| o.kind() == Some(kind);

    let ops = crate::ddmin::ddmin(ops, |candidate| same_kind(&run_case(candidate, spec, cfg)));
    let mut steps = crate::ddmin::ddmin(&spec.steps, |candidate| {
        same_kind(&run_case(&ops, &PipelineSpec::new(candidate.to_vec()), cfg))
    });
    // Steps are atomic to ddmin, so shrink inside surviving fixpoint
    // groups too — and try flattening each group to plain passes (a
    // group that only needs one trip is noise in a repro).
    let mut i = 0;
    while i < steps.len() {
        let passman::SpecStep::Fixpoint { opts, body } = steps[i].clone() else {
            i += 1;
            continue;
        };
        let body = crate::ddmin::ddmin(&body, |cand| {
            if cand.is_empty() {
                return false; // fixpoint() is not a valid spec
            }
            let mut trial = steps.clone();
            trial[i] = passman::SpecStep::Fixpoint {
                opts: opts.clone(),
                body: cand.to_vec(),
            };
            same_kind(&run_case(&ops, &PipelineSpec::new(trial), cfg))
        });
        let mut flat = steps.clone();
        flat.splice(i..=i, body.iter().cloned().map(passman::SpecStep::Pass));
        if same_kind(&run_case(&ops, &PipelineSpec::new(flat.clone()), cfg)) {
            steps = flat;
            i += body.len();
        } else {
            steps[i] = passman::SpecStep::Fixpoint { opts, body };
            i += 1;
        }
    }
    let spec = PipelineSpec::new(steps);
    // One more ops pass: a smaller spec may admit a smaller program.
    let ops = crate::ddmin::ddmin(&ops, |candidate| {
        same_kind(&run_case(candidate, &spec, cfg))
    });

    match run_case(&ops, &spec, cfg) {
        Outcome::Crash { detail, .. } => Some((ops, spec, detail)),
        Outcome::Pass => None, // shrink lost the bug (should not happen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::random_ops;
    use crate::genspec::random_spec;
    use crate::rng::SplitMix64;

    #[test]
    fn healthy_cases_pass() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..5 {
            let ops = random_ops(&mut rng, 20);
            let spec = random_spec(&mut rng);
            let out = run_case(&ops, &spec, &CaseConfig::default());
            assert_eq!(out, Outcome::Pass, "ops {ops:?} spec {spec}");
        }
    }

    #[test]
    fn injected_panic_is_a_crash_under_abort() {
        let ops = vec![Op::Push(1), Op::Push(2)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dce".parse().unwrap()),
        };
        let out = run_case(&ops, &spec, &cfg);
        assert_eq!(out.kind(), Some("panic"), "{out:?}");
    }

    #[test]
    fn injected_panic_is_recovered_under_skip() {
        let ops = vec![Op::Push(1), Op::Push(2), Op::Write(0, 9)];
        let spec = PipelineSpec::parse("ssa-construct,dce,ssa-destruct").unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::SkipPass,
            inject: Some("panic@dce".parse().unwrap()),
        };
        // Rollback must leave an interpreter-correct module: no crash.
        assert_eq!(run_case(&ops, &spec, &cfg), Outcome::Pass);
    }

    #[test]
    fn reduction_shrinks_an_injected_crash() {
        let mut rng = SplitMix64::new(3);
        let ops = random_ops(&mut rng, 40);
        let spec = PipelineSpec::parse(
            "ssa-construct,constprop,fixpoint<max=3>(simplify,dce),dee,ssa-destruct,rie,dfe",
        )
        .unwrap();
        let cfg = CaseConfig {
            policy: FaultPolicy::Abort,
            inject: Some("panic@dee".parse().unwrap()),
        };
        let (min_ops, min_spec, detail) = reduce_case(&ops, &spec, &cfg).expect("still crashes");
        assert!(min_ops.len() <= 8, "ops not minimal: {min_ops:?}");
        assert!(
            min_spec.steps.len() <= 2,
            "spec not minimal: {min_spec} ({} steps)",
            min_spec.steps.len()
        );
        assert!(detail.starts_with("panic:"), "{detail}");
    }
}
