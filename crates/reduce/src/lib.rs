//! # reduce
//!
//! Crash triage for the MEMOIR pass pipeline: the library behind the
//! `memoir-fuzz` binary.
//!
//! The pieces compose into a classic fuzz-and-shrink loop:
//!
//! * [`rng::SplitMix64`] — a tiny deterministic RNG, so every campaign
//!   and every case is replayable from `(seed, case-index)` alone;
//! * [`genprog`] — random MUT-op sequence programs with a plain-Rust
//!   oracle computed alongside (the generator of
//!   `tests/pipeline_differential.rs`, promoted to a library), plus
//!   per-case sampling of the fault policy and budgets;
//! * [`genspec`] — random but always phase-correct [`PipelineSpec`]s,
//!   for both the MEMOIR and the post-lowering low-level IR phase;
//! * [`harness`] — runs one case through the pipeline (optionally on
//!   through the `lower` stage and a lir pipeline) with panics caught
//!   and verification forced on, then differentially checks every
//!   intermediate result against the oracle;
//! * [`ddmin`](mod@ddmin) — delta debugging, used to shrink the op
//!   sequence, the pipeline steps of both phases, and the config of a
//!   crashing case;
//! * [`repro`] — `.repro` text artifacts (spec: `docs/REPRO_FORMAT.md`)
//!   that `memoir-fuzz replay` re-runs exactly;
//! * [`cli`] — the `memoir-fuzz run` argument surface, plus a fuzzer
//!   for every textual surface the binaries parse;
//! * [`service`] — the `memoir-fuzz service` mode: fuzzes the `memoird`
//!   compile service's job-stream parsers and drives randomized job
//!   batches with sampled fault injection, asserting zero lost jobs,
//!   clean-vs-injected byte identity, and warm-vs-cold job-cache
//!   coherence (the harness-side oracle is
//!   [`harness::CaseConfig::service_fault`]).
//!
//! Programs span the whole language: sequence and assoc ops, object
//! types with field reads/writes and nested collections
//! ([`genprog::CaseDims::objects`]), and multi-function cases whose
//! helpers take collection parameters by reference
//! ([`genprog::CaseDims::multi`]). The harness can additionally probe
//! every surviving function on synthesized typed argument vectors
//! ([`harness::CaseConfig::probe_seed`]).
//!
//! [`PipelineSpec`]: passman::PipelineSpec

#![warn(missing_docs)]

pub mod cli;
pub mod ddmin;
pub mod genprog;
pub mod genspec;
pub mod harness;
pub mod repro;
pub mod rng;
pub mod service;

pub use cli::{fuzz_cli_case, parse_run_args, CliCrash, RunArgs};
pub use ddmin::ddmin;
pub use genprog::{
    build, build_case, random_case, random_case_config, random_op, random_ops, CaseDims,
    CaseProgram, Helper, Op,
};
pub use genspec::{random_lir_spec, random_spec};
pub use harness::{
    cross_check_totals, reduce_case, reduce_case_prog, run_case, run_case_prog, CaseConfig, Outcome,
};
pub use repro::Repro;
pub use rng::SplitMix64;
pub use service::fuzz_service_case;

/// Best-effort text of a caught panic payload.
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
