//! # reduce
//!
//! Crash triage for the MEMOIR pass pipeline: the library behind the
//! `memoir-fuzz` binary.
//!
//! The pieces compose into a classic fuzz-and-shrink loop:
//!
//! * [`rng::SplitMix64`] — a tiny deterministic RNG, so every campaign
//!   and every case is replayable from `(seed, case-index)` alone;
//! * [`genprog`] — random MUT-op sequence programs with a plain-Rust
//!   oracle computed alongside (the generator of
//!   `tests/pipeline_differential.rs`, promoted to a library), plus
//!   per-case sampling of the fault policy and budgets;
//! * [`genspec`] — random but always phase-correct [`PipelineSpec`]s,
//!   for both the MEMOIR and the post-lowering low-level IR phase;
//! * [`harness`] — runs one case through the pipeline (optionally on
//!   through the `lower` stage and a lir pipeline) with panics caught
//!   and verification forced on, then differentially checks every
//!   intermediate result against the oracle;
//! * [`ddmin`] — delta debugging, used to shrink the op sequence, the
//!   pipeline steps of both phases, and the config of a crashing case;
//! * [`repro`] — `.repro` text artifacts that `memoir-fuzz replay`
//!   re-runs exactly.
//!
//! [`PipelineSpec`]: passman::PipelineSpec

#![warn(missing_docs)]

pub mod ddmin;
pub mod genprog;
pub mod genspec;
pub mod harness;
pub mod repro;
pub mod rng;

pub use ddmin::ddmin;
pub use genprog::{build, random_case_config, random_op, random_ops, Op};
pub use genspec::{random_lir_spec, random_spec};
pub use harness::{reduce_case, run_case, CaseConfig, Outcome};
pub use repro::Repro;
pub use rng::SplitMix64;
