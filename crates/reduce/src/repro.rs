//! Replayable crash artifacts (`.repro` files).
//!
//! A repro is a small, line-oriented text file that captures *exactly*
//! one fuzz case: the program (`main`'s ops plus any helper functions),
//! the pipeline spec, the fault policy, per-case budgets, any injection
//! plan, the probe seed, and — for through-lowering cases — the
//! low-level IR pipeline run after the `lower` stage.
//! `memoir-fuzz replay file.repro` re-runs it bit-for-bit;
//! `memoir-fuzz reduce file.repro` shrinks it in place. The normative
//! format spec (with versioning rules) lives in `docs/REPRO_FORMAT.md`.
//!
//! ```text
//! memoir-fuzz repro v2
//! seed: 42
//! case: 17
//! spec: ssa-construct,dce,ssa-destruct
//! lir-spec: mem2reg,constfold
//! policy: skip
//! budget: growth=16,fixpoint=2
//! inject: panic@dce
//! probe-seed: 7
//! minimized: true
//! failure: panic: injected fault
//! ops:
//!   push -3
//!   obj-write 0 1 9
//! helper:
//!   assoc-insert 2 5
//! helper-scalar: 3 -2
//! ```
//!
//! `budget:` is omitted when unlimited, `inject:` and `probe-seed:` when
//! absent, and `cache-check: true` is present only when the case runs
//! the cached-vs-cold differential oracle (two extra compiles through a
//! shared compile cache — the `cache-diverge` crash class).
//! `service-fault:` carries a `memoird` job-fault plan (e.g.
//! `worker-panic@0`) and is present only when the case runs the
//! service-envelope differential oracle (two one-job service batches —
//! the `service-lost`/`service-diverge` crash classes). `sym: true` is
//! present only when the case runs the symbolic-oracle axis (the
//! `sym-diverge`/`sym-unsound` crash classes). A present `lir-spec:` key marks a through-lowering case; its
//! value may be empty ("lower, then nothing"). `adaptive: true` marks a
//! through-lowering case that used the adaptive representation selector
//! (dense / inline collection layouts) and is omitted otherwise. Each `helper:` block and
//! `helper-scalar:` line after the `ops:` block appends one helper
//! function, in call order. Files that use none of the v2 features
//! (helpers, object ops, probe seed, cache check) are written with — and round-trip
//! through — the v1 header, so artifacts committed by older campaigns
//! stay valid verbatim.

use crate::genprog::{CaseProgram, Helper, Op};
use crate::harness::CaseConfig;
use passman::{Budgets, FaultPolicy, PipelineSpec};
use std::fmt;
use std::str::FromStr;

const HEADER_V1: &str = "memoir-fuzz repro v1";
const HEADER_V2: &str = "memoir-fuzz repro v2";

/// One replayable crash case.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// Campaign seed that produced the case.
    pub seed: u64,
    /// Case index within the campaign.
    pub case: u64,
    /// The (MEMOIR) pipeline spec the case ran.
    pub spec: PipelineSpec,
    /// The low-level IR pipeline after the `lower` stage, when this is a
    /// through-lowering case (may be empty: "lower, then nothing").
    pub lir_spec: Option<PipelineSpec>,
    /// Whether the through-lowering case lowered through the adaptive
    /// representation selector (v2; dense / inline layouts for provably
    /// bounded collections — layout-sensitive crashes replay only with
    /// this set).
    pub adaptive: bool,
    /// Fault policy in effect.
    pub policy: FaultPolicy,
    /// Per-case budgets ([`Budgets::none`] when the line is absent).
    pub budgets: Budgets,
    /// Injection plan, if the campaign was seeded with one.
    pub inject: Option<passman::FaultPlan>,
    /// Per-function probe seed, if the case ran with synthesized-argument
    /// probing (v2).
    pub probe_seed: Option<u64>,
    /// Whether the case ran the cached-vs-cold differential oracle (v2;
    /// the `cache-diverge` class replays only with this set).
    pub cache_check: bool,
    /// Service-fault plan of the service-envelope differential oracle
    /// (v2; the `service-lost`/`service-diverge` classes replay only
    /// with this set).
    pub service_fault: Option<memoird::JobFaultPlan>,
    /// Whether the case ran the symbolic-oracle axis (v2; the
    /// `sym-diverge`/`sym-unsound` classes replay only with this set).
    pub sym: bool,
    /// Whether this artifact has been through the reducer.
    pub minimized: bool,
    /// One-line failure classification from the harness.
    pub failure: String,
    /// The whole-language program: `main`'s MUT ops plus helpers (v2).
    pub prog: CaseProgram,
}

impl Repro {
    /// The harness configuration this repro replays under.
    pub fn config(&self) -> CaseConfig {
        CaseConfig {
            policy: self.policy,
            inject: self.inject.clone(),
            budgets: self.budgets,
            lir_spec: self.lir_spec.clone(),
            adaptive: self.adaptive,
            probe_seed: self.probe_seed,
            cache_check: self.cache_check,
            service_fault: self.service_fault.clone(),
            sym: self.sym,
        }
    }

    /// Whether this artifact needs the v2 header (any helper, object op,
    /// probe seed, or differential-oracle key).
    pub fn uses_v2(&self) -> bool {
        self.probe_seed.is_some()
            || self.adaptive
            || self.cache_check
            || self.service_fault.is_some()
            || self.sym
            || self.prog.uses_v2()
    }
}

impl fmt::Display for Repro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header = if self.uses_v2() { HEADER_V2 } else { HEADER_V1 };
        writeln!(f, "{header}")?;
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "case: {}", self.case)?;
        writeln!(f, "spec: {}", self.spec)?;
        if let Some(lspec) = &self.lir_spec {
            writeln!(f, "lir-spec: {lspec}")?;
        }
        if self.adaptive {
            writeln!(f, "adaptive: true")?;
        }
        writeln!(f, "policy: {}", self.policy)?;
        if !self.budgets.is_unlimited() {
            writeln!(f, "budget: {}", self.budgets)?;
        }
        if let Some(plan) = &self.inject {
            writeln!(f, "inject: {plan}")?;
        }
        if let Some(seed) = self.probe_seed {
            writeln!(f, "probe-seed: {seed}")?;
        }
        if self.cache_check {
            writeln!(f, "cache-check: true")?;
        }
        if let Some(plan) = &self.service_fault {
            writeln!(f, "service-fault: {plan}")?;
        }
        if self.sym {
            writeln!(f, "sym: true")?;
        }
        writeln!(f, "minimized: {}", self.minimized)?;
        writeln!(f, "failure: {}", self.failure)?;
        writeln!(f, "ops:")?;
        for op in &self.prog.main {
            writeln!(f, "  {op}")?;
        }
        for h in &self.prog.helpers {
            match h {
                Helper::Ops(ops) => {
                    writeln!(f, "helper:")?;
                    for op in ops {
                        writeln!(f, "  {op}")?;
                    }
                }
                Helper::Scalar(c1, c2) => writeln!(f, "helper-scalar: {c1} {c2}")?,
                Helper::ObjProbe(c1, c2) => writeln!(f, "helper-obj: {c1} {c2}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for Repro {
    type Err = String;

    fn from_str(s: &str) -> Result<Repro, String> {
        let mut lines = s.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty repro file")?;
        let v2 = match first.trim() {
            h if h == HEADER_V1 => false,
            h if h == HEADER_V2 => true,
            _ => {
                return Err(format!(
                    "not a repro file (expected `{HEADER_V1}` or `{HEADER_V2}`)"
                ))
            }
        };

        let mut seed = None;
        let mut case = None;
        let mut spec = None;
        let mut lir_spec = None;
        let mut adaptive = false;
        let mut policy = None;
        let mut budgets = None;
        let mut inject = None;
        let mut probe_seed = None;
        let mut cache_check = false;
        let mut service_fault = None;
        let mut sym = false;
        let mut minimized = None;
        let mut failure = None;
        let mut main: Option<Vec<Op>> = None;
        let mut helpers: Vec<Helper> = Vec::new();

        for (i, raw) in lines {
            let line = raw.trim_end();
            if line.trim().is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}", i + 1);
            if let Some(main_ops) = main.as_mut() {
                // Inside the trailing program section every line is an
                // op of the current block or the start of a helper.
                let trimmed = line.trim();
                if trimmed == "helper:" {
                    if !v2 {
                        return Err(err("`helper:` requires the v2 header"));
                    }
                    helpers.push(Helper::Ops(Vec::new()));
                    continue;
                }
                if let Some(rest) = trimmed.strip_prefix("helper-scalar:") {
                    if !v2 {
                        return Err(err("`helper-scalar:` requires the v2 header"));
                    }
                    let mut it = rest.split_whitespace();
                    let c1 = it
                        .next()
                        .and_then(|t| t.parse::<i8>().ok())
                        .ok_or_else(|| err("bad helper-scalar constants"))?;
                    let c2 = it
                        .next()
                        .and_then(|t| t.parse::<i8>().ok())
                        .ok_or_else(|| err("bad helper-scalar constants"))?;
                    if it.next().is_some() {
                        return Err(err("helper-scalar takes exactly two constants"));
                    }
                    helpers.push(Helper::Scalar(c1, c2));
                    continue;
                }
                if let Some(rest) = trimmed.strip_prefix("helper-obj:") {
                    if !v2 {
                        return Err(err("`helper-obj:` requires the v2 header"));
                    }
                    let mut it = rest.split_whitespace();
                    let c1 = it
                        .next()
                        .and_then(|t| t.parse::<i8>().ok())
                        .ok_or_else(|| err("bad helper-obj constants"))?;
                    let c2 = it
                        .next()
                        .and_then(|t| t.parse::<i8>().ok())
                        .ok_or_else(|| err("bad helper-obj constants"))?;
                    if it.next().is_some() {
                        return Err(err("helper-obj takes exactly two constants"));
                    }
                    helpers.push(Helper::ObjProbe(c1, c2));
                    continue;
                }
                let op = trimmed.parse::<Op>().map_err(|e| err(&e))?;
                if !v2 && op.is_obj() {
                    return Err(err("object ops require the v2 header"));
                }
                match helpers.last_mut() {
                    Some(Helper::Ops(ops)) => ops.push(op),
                    Some(Helper::Scalar(..)) | Some(Helper::ObjProbe(..)) => {
                        return Err(err(
                            "ops after a scalar/obj helper (start a `helper:` block)",
                        ))
                    }
                    None => main_ops.push(op),
                }
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| err("expected `key: value`"))?;
            let value = value.trim();
            match key.trim() {
                "seed" => seed = Some(value.parse::<u64>().map_err(|_| err("bad seed"))?),
                "case" => case = Some(value.parse::<u64>().map_err(|_| err("bad case"))?),
                "spec" => spec = Some(PipelineSpec::parse(value).map_err(|e| err(&e.to_string()))?),
                "lir-spec" => {
                    // The key's presence is what marks a through-lowering
                    // case; an empty value is the empty lir pipeline.
                    lir_spec = Some(if value.is_empty() {
                        PipelineSpec::new(Vec::new())
                    } else {
                        PipelineSpec::parse(value).map_err(|e| err(&e.to_string()))?
                    })
                }
                "adaptive" => {
                    if !v2 {
                        return Err(err("`adaptive:` requires the v2 header"));
                    }
                    adaptive = value.parse::<bool>().map_err(|_| err("bad adaptive"))?
                }
                "policy" => policy = Some(value.parse().map_err(|e: String| err(&e))?),
                "budget" => budgets = Some(Budgets::parse(value).map_err(|e| err(&e))?),
                "inject" => inject = Some(value.parse().map_err(|e: String| err(&e))?),
                "probe-seed" => {
                    if !v2 {
                        return Err(err("`probe-seed:` requires the v2 header"));
                    }
                    probe_seed = Some(value.parse::<u64>().map_err(|_| err("bad probe-seed"))?)
                }
                "cache-check" => {
                    if !v2 {
                        return Err(err("`cache-check:` requires the v2 header"));
                    }
                    cache_check = value.parse::<bool>().map_err(|_| err("bad cache-check"))?
                }
                "service-fault" => {
                    if !v2 {
                        return Err(err("`service-fault:` requires the v2 header"));
                    }
                    service_fault = Some(
                        value
                            .parse::<memoird::JobFaultPlan>()
                            .map_err(|e| err(&e))?,
                    )
                }
                "sym" => {
                    if !v2 {
                        return Err(err("`sym:` requires the v2 header"));
                    }
                    sym = value.parse::<bool>().map_err(|_| err("bad sym"))?
                }
                "minimized" => {
                    minimized = Some(value.parse::<bool>().map_err(|_| err("bad minimized"))?)
                }
                "failure" => failure = Some(value.to_string()),
                "ops" => main = Some(Vec::new()),
                other => return Err(err(&format!("unknown key `{other}`"))),
            }
        }

        Ok(Repro {
            seed: seed.ok_or("missing `seed:`")?,
            case: case.ok_or("missing `case:`")?,
            spec: spec.ok_or("missing `spec:`")?,
            lir_spec,
            adaptive,
            policy: policy.ok_or("missing `policy:`")?,
            budgets: budgets.unwrap_or_default(),
            inject,
            probe_seed,
            cache_check,
            service_fault,
            sym,
            minimized: minimized.ok_or("missing `minimized:`")?,
            failure: failure.ok_or("missing `failure:`")?,
            prog: CaseProgram {
                main: main.ok_or("missing `ops:` section")?,
                helpers,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            seed: 42,
            case: 17,
            spec: PipelineSpec::parse("ssa-construct,fixpoint<max=3>(simplify,dce),ssa-destruct")
                .unwrap(),
            lir_spec: None,
            adaptive: false,
            policy: FaultPolicy::SkipPass,
            budgets: Budgets::none(),
            inject: Some("panic@dce#2".parse().unwrap()),
            probe_seed: None,
            cache_check: false,
            service_fault: None,
            sym: false,
            minimized: true,
            failure: "panic: injected fault".to_string(),
            prog: CaseProgram::single(vec![Op::Push(-3), Op::Write(1, 7), Op::RemoveRange(0, 2)]),
        }
    }

    #[test]
    fn round_trips_through_text() {
        let r = sample();
        let text = r.to_string();
        assert!(text.starts_with(HEADER_V1), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), r, "{text}");

        // And without the optional inject line.
        let mut r2 = sample();
        r2.inject = None;
        assert_eq!(r2.to_string().parse::<Repro>().unwrap(), r2);
    }

    #[test]
    fn round_trips_budgets_and_lir_spec() {
        let mut r = sample();
        r.budgets = Budgets::parse("growth=16,fixpoint=2").unwrap();
        r.lir_spec = Some(PipelineSpec::parse("mem2reg,fixpoint<max=3>(constfold,dce)").unwrap());
        let text = r.to_string();
        assert!(text.contains("budget: growth=16,fixpoint=2"), "{text}");
        assert!(text.contains("lir-spec: mem2reg"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), r, "{text}");

        // An *empty* lir spec is a real case ("lower, then nothing") and
        // must survive the round trip as Some, not collapse to None.
        r.lir_spec = Some(PipelineSpec::new(Vec::new()));
        let text = r.to_string();
        let back = text.parse::<Repro>().unwrap();
        assert_eq!(back, r, "{text}");
        assert!(back.lir_spec.is_some());

        // Unlimited budgets write no line and read back as none().
        r.budgets = Budgets::none();
        let text = r.to_string();
        assert!(!text.contains("budget:"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap().budgets, Budgets::none());
    }

    #[test]
    fn round_trips_v2_programs() {
        // Helpers, object ops, and a probe seed together force — and
        // survive — the v2 header.
        let mut r = sample();
        r.probe_seed = Some(7);
        r.prog = CaseProgram {
            main: vec![
                Op::Push(1),
                Op::ObjWrite(0, 1, 9),
                Op::ObjTagPush(1, -2),
                Op::LinkWrite(0, 1, -3),
                Op::LinkNew(1, 8),
                Op::DocPush(0),
                Op::DocWrite(1, 0, 4),
                Op::DocAssocInsert(6, 1),
                Op::DocAssocRead(6, 0),
            ],
            helpers: vec![
                Helper::Ops(vec![Op::AssocInsert(2, 5), Op::ObjRead(0, 0)]),
                Helper::Scalar(3, -2),
                Helper::ObjProbe(-7, 4),
                Helper::Ops(vec![]),
            ],
        };
        let text = r.to_string();
        assert!(text.starts_with(HEADER_V2), "{text}");
        assert!(text.contains("probe-seed: 7"), "{text}");
        assert!(text.contains("helper-scalar: 3 -2"), "{text}");
        assert!(text.contains("helper-obj: -7 4"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), r, "{text}");

        // Each v2 feature alone is enough to flip the header.
        let mut obj_only = sample();
        obj_only.prog = CaseProgram::single(vec![Op::ObjRead(1, 0)]);
        assert!(obj_only.to_string().starts_with(HEADER_V2));
        assert_eq!(obj_only.to_string().parse::<Repro>().unwrap(), obj_only);
        let mut probe_only = sample();
        probe_only.probe_seed = Some(0);
        assert!(probe_only.to_string().starts_with(HEADER_V2));
        let mut adaptive_only = sample();
        adaptive_only.adaptive = true;
        let text = adaptive_only.to_string();
        assert!(text.starts_with(HEADER_V2), "{text}");
        assert!(text.contains("adaptive: true"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), adaptive_only, "{text}");
        let mut cache_only = sample();
        cache_only.cache_check = true;
        let text = cache_only.to_string();
        assert!(text.starts_with(HEADER_V2), "{text}");
        assert!(text.contains("cache-check: true"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), cache_only, "{text}");
        let mut service_only = sample();
        service_only.service_fault = Some("worker-panic@0#1".parse().unwrap());
        let text = service_only.to_string();
        assert!(text.starts_with(HEADER_V2), "{text}");
        assert!(text.contains("service-fault: worker-panic@0#1"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), service_only, "{text}");
        let mut sym_only = sample();
        sym_only.sym = true;
        let text = sym_only.to_string();
        assert!(text.starts_with(HEADER_V2), "{text}");
        assert!(text.contains("sym: true"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), sym_only, "{text}");
    }

    #[test]
    fn v1_files_reject_v2_features() {
        // A v1 header must not smuggle in v2 constructs — old tooling
        // would silently misread such a file.
        let with_helper = format!("{}helper:\n  push 1", sample());
        assert!(with_helper.parse::<Repro>().is_err(), "{with_helper}");
        let with_scalar = format!("{}helper-scalar: 1 2", sample());
        assert!(with_scalar.parse::<Repro>().is_err(), "{with_scalar}");
        let with_objprobe = format!("{}helper-obj: 1 2", sample());
        assert!(with_objprobe.parse::<Repro>().is_err(), "{with_objprobe}");
        let with_obj = format!("{}  obj-read 0 1\n", sample());
        assert!(with_obj.parse::<Repro>().is_err(), "{with_obj}");
        let with_graph = format!("{}  obj-link-new 0 3\n", sample());
        assert!(with_graph.parse::<Repro>().is_err(), "{with_graph}");
        let with_probe = sample()
            .to_string()
            .replace("minimized:", "probe-seed: 3\nminimized:");
        assert!(with_probe.parse::<Repro>().is_err(), "{with_probe}");
        let with_cache = sample()
            .to_string()
            .replace("minimized:", "cache-check: true\nminimized:");
        assert!(with_cache.parse::<Repro>().is_err(), "{with_cache}");
        let with_adaptive = sample()
            .to_string()
            .replace("minimized:", "adaptive: true\nminimized:");
        assert!(with_adaptive.parse::<Repro>().is_err(), "{with_adaptive}");
        let with_service = sample()
            .to_string()
            .replace("minimized:", "service-fault: slow-job@0\nminimized:");
        assert!(with_service.parse::<Repro>().is_err(), "{with_service}");
        let with_sym = sample()
            .to_string()
            .replace("minimized:", "sym: true\nminimized:");
        assert!(with_sym.parse::<Repro>().is_err(), "{with_sym}");
    }

    #[test]
    fn config_carries_the_whole_case() {
        let mut r = sample();
        r.budgets = Budgets::parse("fixpoint=1").unwrap();
        r.lir_spec = Some(PipelineSpec::parse("dce").unwrap());
        r.probe_seed = Some(99);
        let cfg = r.config();
        assert_eq!(cfg.policy, r.policy);
        assert_eq!(cfg.budgets, r.budgets);
        assert_eq!(cfg.inject, r.inject);
        assert_eq!(cfg.lir_spec, r.lir_spec);
        assert_eq!(cfg.probe_seed, r.probe_seed);
        r.adaptive = true;
        assert!(r.config().adaptive);
        r.cache_check = true;
        assert!(r.config().cache_check);
        r.service_fault = Some("poison-cache@0".parse().unwrap());
        assert_eq!(r.config().service_fault, r.service_fault);
        r.sym = true;
        assert!(r.config().sym);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!("".parse::<Repro>().is_err());
        assert!("not a repro".parse::<Repro>().is_err());
        let no_ops = "memoir-fuzz repro v1\nseed: 1\ncase: 0\nspec: dce\n\
                      policy: abort\nminimized: false\nfailure: x";
        assert!(no_ops.parse::<Repro>().is_err());
        let bad_op = format!("{}\n  fly 9", sample().to_string().trim_end());
        assert!(bad_op.parse::<Repro>().is_err());
        let bad_budget = "memoir-fuzz repro v1\nseed: 1\ncase: 0\nspec: dce\n\
                          policy: abort\nbudget: fuel=9\nminimized: false\nfailure: x\nops:";
        assert!(bad_budget.parse::<Repro>().is_err());
        // Ops directly after helper-scalar have no block to live in.
        let stray = format!(
            "{}helper-scalar: 1 2\n  push 3",
            sample().to_string().replace(HEADER_V1, HEADER_V2)
        );
        assert!(stray.parse::<Repro>().is_err(), "{stray}");
    }
}
