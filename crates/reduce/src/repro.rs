//! Replayable crash artifacts (`.repro` files).
//!
//! A repro is a small, line-oriented text file that captures *exactly*
//! one fuzz case: the op program, the pipeline spec, the fault policy,
//! per-case budgets, any injection plan, and — for through-lowering
//! cases — the low-level IR pipeline run after the `lower` stage.
//! `memoir-fuzz replay file.repro` re-runs it bit-for-bit;
//! `memoir-fuzz reduce file.repro` shrinks it in place.
//!
//! ```text
//! memoir-fuzz repro v1
//! seed: 42
//! case: 17
//! spec: ssa-construct,dce,ssa-destruct
//! lir-spec: mem2reg,constfold
//! policy: skip
//! budget: growth=16,fixpoint=2
//! inject: panic@dce
//! minimized: true
//! failure: panic: injected fault
//! ops:
//!   push -3
//!   write 1 7
//! ```
//!
//! `budget:` is omitted when unlimited and `inject:` when absent. A
//! present `lir-spec:` key marks a through-lowering case; its value may
//! be empty ("lower, then nothing").

use crate::genprog::Op;
use crate::harness::CaseConfig;
use passman::{Budgets, FaultPolicy, PipelineSpec};
use std::fmt;
use std::str::FromStr;

const HEADER: &str = "memoir-fuzz repro v1";

/// One replayable crash case.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// Campaign seed that produced the case.
    pub seed: u64,
    /// Case index within the campaign.
    pub case: u64,
    /// The (MEMOIR) pipeline spec the case ran.
    pub spec: PipelineSpec,
    /// The low-level IR pipeline after the `lower` stage, when this is a
    /// through-lowering case (may be empty: "lower, then nothing").
    pub lir_spec: Option<PipelineSpec>,
    /// Fault policy in effect.
    pub policy: FaultPolicy,
    /// Per-case budgets ([`Budgets::none`] when the line is absent).
    pub budgets: Budgets,
    /// Injection plan, if the campaign was seeded with one.
    pub inject: Option<passman::FaultPlan>,
    /// Whether this artifact has been through the reducer.
    pub minimized: bool,
    /// One-line failure classification from the harness.
    pub failure: String,
    /// The MUT-op program.
    pub ops: Vec<Op>,
}

impl Repro {
    /// The harness configuration this repro replays under.
    pub fn config(&self) -> CaseConfig {
        CaseConfig {
            policy: self.policy,
            inject: self.inject.clone(),
            budgets: self.budgets,
            lir_spec: self.lir_spec.clone(),
        }
    }
}

impl fmt::Display for Repro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{HEADER}")?;
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "case: {}", self.case)?;
        writeln!(f, "spec: {}", self.spec)?;
        if let Some(lspec) = &self.lir_spec {
            writeln!(f, "lir-spec: {lspec}")?;
        }
        writeln!(f, "policy: {}", self.policy)?;
        if !self.budgets.is_unlimited() {
            writeln!(f, "budget: {}", self.budgets)?;
        }
        if let Some(plan) = &self.inject {
            writeln!(f, "inject: {plan}")?;
        }
        writeln!(f, "minimized: {}", self.minimized)?;
        writeln!(f, "failure: {}", self.failure)?;
        writeln!(f, "ops:")?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl FromStr for Repro {
    type Err = String;

    fn from_str(s: &str) -> Result<Repro, String> {
        let mut lines = s.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty repro file")?;
        if first.trim() != HEADER {
            return Err(format!("not a repro file (expected `{HEADER}`)"));
        }

        let mut seed = None;
        let mut case = None;
        let mut spec = None;
        let mut lir_spec = None;
        let mut policy = None;
        let mut budgets = None;
        let mut inject = None;
        let mut minimized = None;
        let mut failure = None;
        let mut ops: Option<Vec<Op>> = None;

        for (i, raw) in lines {
            let line = raw.trim_end();
            if line.trim().is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}", i + 1);
            if let Some(list) = &mut ops {
                // Inside the trailing `ops:` block every line is one op.
                list.push(line.trim().parse::<Op>().map_err(|e| err(&e))?);
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| err("expected `key: value`"))?;
            let value = value.trim();
            match key.trim() {
                "seed" => seed = Some(value.parse::<u64>().map_err(|_| err("bad seed"))?),
                "case" => case = Some(value.parse::<u64>().map_err(|_| err("bad case"))?),
                "spec" => spec = Some(PipelineSpec::parse(value).map_err(|e| err(&e.to_string()))?),
                "lir-spec" => {
                    // The key's presence is what marks a through-lowering
                    // case; an empty value is the empty lir pipeline.
                    lir_spec = Some(if value.is_empty() {
                        PipelineSpec::new(Vec::new())
                    } else {
                        PipelineSpec::parse(value).map_err(|e| err(&e.to_string()))?
                    })
                }
                "policy" => policy = Some(value.parse().map_err(|e: String| err(&e))?),
                "budget" => budgets = Some(Budgets::parse(value).map_err(|e| err(&e))?),
                "inject" => inject = Some(value.parse().map_err(|e: String| err(&e))?),
                "minimized" => {
                    minimized = Some(value.parse::<bool>().map_err(|_| err("bad minimized"))?)
                }
                "failure" => failure = Some(value.to_string()),
                "ops" => ops = Some(Vec::new()),
                other => return Err(err(&format!("unknown key `{other}`"))),
            }
        }

        Ok(Repro {
            seed: seed.ok_or("missing `seed:`")?,
            case: case.ok_or("missing `case:`")?,
            spec: spec.ok_or("missing `spec:`")?,
            lir_spec,
            policy: policy.ok_or("missing `policy:`")?,
            budgets: budgets.unwrap_or_default(),
            inject,
            minimized: minimized.ok_or("missing `minimized:`")?,
            failure: failure.ok_or("missing `failure:`")?,
            ops: ops.ok_or("missing `ops:` section")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            seed: 42,
            case: 17,
            spec: PipelineSpec::parse("ssa-construct,fixpoint<max=3>(simplify,dce),ssa-destruct")
                .unwrap(),
            lir_spec: None,
            policy: FaultPolicy::SkipPass,
            budgets: Budgets::none(),
            inject: Some("panic@dce#2".parse().unwrap()),
            minimized: true,
            failure: "panic: injected fault".to_string(),
            ops: vec![Op::Push(-3), Op::Write(1, 7), Op::RemoveRange(0, 2)],
        }
    }

    #[test]
    fn round_trips_through_text() {
        let r = sample();
        let text = r.to_string();
        assert_eq!(text.parse::<Repro>().unwrap(), r, "{text}");

        // And without the optional inject line.
        let mut r2 = sample();
        r2.inject = None;
        assert_eq!(r2.to_string().parse::<Repro>().unwrap(), r2);
    }

    #[test]
    fn round_trips_budgets_and_lir_spec() {
        let mut r = sample();
        r.budgets = Budgets::parse("growth=16,fixpoint=2").unwrap();
        r.lir_spec = Some(PipelineSpec::parse("mem2reg,fixpoint<max=3>(constfold,dce)").unwrap());
        let text = r.to_string();
        assert!(text.contains("budget: growth=16,fixpoint=2"), "{text}");
        assert!(text.contains("lir-spec: mem2reg"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap(), r, "{text}");

        // An *empty* lir spec is a real case ("lower, then nothing") and
        // must survive the round trip as Some, not collapse to None.
        r.lir_spec = Some(PipelineSpec::new(Vec::new()));
        let text = r.to_string();
        let back = text.parse::<Repro>().unwrap();
        assert_eq!(back, r, "{text}");
        assert!(back.lir_spec.is_some());

        // Unlimited budgets write no line and read back as none().
        r.budgets = Budgets::none();
        let text = r.to_string();
        assert!(!text.contains("budget:"), "{text}");
        assert_eq!(text.parse::<Repro>().unwrap().budgets, Budgets::none());
    }

    #[test]
    fn config_carries_the_whole_case() {
        let mut r = sample();
        r.budgets = Budgets::parse("fixpoint=1").unwrap();
        r.lir_spec = Some(PipelineSpec::parse("dce").unwrap());
        let cfg = r.config();
        assert_eq!(cfg.policy, r.policy);
        assert_eq!(cfg.budgets, r.budgets);
        assert_eq!(cfg.inject, r.inject);
        assert_eq!(cfg.lir_spec, r.lir_spec);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!("".parse::<Repro>().is_err());
        assert!("not a repro".parse::<Repro>().is_err());
        let no_ops = "memoir-fuzz repro v1\nseed: 1\ncase: 0\nspec: dce\n\
                      policy: abort\nminimized: false\nfailure: x";
        assert!(no_ops.parse::<Repro>().is_err());
        let bad_op = format!("{}\n  fly 9", sample().to_string().trim_end());
        assert!(bad_op.parse::<Repro>().is_err());
        let bad_budget = "memoir-fuzz repro v1\nseed: 1\ncase: 0\nspec: dce\n\
                          policy: abort\nbudget: fuel=9\nminimized: false\nfailure: x\nops:";
        assert!(bad_budget.parse::<Repro>().is_err());
    }
}
