//! A tiny deterministic RNG (SplitMix64).
//!
//! The workspace is fully offline — no `rand` crate — and the fuzz
//! harness must be replayable from a single seed, so a 64-bit splittable
//! mixer is exactly enough.

/// SplitMix64: one `u64` of state, full-period, excellent mixing.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift: negligible bias for the small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw: true with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// A derived generator for sub-stream `n` (e.g. one per fuzz case),
    /// decorrelated from the parent by mixing.
    pub fn split(&self, n: u64) -> SplitMix64 {
        let mut g = SplitMix64::new(self.state ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
        g.next_u64(); // discard one output to decouple nearby seeds
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // All distinct (astronomically likely for a good mixer).
        let set: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(set.len(), xs.len());
    }

    #[test]
    fn below_is_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.below(13) < 13);
        }
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[g.index(4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 600),
            "roughly uniform: {counts:?}"
        );
    }

    #[test]
    fn split_streams_differ() {
        let g = SplitMix64::new(1);
        let mut s0 = g.split(0);
        let mut s1 = g.split(1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }
}
