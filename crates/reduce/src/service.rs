//! `memoir-fuzz service` — fuzz the `memoird` service envelope.
//!
//! Each case exercises three surfaces of the compile service:
//!
//! 1. **Parsers.** Token soup through the textual job-stream syntax
//!    ([`memoird::JobLine`], `SOURCE [:: SPEC]`) and job-fault plans
//!    ([`memoird::JobFaultPlan`], `kind@target[#attempt]`): a parser
//!    must never panic, and anything it accepts must round-trip through
//!    its `Display` form.
//! 2. **Batches.** A randomized job batch through [`memoird::run_jobs`]
//!    with sampled fault injection: zero lost jobs (every submission
//!    resolves to exactly one terminal outcome), byte-identical outputs
//!    to a clean run of the same batch at the same seed, and a doubled
//!    batch through the job-output cache whose warm halves must serve
//!    the same bytes the cold halves computed.
//! 3. **The envelope oracle.** One whole-language case through the
//!    harness's service-envelope differential oracle
//!    ([`CaseConfig::service_fault`]), the path `memoir-fuzz run
//!    --service-fault` and `.repro` replay take.

use crate::cli::{check, soup, CliCrash};
use crate::genprog::{build_case, random_case, CaseDims};
use crate::harness::{run_case_prog, CaseConfig, Outcome};
use crate::rng::SplitMix64;
use passman::PipelineSpec;

const JOB_LINE_TOKENS: &[&str] = &[
    "synth(3,1)",
    "synth(",
    ")",
    "(",
    "::",
    ":",
    "a.mir",
    "examples/listing1.mir",
    "dce",
    "ssa-construct",
    "ssa-destruct",
    ",",
    "lower",
    "fixpoint",
    "<",
    ">",
    "=",
    "max",
    " ",
    "",
    "synth(0,0)",
    "synth(1,18446744073709551615)",
    "synth(1)",
    "0",
    "3",
    "-1",
    "*",
    "#",
    "\t",
    "héllo.mir",
    "\u{0}",
];

const JOB_FAULT_TOKENS: &[&str] = &[
    "slow-job",
    "worker-panic",
    "poison-cache",
    "panic",
    "@",
    "#",
    "*",
    "0",
    "3",
    "-1",
    "18446744073709551615",
    "",
    " ",
    "@@",
    "##",
    "@*#",
];

/// Always-compiling pipeline specs for batch jobs (the batch oracle
/// needs every clean job to resolve `ok`, so the specs are fixed and
/// known-good; the *programs* vary). The last is a through-lowering
/// spec, so batches also cover low-level IR outputs.
const BATCH_SPECS: &[&str] = &[
    "ssa-construct,constprop,dce,ssa-destruct",
    "ssa-construct,dce,ssa-destruct",
    "ssa-construct,constprop,sink,dce,ssa-destruct,lower,mem2reg,dce",
];

/// A randomized job batch through the service, three ways: clean,
/// fault-injected (outputs must not diverge), and doubled through the
/// job-output cache (warm must equal cold). Any lost job, shed job, or
/// byte divergence is a finding.
fn fuzz_service_batch(rng: &mut SplitMix64) -> Option<CliCrash> {
    let njobs = 1 + rng.index(3);
    let jobs: Vec<memoird::JobSpec> = (0..njobs)
        .map(|i| {
            let prog = random_case(
                rng,
                10,
                CaseDims {
                    objects: false,
                    multi: false,
                },
            );
            let (m, _) = build_case(&prog);
            let spec = PipelineSpec::parse(BATCH_SPECS[rng.index(BATCH_SPECS.len())]).unwrap();
            memoird::JobSpec::new(format!("case-{i}"), m, spec)
        })
        .collect();

    let mut faults: Vec<memoird::JobFaultPlan> = Vec::new();
    let mut timeout_ms = None;
    for _ in 0..rng.index(3) {
        let target = rng.index(njobs);
        let text = match rng.below(4) {
            0 => format!("worker-panic@{target}"),
            1 => format!("worker-panic@{target}#1"),
            2 => format!("poison-cache@{target}"),
            _ => {
                // slow-job only stalls past an armed watchdog, so give
                // it one (the stall sleeps ~2× this, the retry is fast).
                timeout_ms = Some(300);
                format!("slow-job@{target}")
            }
        };
        faults.push(text.parse().unwrap());
    }
    let workers = 1 + rng.index(2);
    let seed = rng.next_u64();
    let scfg = |faults: Vec<memoird::JobFaultPlan>, job_cache: bool| memoird::ServiceConfig {
        workers,
        timeout_ms,
        seed,
        cache: Some(passman::CompileCache::new()),
        job_cache,
        retry: memoird::RetryPolicy {
            base_backoff_ms: 1,
            max_backoff_ms: 4,
            ..Default::default()
        },
        faults,
        ..Default::default()
    };
    let input = format!(
        "{njobs} job(s), workers {workers}, seed {seed}, faults [{}]",
        faults
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let crash = |message: String| {
        Some(CliCrash {
            surface: "service-batch",
            input: input.clone(),
            message,
        })
    };

    let (clean, clean_stats) = memoird::run_jobs(scfg(Vec::new(), false), jobs.clone());
    if clean.len() != njobs || clean_stats.terminal() != njobs as u64 {
        return crash(format!(
            "clean batch lost jobs: {} outcome(s), {} terminal of {njobs}",
            clean.len(),
            clean_stats.terminal()
        ));
    }
    for (i, o) in clean.iter().enumerate() {
        if o.kind() != "ok" {
            return crash(format!("clean job {i} resolved as `{}`", o.kind()));
        }
    }

    let (faulty, faulty_stats) = memoird::run_jobs(scfg(faults.clone(), false), jobs.clone());
    if faulty.len() != njobs || faulty_stats.terminal() != njobs as u64 {
        return crash(format!(
            "injected batch lost jobs: {} outcome(s), {} terminal of {njobs}",
            faulty.len(),
            faulty_stats.terminal()
        ));
    }
    for i in 0..njobs {
        if faulty[i].output() != clean[i].output() {
            return crash(format!(
                "job {i} output under injection differs from the clean run ({} vs {})",
                clean[i].kind(),
                faulty[i].kind()
            ));
        }
    }

    // Cached-vs-cold: submit every job twice through the job-output
    // cache; the warm copies must serve the bytes the cold ones wrote.
    let mut doubled = jobs.clone();
    doubled.extend(jobs);
    let (outs, cache_stats) = memoird::run_jobs(scfg(Vec::new(), true), doubled);
    if outs.len() != 2 * njobs || cache_stats.terminal() != 2 * njobs as u64 {
        return crash(format!(
            "doubled batch lost jobs: {} outcome(s), {} terminal of {}",
            outs.len(),
            cache_stats.terminal(),
            2 * njobs
        ));
    }
    for i in 0..njobs {
        if outs[i].output() != outs[i + njobs].output() {
            return crash(format!(
                "job-cache warm output for job {i} differs from the cold compile"
            ));
        }
    }
    None
}

/// One whole-language case through the harness's service-envelope
/// differential oracle, with a sampled recoverable fault plan. A
/// `service-lost`/`service-diverge` (or any other) crash is a finding.
fn fuzz_envelope_case(rng: &mut SplitMix64) -> Option<CliCrash> {
    let prog = random_case(
        rng,
        10,
        CaseDims {
            objects: true,
            multi: false,
        },
    );
    let plan: memoird::JobFaultPlan = match rng.below(3) {
        0 => "worker-panic@0",
        1 => "poison-cache@0",
        _ => "worker-panic@0#1",
    }
    .parse()
    .unwrap();
    let spec = PipelineSpec::parse("ssa-construct,constprop,dce,ssa-destruct").unwrap();
    let cfg = CaseConfig {
        service_fault: Some(plan.clone()),
        ..CaseConfig::default()
    };
    match run_case_prog(&prog, &spec, &cfg) {
        Outcome::Pass => None,
        Outcome::Crash { kind, detail } => Some(CliCrash {
            surface: "service-case",
            input: format!("plan {plan}, prog {prog:?}"),
            message: format!("[{kind}] {detail}"),
        }),
    }
}

/// Runs one service-fuzz case across all three surfaces (parsers, a
/// randomized batch, the envelope oracle). Returns the first finding.
pub fn fuzz_service_case(rng: &mut SplitMix64) -> Option<CliCrash> {
    if let Some(c) = check(
        "job-line",
        &soup(rng, JOB_LINE_TOKENS, 8),
        |s| s.parse::<memoird::JobLine>().ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    if let Some(c) = check(
        "job-fault",
        &soup(rng, JOB_FAULT_TOKENS, 6),
        |s| s.parse::<memoird::JobFaultPlan>().ok(),
        |v| v.to_string(),
    ) {
        return Some(c);
    }
    if let Some(c) = fuzz_service_batch(rng) {
        return Some(c);
    }
    fuzz_envelope_case(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_surfaces_survive_a_smoke_campaign() {
        let root = SplitMix64::new(0x5eb1);
        for case in 0..12 {
            let mut rng = root.split(case);
            if let Some(c) = fuzz_service_case(&mut rng) {
                panic!(
                    "case {case}: [{}] {}\ninput: {}",
                    c.surface, c.message, c.input
                );
            }
        }
    }
}
