//! Replays every archived artifact in `findings/` (reduced `.repro`
//! files for bugs the fuzzer found that have since been fixed) and
//! asserts none of them crashes again. See `findings/README.md`.

use reduce::{run_case_prog, Outcome, Repro};
use std::path::PathBuf;

#[test]
fn archived_findings_stay_fixed() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../findings");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("findings/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("repro") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let repro: Repro = text
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run_case_prog(&repro.prog, &repro.spec, &repro.config());
        assert_eq!(
            outcome,
            Outcome::Pass,
            "{}: archived finding reproduces again (recorded failure: {})",
            path.display(),
            repro.failure
        );
        replayed += 1;
    }
    assert!(
        replayed > 0,
        "no .repro artifacts found in {}",
        dir.display()
    );
}
