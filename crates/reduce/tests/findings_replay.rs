//! Replays every archived artifact in `findings/` (reduced `.repro`
//! files for bugs the fuzzer found that have since been fixed) and
//! asserts none of them crashes again. See `findings/README.md`.
//!
//! Bugs whose trigger shape the fuzzer's op language cannot express
//! (genprog programs are straight-line; the index-range soundness bug
//! needed a loop φ) are archived here as builder-constructed
//! regressions instead of `.repro` files — same contract: each test
//! reproduces a real, since-fixed miscompile and fails if it returns.

use memoir_ir::{BinOp, CmpOp, Form, ModuleBuilder, Repr, Type};
use reduce::{run_case_prog, Outcome, Repro};
use std::path::PathBuf;

#[test]
fn archived_findings_stay_fixed() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../findings");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("findings/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("repro") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let repro: Repro = text
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = run_case_prog(&repro.prog, &repro.spec, &repro.config());
        assert_eq!(
            outcome,
            Outcome::Pass,
            "{}: archived finding reproduces again (recorded failure: {})",
            path.display(),
            repro.failure
        );
        replayed += 1;
    }
    assert!(
        replayed > 0,
        "no .repro artifacts found in {}",
        dir.display()
    );
}

/// A `for i in 0..3`-shaped loop whose counter φ is also used *after*
/// the loop, where it holds the exit value `3`. Both index-range
/// manifestations below hinge on the same root cause: `IndexRanges`
/// claimed `R(i) = [0 : 3)` for the φ — the in-body bound — but the φ
/// denotes every value the variable takes, including the exit value
/// that flows to uses after the loop.
fn exit_value_loop(
    b: &mut memoir_ir::FunctionBuilder<'_>,
    body_step: impl FnOnce(&mut memoir_ir::FunctionBuilder<'_>, memoir_ir::ValueId),
) -> memoir_ir::ValueId {
    let i64t = b.ty(Type::I64);
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    let zero = b.i64(0);
    let one = b.i64(1);
    let three = b.i64(3);
    let entry = b.func.entry;
    b.jump(header);
    b.switch_to(header);
    let i = b.phi_placeholder(i64t);
    b.add_phi_incoming(i, entry, zero);
    let done = b.cmp(CmpOp::Ge, i, three);
    b.branch(done, exit, body);
    b.switch_to(body);
    body_step(b, i);
    let next = b.add(i, one);
    let bb = b.current_block();
    b.add_phi_incoming(i, bb, next);
    b.jump(header);
    b.switch_to(exit);
    i
}

/// Index-range soundness, adaptive manifestation: the dense layout was
/// sized from the φ's claimed bound `[0 : 3)` (cap 3), but the write
/// *after* the loop uses the exit value `3` — one slot past the dense
/// array, a `BadAddress` trap on lir that the MEMOIR interpreter never
/// takes. Fixed by widening header-tested φ ranges by one step (and
/// folding the untested init in), so the cap is now 4 and the boundary
/// write stays in bounds.
#[test]
fn idxrange_exit_value_dense_boundary_write_stays_fixed() {
    let mut mb = ModuleBuilder::new("m");
    mb.func("main", Form::Mut, |b| {
        let i64t = b.ty(Type::I64);
        let a = b.new_assoc(i64t, i64t);
        let i = exit_value_loop(b, |b, i| {
            let one = b.i64(1);
            b.mut_insert(a, i, Some(one));
        });
        // i = 3 here: the boundary index the old analysis excluded.
        let seven = b.i64(7);
        b.mut_insert(a, i, Some(seven));
        let v = b.read(a, i);
        b.returns(&[i64t]);
        b.ret(vec![v]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");

    // The analysis must still choose dense (the fix widens the cap, it
    // does not give up on the bound) — and the cap must cover the exit
    // value.
    let choices: Vec<Repr> = memoir_analysis::repr::choose_reprs(&m)
        .into_values()
        .collect();
    assert_eq!(choices, vec![Repr::Dense { cap: 4 }], "{choices:?}");

    let oracle: Vec<i64> = memoir_interp::Interp::new(&m)
        .with_fuel(1_000_000)
        .run_by_name("main", vec![])
        .expect("MEMOIR semantics: assoc insert at any key succeeds")
        .into_iter()
        .map(|v| match v {
            memoir_interp::Value::Int(_, x) => x,
            other => panic!("scalar return expected, got {other:?}"),
        })
        .collect();

    let pipeline =
        memoir_opt::lowering::split_lowered_spec(&passman::PipelineSpec::parse("lower").unwrap())
            .unwrap()
            .expect("spec has a lower stage");
    let cfg = memoir_opt::lowering::LowerConfig {
        adaptive: true,
        ..Default::default()
    };
    let out = memoir_opt::lowering::compile_lowered_with(&mut m, &pipeline, &cfg)
        .expect("adaptive lowering must not fault");
    let lm = out.lowered.expect("stage ran");
    let got = lir::LirMachine::new(&lm)
        .with_fuel(1_000_000)
        .run_by_name("main", vec![])
        .expect("dense boundary write must stay in bounds");
    assert_eq!(
        got, oracle,
        "adaptive lowering diverged from the MEMOIR interpreter"
    );
}

/// Index-range soundness, fusion manifestation: `read(c', k)` was CSE'd
/// backwards through `rmw(c, i, ..)` because the φ's claimed range
/// `[0 : 3)` is disjoint from `k = 3` — but the rmw runs after the
/// loop, at the exit value `i = 3 = k`, so the "redundant" read
/// observed the stale pre-rmw value (1010 instead of 1011). The
/// widened φ range overlaps `k` and blocks the unsound CSE.
#[test]
fn idxrange_exit_value_fusion_read_cse_stays_fixed() {
    let mut mb = ModuleBuilder::new("m");
    mb.func("main", Form::Ssa, |b| {
        let i64t = b.ty(Type::I64);
        let k3 = b.i64(3);
        let ten = b.i64(10);
        let a0 = b.new_assoc(i64t, i64t);
        let a1 = b.insert(a0, k3, Some(ten));
        let i = exit_value_loop(b, |_, _| {});
        let r1 = b.read(a1, k3);
        // i = 3 here: modifies exactly the key the old range analysis
        // proved this rmw could not touch.
        let one = b.i64(1);
        let a2 = b.rmw(a1, i, BinOp::Add, one);
        let r2 = b.read(a2, k3);
        let hundred = b.i64(100);
        let hi = b.bin(BinOp::Mul, r1, hundred);
        let sum = b.add(hi, r2);
        b.returns(&[i64t]);
        b.ret(vec![sum]);
    });
    let mut m = mb.finish();
    m.entry = m.func_by_name("main");
    let before = m.clone();

    let spec = passman::PipelineSpec::parse("fusion").unwrap();
    memoir_opt::pipeline::compile_spec_with(&mut m, &spec, |pm| pm).expect("fusion runs");

    let got = memoir_interp::Interp::new(&m)
        .with_fuel(1_000_000)
        .run_by_name("main", vec![])
        .expect("no traps");
    assert_eq!(
        got,
        vec![memoir_interp::Value::Int(
            m.types
                .get(m.funcs[m.func_by_name("main").unwrap()].ret_tys[0]),
            1011
        )],
        "read after the exit-value rmw must see the updated element"
    );

    // The symbolic oracle is the tool that pinned this bug down: the
    // pre-pass module must still prove equivalent to the post-pass one.
    let verdict = symexec::prove_memoir_equiv(&before, &m, "main", &symexec::Budget::default());
    assert!(
        matches!(verdict, symexec::FnVerdict::Proved),
        "fusion output no longer proves equivalent: {verdict:?}"
    );
}
