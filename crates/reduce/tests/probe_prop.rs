//! Property test for the probing oracle: `run_case_prog` with a fixed
//! `probe_seed` is deterministic — running the same case twice yields the
//! same `Outcome`, including the probe verdict. This is what makes
//! `probe-diverge` / `lower-probe` artifacts replayable from a `.repro`.

use proptest::prelude::*;
use reduce::{random_case, random_lir_spec, random_spec, CaseConfig, CaseDims, SplitMix64};

proptest! {
    // Each case runs two full four-way differential pipelines; keep the
    // count low so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-language cases (objects + helpers) probed through `--lower`
    /// produce the same outcome on replay with the same probe seed.
    #[test]
    fn probe_agreement_is_deterministic_per_seed(
        case_seed in any::<u64>(),
        spec_seed in any::<u64>(),
        probe_seed in any::<u64>(),
    ) {
        let dims = CaseDims { objects: true, multi: true };
        let prog = random_case(&mut SplitMix64::new(case_seed), 12, dims);
        let spec = random_spec(&mut SplitMix64::new(spec_seed));
        let lir_spec = random_lir_spec(&mut SplitMix64::new(spec_seed ^ 0x9e3779b97f4a7c15));
        let cfg = CaseConfig {
            lir_spec: Some(lir_spec),
            probe_seed: Some(probe_seed),
            ..Default::default()
        };
        let first = reduce::run_case_prog(&prog, &spec, &cfg);
        let second = reduce::run_case_prog(&prog, &spec, &cfg);
        prop_assert_eq!(first, second);
    }
}
