//! Acceptance gate for prove-then-probe translation validation
//! (DESIGN §17): on a 500-case corpus of small multi-function genprog
//! programs, the symbolic backend must discharge at least 60% of
//! checkable functions *probe-free* at the default path budget — the
//! point of the oracle is proofs, with probing as the fallback, not the
//! other way round.

use reduce::{build_case, random_case, CaseDims, SplitMix64};

#[test]
fn prove_mode_discharges_most_small_functions() {
    let mut rng = SplitMix64::new(0x5eed_cafe);
    let dims = CaseDims {
        objects: true,
        multi: true,
    };
    let (mut checked, mut proved, mut skipped) = (0usize, 0usize, 0usize);
    for _ in 0..500 {
        let prog = random_case(&mut rng, 10, dims);
        let (m, _) = build_case(&prog);
        let lm = memoir_lower::lower_module(&m).expect("corpus lowers");
        let report = memoir_lower::cross_validate(&m, &lm, &[1, 2]).expect("healthy corpus");
        checked += report.functions_checked;
        proved += report.functions_proved;
        skipped += report.functions_skipped;
    }
    assert!(checked > 0, "corpus produced no checkable functions");
    let pct = 100.0 * proved as f64 / checked as f64;
    assert!(
        pct >= 60.0,
        "prove mode discharged only {proved}/{checked} functions probe-free \
         ({pct:.1}%, {skipped} skipped) — need >= 60%"
    );
}
