//! Property tests for the bounded symbolic oracle.
//!
//! Two properties the translation-validation story rests on:
//!
//! 1. *Agreement* — on random whole-language cases the symbolic axis
//!    never fires: path-set predictions match the concrete interpreter
//!    (`sym-unsound` is a solver/enumerator bug by definition), and the
//!    optimizer's output proves equivalent to its input on a confirmed
//!    witness or not at all (`sym-diverge` is a real miscompile).
//! 2. *Determinism* — path enumeration is a pure function of the
//!    module: concurrent enumerations from many threads produce
//!    identical path sets, which is what makes `sym:`-keyed `.repro`
//!    artifacts replayable.

use proptest::prelude::*;
use reduce::{build_case, random_case, random_spec, CaseConfig, CaseDims, Outcome, SplitMix64};
use symexec::{enumerate_memoir, seed_params, Budget};

proptest! {
    // Each agreement case enumerates every function of a whole-language
    // module and re-proves the pipeline; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero `sym-unsound`, zero `sym-diverge` on random cases through
    /// random pipelines. Any other outcome kind would be a pre-existing
    /// pipeline bug, not a symbolic-oracle bug, so the assertion is
    /// specifically about the `sym-*` classes.
    #[test]
    fn symbolic_and_concrete_interpreters_agree(
        case_seed in any::<u64>(),
        spec_seed in any::<u64>(),
    ) {
        let dims = CaseDims { objects: true, multi: true };
        let prog = random_case(&mut SplitMix64::new(case_seed), 12, dims);
        let spec = random_spec(&mut SplitMix64::new(spec_seed));
        let cfg = CaseConfig { sym: true, ..Default::default() };
        let out = reduce::run_case_prog(&prog, &spec, &cfg);
        if let Outcome::Crash { kind, detail } = &out {
            prop_assert!(
                !kind.starts_with("sym-"),
                "symbolic oracle fired on a healthy case: {detail}"
            );
        }
        // And the axis is replay-stable: the same case crashes (or
        // passes) identically the second time.
        prop_assert_eq!(&out, &reduce::run_case_prog(&prog, &spec, &cfg));
    }

    /// Path enumeration from four concurrent threads agrees exactly
    /// with a baseline enumeration — same paths, same order, for every
    /// scalar-signature function of the case.
    #[test]
    fn path_enumeration_is_deterministic_across_threads(
        case_seed in any::<u64>(),
    ) {
        let dims = CaseDims { objects: true, multi: true };
        let prog = random_case(&mut SplitMix64::new(case_seed), 10, dims);
        let (m, _) = build_case(&prog);
        let budget = Budget::default();
        let enumerate_all = || {
            let mut out = Vec::new();
            for (fid, _) in m.funcs.iter() {
                let Some(mut pool) = seed_params(&m, fid) else { continue };
                out.push(enumerate_memoir(&m, fid, &mut pool, &budget).ok());
            }
            out
        };
        let baseline = enumerate_all();
        let runs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(enumerate_all)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for run in &runs {
            prop_assert_eq!(run, &baseline);
        }
    }
}
