//! Per-function equivalence from path enumeration.
//!
//! Two functions are compared by enumerating both path sets over a
//! *shared* term pool (so parameter `i` is the same term on both sides)
//! and discharging every jointly-feasible path pair:
//!
//! * a MEMOIR/source path that **traps** imposes no obligation — this
//!   matches the probe policy, where a probe on which the source
//!   interpreter traps is skipped conservatively;
//! * a source `Ret` paired with a target `Trap`, or with a `Ret` whose
//!   terms are not provably equal under the joint path condition, is a
//!   *candidate* divergence — never a verdict. The solver's bounded
//!   model search produces a witness, and the witness is **confirmed on
//!   the concrete interpreters** before `Diverged` is reported. A
//!   candidate with no confirmable witness yields `Inconclusive`
//!   ("fall back to probing"), never a false alarm.
//!
//! `Proved` therefore means: every jointly-feasible pair was discharged
//! structurally (identical terms) or by the interval/congruence solver —
//! over the *synthesizable* input domains only (see [`FnVerdict::Proved`]).

use crate::memoir::seed_params;
use crate::solver::{self, Lit};
use crate::term::TermPool;
use crate::{lirsym, memoir, Budget, Path, PathEnd, SymError};
use lir::{LirMachine, Module as LModule};
use memoir_ir::{CmpOp, Module, Type};

/// Interpreter fuel for witness confirmation runs.
const CONFIRM_FUEL: u64 = 10_000_000;

/// The outcome of a per-function equivalence attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FnVerdict {
    /// Every jointly-feasible path pair was discharged: the functions
    /// agree on all inputs **within the per-type synthesizable domains**
    /// of [`crate::term::type_domain`] (the same domains `synth_args`
    /// probes draw from) — notably `Index` parameters are only covered
    /// on the probe window `[0, 16]` and `U64` only with the sign bit
    /// clear. Behavior outside those domains is *not* certified, and a
    /// function discharged in prove mode is not probed there either; a
    /// caller needing coverage beyond the window must treat `Proved` as
    /// bounded, not universal. Within the domains the enumerated path
    /// space is exhaustive whenever enumeration fits the budget.
    Proved,
    /// A divergence witness, confirmed by running both concrete
    /// interpreters on `args`.
    Diverged {
        /// The confirmed witness arguments.
        args: Vec<i64>,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// Could not prove or refute within the budget/solver power; the
    /// caller should fall back to probing.
    Inconclusive(&'static str),
}

fn budget_reason(e: SymError) -> &'static str {
    match e {
        SymError::Unsupported(what) => what,
        SymError::BudgetExceeded => "path/op budget exceeded",
    }
}

/// Discharges all jointly-feasible path pairs; `confirm` runs the
/// concrete engines on a witness and returns `Some(detail)` when they
/// really disagree.
fn compare_paths(
    pool: &mut TermPool,
    paths_a: &[Path],
    paths_b: &[Path],
    confirm: &mut dyn FnMut(&[i64]) -> Option<String>,
) -> FnVerdict {
    for pa in paths_a {
        let ret_a = match &pa.end {
            PathEnd::Trap => continue, // source trap: no obligation
            PathEnd::Ret(terms) => terms,
        };
        for pb in paths_b {
            let mut joint: Vec<Lit> = pa.cond.clone();
            joint.extend_from_slice(&pb.cond);
            if solver::contradicts(pool, &joint) {
                continue; // the two paths cannot co-occur
            }
            match &pb.end {
                PathEnd::Trap => {
                    // Source returns, target traps: candidate.
                    match solver::find_model(pool, &joint) {
                        Some(model) => match confirm(&model) {
                            Some(detail) => {
                                return FnVerdict::Diverged {
                                    args: model,
                                    detail,
                                }
                            }
                            None => return FnVerdict::Inconclusive("unconfirmed trap candidate"),
                        },
                        None => return FnVerdict::Inconclusive("no witness for trap candidate"),
                    }
                }
                PathEnd::Ret(ret_b) => {
                    if ret_a.len() != ret_b.len() {
                        return FnVerdict::Inconclusive("return arity mismatch");
                    }
                    for (&x, &y) in ret_a.iter().zip(ret_b.iter()) {
                        if x == y {
                            continue; // structurally identical
                        }
                        let ne = pool.cmp(CmpOp::Ne, false, x, y);
                        let mut lits = joint.clone();
                        lits.push((ne, true));
                        if solver::contradicts(pool, &lits) {
                            continue; // provably equal under the joint condition
                        }
                        match solver::find_model(pool, &lits) {
                            Some(model) => match confirm(&model) {
                                Some(detail) => {
                                    return FnVerdict::Diverged {
                                        args: model,
                                        detail,
                                    }
                                }
                                // The symbolic witness did not reproduce
                                // concretely: don't trust either engine
                                // enough to rule.
                                None => {
                                    return FnVerdict::Inconclusive("unconfirmed value candidate")
                                }
                            },
                            None => return FnVerdict::Inconclusive("no witness for candidate"),
                        }
                    }
                }
            }
        }
    }
    FnVerdict::Proved
}

/// Runs the MEMOIR interpreter on raw scalar args (typed per the
/// function's signature). `None` = trapped / non-scalar result — no
/// agreement obligation.
fn run_memoir_concrete(m: &Module, fname: &str, args: &[i64]) -> Option<Vec<i64>> {
    use memoir_interp::{Interp, Value};
    let fid = m.func_by_name(fname)?;
    let f = &m.funcs[fid];
    let vals: Vec<Value> = f
        .params
        .iter()
        .zip(args.iter())
        .map(|(p, &v)| match m.types.get(p.ty) {
            Type::Bool => Value::Bool(v != 0),
            ty => Value::Int(ty, v),
        })
        .collect();
    let mut interp = Interp::new(m).with_fuel(CONFIRM_FUEL);
    let out = interp.run_by_name(fname, vals).ok()?;
    out.iter().map(Value::as_int).collect()
}

/// Proves (or refutes, with a confirmed witness) that the lowered
/// function `fname` in `lm` agrees with its MEMOIR source in `m`.
pub fn prove_lowering(m: &Module, lm: &LModule, fname: &str, budget: &Budget) -> FnVerdict {
    let Some(fid) = m.func_by_name(fname) else {
        return FnVerdict::Inconclusive("unknown source function");
    };
    let Some(lfun) = lm.by_name(fname) else {
        return FnVerdict::Inconclusive("missing lowered function");
    };
    let Some(mut pool) = seed_params(m, fid) else {
        return FnVerdict::Inconclusive("non-scalar signature");
    };
    if lm.funcs[lfun.0 as usize].num_params as usize != m.funcs[fid].params.len() {
        return FnVerdict::Inconclusive("parameter count mismatch");
    }
    let paths_a = match memoir::enumerate_memoir(m, fid, &mut pool, budget) {
        Ok(p) => p,
        Err(e) => return FnVerdict::Inconclusive(budget_reason(e)),
    };
    let paths_b = match lirsym::enumerate_lir(lm, lfun, &mut pool, budget) {
        Ok(p) => p,
        Err(e) => return FnVerdict::Inconclusive(budget_reason(e)),
    };
    let mut confirm = |args: &[i64]| -> Option<String> {
        let expected = run_memoir_concrete(m, fname, args)?;
        let got = LirMachine::new(lm)
            .with_fuel(CONFIRM_FUEL)
            .run_by_name(fname, args.to_vec());
        match got {
            Err(trap) => Some(format!(
                "`{fname}`({args:?}): memoir-interp returned {expected:?} but LirMachine \
                 trapped: {trap:?}"
            )),
            Ok(got) if got != expected => Some(format!(
                "`{fname}`({args:?}): memoir-interp returned {expected:?} but LirMachine \
                 returned {got:?}"
            )),
            Ok(_) => None,
        }
    };
    compare_paths(&mut pool, &paths_a, &paths_b, &mut confirm)
}

/// Proves (or refutes, with a confirmed witness) that two MEMOIR modules
/// agree on function `fname` — the peephole-verification backend for
/// passman's `verify-sym` option (before-module vs after-module).
pub fn prove_memoir_equiv(ma: &Module, mb: &Module, fname: &str, budget: &Budget) -> FnVerdict {
    let (Some(fa), Some(fb)) = (ma.func_by_name(fname), mb.func_by_name(fname)) else {
        return FnVerdict::Inconclusive("function missing on one side");
    };
    let Some(mut pool) = seed_params(ma, fa) else {
        return FnVerdict::Inconclusive("non-scalar signature");
    };
    if seed_params(mb, fb).map(|p| p.param_tys) != Some(pool.param_tys.clone()) {
        return FnVerdict::Inconclusive("signature mismatch");
    }
    let paths_a = match memoir::enumerate_memoir(ma, fa, &mut pool, budget) {
        Ok(p) => p,
        Err(e) => return FnVerdict::Inconclusive(budget_reason(e)),
    };
    let paths_b = match memoir::enumerate_memoir(mb, fb, &mut pool, budget) {
        Ok(p) => p,
        Err(e) => return FnVerdict::Inconclusive(budget_reason(e)),
    };
    let mut confirm = |args: &[i64]| -> Option<String> {
        let expected = run_memoir_concrete(ma, fname, args)?;
        match run_memoir_concrete(mb, fname, args) {
            None => Some(format!(
                "`{fname}`({args:?}): before returned {expected:?} but after trapped"
            )),
            Some(got) if got != expected => Some(format!(
                "`{fname}`({args:?}): before returned {expected:?} but after returned {got:?}"
            )),
            Some(_) => None,
        }
    };
    compare_paths(&mut pool, &paths_a, &paths_b, &mut confirm)
}
