//! # symexec
//!
//! A bounded path-enumeration symbolic executor over both MEMOIR and the
//! low-level IR, used as a translation-validation oracle:
//!
//! * [`term`] — hash-consed term DAGs over the entry function's
//!   parameters, with constant folding and canonicalization;
//! * [`solver`] — an in-tree normalizer/solver (interval + congruence +
//!   structural equality — **no external SMT**) for path-condition
//!   feasibility, index narrowing, and bounded witness search;
//! * [`memoir`] — the MEMOIR path enumerator, mirroring
//!   `memoir-interp`'s trap conditions and value semantics exactly;
//! * [`lirsym`] — the lir path enumerator, mirroring `lir::LirMachine`'s
//!   linear memory, `rt_*` runtime routines and dense/host assoc
//!   dispatch exactly;
//! * [`equiv`] — per-function equivalence: path-pair discharge with
//!   **confirmation-gated refutation** (a divergence is only reported
//!   after the witness reproduces on the concrete interpreters).
//!
//! The prove-vs-probe policy lives in `memoir-lower::validate`: when
//! enumeration fits the [`Budget`], a function is discharged probe-free;
//! otherwise ([`SymError`]) the caller falls back to typed probes.
//! Symbolic execution is *never* allowed to produce a false alarm — an
//! unconfirmed candidate is `Inconclusive`, not a verdict.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod equiv;
pub mod lirsym;
pub mod memoir;
pub mod solver;
pub mod term;

use solver::Lit;
use term::TermId;

/// Enumeration limits. Enumeration that exceeds any limit aborts with
/// [`SymError::BudgetExceeded`] — callers fall back to probing; partial
/// path sets are never returned (they would make `Proved` unsound).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of completed paths.
    pub max_paths: usize,
    /// Maximum total instruction steps across all paths.
    pub max_ops: u64,
    /// Maximum interval width a symbolic index/length/address may have
    /// to be enumerated by forking (wider is `Unsupported`).
    pub fork_width: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_paths: 64,
            max_ops: 1_000_000,
            fork_width: 4,
        }
    }
}

/// Why enumeration aborted (the "fall back to probing" signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymError {
    /// The program uses a construct the term language / symbolic heap
    /// cannot model precisely (floats, externs, wide symbolic indices…).
    Unsupported(&'static str),
    /// Path count or op count exceeded the [`Budget`].
    BudgetExceeded,
}

impl std::fmt::Display for SymError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            SymError::BudgetExceeded => write!(f, "path/op budget exceeded"),
        }
    }
}

impl std::error::Error for SymError {}

/// How a path ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathEnd {
    /// Entry-function return; one term per scalar result.
    Ret(Vec<TermId>),
    /// The concrete interpreter would trap on this path (any trap kind).
    Trap,
}

/// One enumerated path: a conjunction of literals over the parameters,
/// and how the function ends under it. Feasibility of `cond` was checked
/// at every fork, but only up to the solver's power — `predict` re-checks
/// concretely when a path is applied to arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Path condition: every literal must hold ((term != 0) == truth).
    pub cond: Vec<Lit>,
    /// The outcome under `cond`.
    pub end: PathEnd,
}

pub use equiv::{prove_lowering, prove_memoir_equiv, FnVerdict};
pub use lirsym::enumerate_lir;
pub use memoir::{enumerate_memoir, param_domains, predict, seed_params};
pub use solver::{contradicts, find_model};
pub use term::{type_domain, TermPool};
