//! Bounded path enumeration over lir functions.
//!
//! The engine mirrors `lir::LirMachine` step for step: the same flat
//! word-addressed memory with a `NULL_GUARD` low-address hole, the same
//! bump allocator, the same `rt_*` runtime routines (sequence helpers in
//! linear memory, dense maps dispatched on the handle sign, host
//! hashtables at negative handles) — but memory *cells* hold symbolic
//! terms while *addresses*, lengths, capacities, keys, handles and rmw
//! opcodes must resolve to concrete values on each path (forking when an
//! interval is narrow enough, [`SymError::Unsupported`] otherwise).
//!
//! This works because `memoir-lower` emits all layout arithmetic over
//! values the repr/range analyses proved small: the path condition
//! accumulated from the lowered bounds checks pins indices tightly
//! enough for the solver's intervals to enumerate them.

use crate::solver::{self, Lit};
use crate::term::{TermId, TermPool};
use crate::{Budget, Path, PathEnd, SymError};
use lir::{Blk, Fun, Function, Module, Op, Val};
use memoir_ir::{BinOp, CmpOp, Type};
use std::collections::HashMap;

const NULL_GUARD: usize = 16; // must match lir::interp

/// One call frame.
#[derive(Clone, Debug)]
struct Frame {
    fun: Fun,
    block: Blk,
    at: usize,
    env: HashMap<Val, TermId>,
}

/// One in-flight execution (a path prefix). Memory and host assoc
/// tables are machine-level (shared across frames), like `LirMachine`.
#[derive(Clone, Debug)]
struct Exec {
    frames: Vec<Frame>,
    /// Linear memory: concrete addresses, symbolic cells.
    mem: Vec<TermId>,
    /// Host hashtables at negative handles, in insertion order
    /// (overwrites keep a key's position, removals drop it — the
    /// `map` + `order` pair of the concrete machine).
    assocs: Vec<Vec<(i64, TermId)>>,
    cond: Vec<Lit>,
    /// Concrete values pinned by forking, keyed by term.
    fixes: HashMap<TermId, i64>,
    /// Branch truths pinned by forking. Unlike MEMOIR booleans, a lir
    /// branch condition is an arbitrary word (`!= 0` is taken), so a
    /// "true" pin fixes no single value and lives here instead.
    truths: HashMap<TermId, bool>,
}

/// Why an instruction could not complete on this attempt.
enum Stop {
    /// The concrete machine would trap here (any `LirTrap` kind).
    Trap,
    /// Fork the execution, pinning `term` to each value in turn.
    Fork(TermId, Vec<i64>),
    /// Fork the execution on `term != 0` / `term == 0`.
    BoolFork(TermId),
    /// The program uses a construct the engine cannot model.
    Unsupported(&'static str),
}

type R<T> = Result<T, Stop>;

enum StepOut {
    Continue,
    Forked,
    End(PathEnd),
}

fn lower_binop(op: lir::BinOp) -> BinOp {
    match op {
        lir::BinOp::Add => BinOp::Add,
        lir::BinOp::Sub => BinOp::Sub,
        lir::BinOp::Mul => BinOp::Mul,
        lir::BinOp::Div => BinOp::Div,
        lir::BinOp::Rem => BinOp::Rem,
        lir::BinOp::And => BinOp::And,
        lir::BinOp::Or => BinOp::Or,
        lir::BinOp::Xor => BinOp::Xor,
        lir::BinOp::Shl => BinOp::Shl,
        lir::BinOp::Shr => BinOp::Shr,
    }
}

fn lower_cmpop(op: lir::CmpOp) -> CmpOp {
    match op {
        lir::CmpOp::Eq => CmpOp::Eq,
        lir::CmpOp::Ne => CmpOp::Ne,
        lir::CmpOp::Lt => CmpOp::Lt,
        lir::CmpOp::Le => CmpOp::Le,
        lir::CmpOp::Gt => CmpOp::Gt,
        lir::CmpOp::Ge => CmpOp::Ge,
    }
}

/// The integer rmw-opcode encoding of `memoir-lower::rmw_opcode`.
fn rmw_binop(op: i64) -> Option<BinOp> {
    Some(match op {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        10 => BinOp::Min,
        11 => BinOp::Max,
        _ => return None, // bad rmw opcode: Malformed
    })
}

/// Enumerates all feasible paths of `fun`, with its parameters symbolic.
/// `pool.param_tys` should carry the *source-level* parameter types (the
/// MEMOIR signature the function was lowered from) so witness search and
/// interval seeding stay inside the domain both IRs agree on; missing
/// entries are padded with `I64`.
pub fn enumerate_lir(
    module: &Module,
    fun: Fun,
    pool: &mut TermPool,
    budget: &Budget,
) -> Result<Vec<Path>, SymError> {
    let f: &Function = &module.funcs[fun.0 as usize];
    while pool.param_tys.len() < f.num_params as usize {
        pool.param_tys.push(Type::I64);
    }
    let mut env = HashMap::new();
    for i in 0..f.num_params {
        let t = pool.param(i);
        env.insert(Val(i), t);
    }
    let zero = pool.konst(0);
    let init = Exec {
        frames: vec![Frame {
            fun,
            block: f.entry,
            at: 0,
            env,
        }],
        mem: vec![zero; NULL_GUARD],
        assocs: Vec::new(),
        cond: Vec::new(),
        fixes: HashMap::new(),
        truths: HashMap::new(),
    };
    let mut eng = Engine {
        module,
        pool,
        budget,
        ops: 0,
        worklist: vec![init],
        paths: Vec::new(),
    };
    eng.run()?;
    Ok(eng.paths)
}

struct Engine<'m, 'p, 'b> {
    module: &'m Module,
    pool: &'p mut TermPool,
    budget: &'b Budget,
    ops: u64,
    worklist: Vec<Exec>,
    paths: Vec<Path>,
}

impl Engine<'_, '_, '_> {
    fn run(&mut self) -> Result<(), SymError> {
        while let Some(mut ex) = self.worklist.pop() {
            loop {
                self.ops += 1;
                if self.ops > self.budget.max_ops {
                    return Err(SymError::BudgetExceeded);
                }
                match self.step(&mut ex)? {
                    StepOut::Continue => {}
                    StepOut::Forked => break,
                    StepOut::End(end) => {
                        if self.paths.len() >= self.budget.max_paths {
                            return Err(SymError::BudgetExceeded);
                        }
                        self.paths.push(Path {
                            cond: ex.cond.clone(),
                            end,
                        });
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn fork_values(&mut self, ex: &Exec, t: TermId, vals: &[i64]) {
        for &v in vals.iter().rev() {
            let c = self.pool.konst(v);
            let lit = (self.pool.cmp(CmpOp::Eq, false, t, c), true);
            let mut child = ex.clone();
            child.cond.push(lit);
            child.fixes.insert(t, v);
            if !solver::contradicts(self.pool, &child.cond) {
                self.worklist.push(child);
            }
        }
    }

    fn fork_bool(&mut self, ex: &Exec, t: TermId) {
        for truth in [false, true] {
            let mut child = ex.clone();
            child.cond.push((t, truth));
            child.truths.insert(t, truth);
            if !truth {
                // `t == 0` is the one truth that pins a value.
                child.fixes.insert(t, 0);
            }
            if !solver::contradicts(self.pool, &child.cond) {
                self.worklist.push(child);
            }
        }
    }

    /// A term's concrete value on this path, forking if it is narrow.
    fn resolve(&self, ex: &Exec, t: TermId) -> R<i64> {
        if let Some(v) = self.pool.as_const(t) {
            return Ok(v);
        }
        if let Some(&v) = ex.fixes.get(&t) {
            return Ok(v);
        }
        let iv = solver::interval_under(self.pool, &ex.cond, t);
        let width = iv.hi.saturating_sub(iv.lo).saturating_add(1);
        if width >= 1 && width <= self.budget.fork_width as i128 {
            Err(Stop::Fork(t, (iv.lo..=iv.hi).map(|v| v as i64).collect()))
        } else {
            Err(Stop::Unsupported("wide symbolic address/length"))
        }
    }

    /// Whether `t != 0` on this path (the lir branch-taken condition).
    fn resolve_cond(&self, ex: &Exec, t: TermId) -> R<bool> {
        if let Some(v) = self.pool.as_const(t) {
            return Ok(v != 0);
        }
        if let Some(&b) = ex.truths.get(&t) {
            return Ok(b);
        }
        if let Some(&v) = ex.fixes.get(&t) {
            return Ok(v != 0);
        }
        Err(Stop::BoolFork(t))
    }

    fn alloc_words(&mut self, ex: &mut Exec, n: usize) -> i64 {
        let base = ex.mem.len() as i64;
        let zero = self.pool.konst(0);
        ex.mem.resize(ex.mem.len() + n.max(1), zero);
        base
    }

    fn mem_load(&self, ex: &Exec, addr: i64) -> R<TermId> {
        if addr < NULL_GUARD as i64 || addr as usize >= ex.mem.len() {
            return Err(Stop::Trap); // BadAddress
        }
        Ok(ex.mem[addr as usize])
    }

    fn mem_load_i64(&self, ex: &Exec, addr: i64) -> R<i64> {
        let t = self.mem_load(ex, addr)?;
        self.resolve(ex, t)
    }

    fn mem_store(&self, ex: &mut Exec, addr: i64, v: TermId) -> R<()> {
        if addr < NULL_GUARD as i64 || addr as usize >= ex.mem.len() {
            return Err(Stop::Trap); // BadAddress
        }
        ex.mem[addr as usize] = v;
        Ok(())
    }

    /// Sequence header layout `[data, len, cap]`, all resolved concrete.
    fn seq_parts(&self, ex: &Exec, hdr: i64) -> R<(i64, i64, i64)> {
        Ok((
            self.mem_load_i64(ex, hdr)?,
            self.mem_load_i64(ex, hdr + 1)?,
            self.mem_load_i64(ex, hdr + 2)?,
        ))
    }

    /// `rt_seq_grow`: ensure capacity ≥ `want`.
    fn seq_grow(&mut self, ex: &mut Exec, hdr: i64, want: i64) -> R<()> {
        let (data, len, cap) = self.seq_parts(ex, hdr)?;
        if want > cap {
            let new_cap = (cap * 2).max(want).max(4);
            let new_data = self.alloc_words(ex, new_cap as usize);
            for i in 0..len {
                let v = self.mem_load(ex, data + i)?;
                self.mem_store(ex, new_data + i, v)?;
            }
            let nd = self.pool.konst(new_data);
            self.mem_store(ex, hdr, nd)?;
            let nc = self.pool.konst(new_cap);
            self.mem_store(ex, hdr + 2, nc)?;
        }
        Ok(())
    }

    fn seq_new(&mut self, ex: &mut Exec, n: i64) -> R<i64> {
        let n = n.max(0);
        let data = self.alloc_words(ex, n as usize);
        let hdr = self.alloc_words(ex, 3);
        let (d, l) = (self.pool.konst(data), self.pool.konst(n));
        self.mem_store(ex, hdr, d)?;
        self.mem_store(ex, hdr + 1, l)?;
        self.mem_store(ex, hdr + 2, l)?;
        Ok(hdr)
    }

    /// Symbolic `apply_rmw`: forks on a possibly-zero divisor.
    fn apply_rmw_sym(&mut self, ex: &Exec, op: i64, x: TermId, y: TermId) -> R<TermId> {
        let b = rmw_binop(op).ok_or(Stop::Trap)?;
        if matches!(b, BinOp::Div | BinOp::Rem) {
            let zero = self.pool.konst(0);
            let eqz = self.pool.cmp(CmpOp::Eq, false, y, zero);
            if self.resolve_cond(ex, eqz)? {
                return Err(Stop::Trap); // DivByZero
            }
        }
        self.pool.bin(b, x, y).map_err(|_| Stop::Trap)
    }

    /// Dense-map ops at a non-negative handle (layout
    /// `[cap, size, present[cap], vals[cap]]`). Present flags and
    /// headers must resolve concrete; stored values stay symbolic.
    /// All fork-capable resolution happens before the first store.
    fn call_dense(&mut self, ex: &mut Exec, name: &str, args: &[TermId]) -> R<Option<TermId>> {
        let hdr = self.resolve(ex, args[0])?;
        let cap = self.mem_load_i64(ex, hdr)?;
        let in_bounds = |k: i64| (0..cap).contains(&k);
        match name {
            "rt_assoc_read" => {
                let k = self.resolve(ex, args[1])?;
                if !in_bounds(k) || self.mem_load_i64(ex, hdr + 2 + k)? == 0 {
                    return Err(Stop::Trap); // MissingKey
                }
                Ok(Some(self.mem_load(ex, hdr + 2 + cap + k)?))
            }
            "rt_assoc_write" => {
                let k = self.resolve(ex, args[1])?;
                let v = args[2];
                if !in_bounds(k) {
                    return Err(Stop::Trap); // BadAddress(k)
                }
                if self.mem_load_i64(ex, hdr + 2 + k)? == 0 {
                    let sz = self.mem_load_i64(ex, hdr + 1)?;
                    let one = self.pool.konst(1);
                    self.mem_store(ex, hdr + 2 + k, one)?;
                    let nsz = self.pool.konst(sz + 1);
                    self.mem_store(ex, hdr + 1, nsz)?;
                }
                self.mem_store(ex, hdr + 2 + cap + k, v)?;
                Ok(None)
            }
            "rt_assoc_rmw" => {
                let k = self.resolve(ex, args[1])?;
                if !in_bounds(k) || self.mem_load_i64(ex, hdr + 2 + k)? == 0 {
                    return Err(Stop::Trap); // MissingKey
                }
                let op = self.resolve(ex, args[2])?;
                let x = self.mem_load(ex, hdr + 2 + cap + k)?;
                let r = self.apply_rmw_sym(ex, op, x, args[3])?;
                self.mem_store(ex, hdr + 2 + cap + k, r)?;
                Ok(None)
            }
            "rt_assoc_has" => {
                let k = self.resolve(ex, args[1])?;
                let present = in_bounds(k) && self.mem_load_i64(ex, hdr + 2 + k)? != 0;
                Ok(Some(self.pool.konst(present as i64)))
            }
            "rt_assoc_remove" => {
                let k = self.resolve(ex, args[1])?;
                if in_bounds(k) && self.mem_load_i64(ex, hdr + 2 + k)? != 0 {
                    let sz = self.mem_load_i64(ex, hdr + 1)?;
                    let zero = self.pool.konst(0);
                    self.mem_store(ex, hdr + 2 + k, zero)?;
                    let nsz = self.pool.konst(sz - 1);
                    self.mem_store(ex, hdr + 1, nsz)?;
                }
                Ok(None)
            }
            "rt_assoc_size" => Ok(Some(self.mem_load(ex, hdr + 1)?)),
            "rt_assoc_copy" => {
                let out = self.alloc_words(ex, (2 + 2 * cap) as usize);
                for i in 0..2 + 2 * cap {
                    let v = self.mem_load(ex, hdr + i)?;
                    self.mem_store(ex, out + i, v)?;
                }
                Ok(Some(self.pool.konst(out)))
            }
            "rt_assoc_keys" => {
                // Present keys ascending, matching the concrete machine.
                let mut keys = Vec::new();
                for k in 0..cap {
                    if self.mem_load_i64(ex, hdr + 2 + k)? != 0 {
                        keys.push(k);
                    }
                }
                let out = self.seq_new(ex, keys.len() as i64)?;
                let odata = self.mem_load_i64(ex, out)?;
                for (i, k) in keys.iter().enumerate() {
                    let kt = self.pool.konst(*k);
                    self.mem_store(ex, odata + i as i64, kt)?;
                }
                Ok(Some(self.pool.konst(out)))
            }
            _ => Err(Stop::Trap), // UnknownRt
        }
    }

    /// Host hashtable ops at a negative handle.
    fn call_host_assoc(
        &mut self,
        ex: &mut Exec,
        name: &str,
        h: i64,
        args: &[TermId],
    ) -> R<Option<TermId>> {
        let idx = (-h - 1) as usize;
        if idx >= ex.assocs.len() {
            return Err(Stop::Trap); // bad handle
        }
        match name {
            "rt_assoc_copy" => {
                let cloned = ex.assocs[idx].clone();
                ex.assocs.push(cloned);
                Ok(Some(self.pool.konst(-(ex.assocs.len() as i64))))
            }
            "rt_assoc_write" => {
                let k = self.resolve(ex, args[1])?;
                let v = args[2];
                let entries = &mut ex.assocs[idx];
                if let Some(e) = entries.iter_mut().find(|(ek, _)| *ek == k) {
                    e.1 = v;
                } else {
                    entries.push((k, v));
                }
                Ok(None)
            }
            "rt_assoc_read" => {
                let k = self.resolve(ex, args[1])?;
                ex.assocs[idx]
                    .iter()
                    .find(|(ek, _)| *ek == k)
                    .map(|&(_, v)| Some(v))
                    .ok_or(Stop::Trap) // MissingKey
            }
            "rt_assoc_has" => {
                let k = self.resolve(ex, args[1])?;
                let present = ex.assocs[idx].iter().any(|(ek, _)| *ek == k);
                Ok(Some(self.pool.konst(present as i64)))
            }
            "rt_assoc_remove" => {
                let k = self.resolve(ex, args[1])?;
                ex.assocs[idx].retain(|(ek, _)| *ek != k);
                Ok(None)
            }
            "rt_assoc_rmw" => {
                let k = self.resolve(ex, args[1])?;
                let op = self.resolve(ex, args[2])?;
                let x = ex.assocs[idx]
                    .iter()
                    .find(|(ek, _)| *ek == k)
                    .map(|&(_, v)| v)
                    .ok_or(Stop::Trap)?; // MissingKey
                let r = self.apply_rmw_sym(ex, op, x, args[3])?;
                let e = ex.assocs[idx]
                    .iter_mut()
                    .find(|(ek, _)| *ek == k)
                    .expect("key present");
                e.1 = r;
                Ok(None)
            }
            "rt_assoc_size" => Ok(Some(self.pool.konst(ex.assocs[idx].len() as i64))),
            "rt_assoc_keys" => {
                let keys: Vec<i64> = ex.assocs[idx].iter().map(|&(k, _)| k).collect();
                let out = self.seq_new(ex, keys.len() as i64)?;
                let odata = self.mem_load_i64(ex, out)?;
                for (i, k) in keys.iter().enumerate() {
                    let kt = self.pool.konst(*k);
                    self.mem_store(ex, odata + i as i64, kt)?;
                }
                Ok(Some(self.pool.konst(out)))
            }
            _ => Err(Stop::Trap), // UnknownRt
        }
    }

    fn call_rt(&mut self, ex: &mut Exec, name: &str, args: &[TermId]) -> R<Option<TermId>> {
        match name {
            // Dense dispatch on the sign of a concrete handle.
            n if n.starts_with("rt_assoc_") && !args.is_empty() => {
                let h = self.resolve(ex, args[0])?;
                if h >= 0 {
                    self.call_dense(ex, n, args)
                } else {
                    self.call_host_assoc(ex, n, h, args)
                }
            }
            "rt_assoc_new" => {
                ex.assocs.push(Vec::new());
                Ok(Some(self.pool.konst(-(ex.assocs.len() as i64))))
            }
            "rt_dense_new" => {
                let cap = self.resolve(ex, args[0])?.max(0);
                let hdr = self.alloc_words(ex, (2 + 2 * cap) as usize);
                let (c, z) = (self.pool.konst(cap), self.pool.konst(0));
                self.mem_store(ex, hdr, c)?;
                self.mem_store(ex, hdr + 1, z)?;
                Ok(Some(self.pool.konst(hdr)))
            }
            "rt_seq_new" => {
                let n = self.resolve(ex, args[0])?;
                let hdr = self.seq_new(ex, n)?;
                Ok(Some(self.pool.konst(hdr)))
            }
            "rt_seq_grow" => {
                let hdr = self.resolve(ex, args[0])?;
                let want = self.resolve(ex, args[1])?;
                self.seq_grow(ex, hdr, want)?;
                Ok(None)
            }
            "rt_seq_insert" => {
                let hdr = self.resolve(ex, args[0])?;
                let at = self.resolve(ex, args[1])?;
                let v = args[2];
                let (_, len, _) = self.seq_parts(ex, hdr)?;
                self.seq_grow(ex, hdr, len + 1)?;
                let data = self.mem_load_i64(ex, hdr)?;
                let mut i = len;
                while i > at {
                    let x = self.mem_load(ex, data + i - 1)?;
                    self.mem_store(ex, data + i, x)?;
                    i -= 1;
                }
                self.mem_store(ex, data + at, v)?;
                let nl = self.pool.konst(len + 1);
                self.mem_store(ex, hdr + 1, nl)?;
                Ok(None)
            }
            "rt_seq_remove" => {
                let hdr = self.resolve(ex, args[0])?;
                let at = self.resolve(ex, args[1])?;
                let (data, len, _) = self.seq_parts(ex, hdr)?;
                for i in at..len - 1 {
                    let x = self.mem_load(ex, data + i + 1)?;
                    self.mem_store(ex, data + i, x)?;
                }
                let nl = self.pool.konst(len - 1);
                self.mem_store(ex, hdr + 1, nl)?;
                Ok(None)
            }
            "rt_seq_remove_range" => {
                let hdr = self.resolve(ex, args[0])?;
                let from = self.resolve(ex, args[1])?;
                let to = self.resolve(ex, args[2])?;
                let (data, len, _) = self.seq_parts(ex, hdr)?;
                let w = to - from;
                for i in from..len - w {
                    let x = self.mem_load(ex, data + i + w)?;
                    self.mem_store(ex, data + i, x)?;
                }
                let nl = self.pool.konst(len - w);
                self.mem_store(ex, hdr + 1, nl)?;
                Ok(None)
            }
            "rt_seq_splice" => {
                let hdr = self.resolve(ex, args[0])?;
                let at = self.resolve(ex, args[1])?;
                let src = self.resolve(ex, args[2])?;
                let (_, slen, _) = self.seq_parts(ex, src)?;
                let (_, len, _) = self.seq_parts(ex, hdr)?;
                self.seq_grow(ex, hdr, len + slen)?;
                let data = self.mem_load_i64(ex, hdr)?;
                let sdata = self.mem_load_i64(ex, src)?;
                let mut i = len;
                while i > at {
                    let x = self.mem_load(ex, data + i - 1)?;
                    self.mem_store(ex, data + i - 1 + slen, x)?;
                    i -= 1;
                }
                for i in 0..slen {
                    let x = self.mem_load(ex, sdata + i)?;
                    self.mem_store(ex, data + at + i, x)?;
                }
                let nl = self.pool.konst(len + slen);
                self.mem_store(ex, hdr + 1, nl)?;
                Ok(None)
            }
            "rt_seq_swap_range" => {
                let hdr = self.resolve(ex, args[0])?;
                let from = self.resolve(ex, args[1])?;
                let to = self.resolve(ex, args[2])?;
                let at = self.resolve(ex, args[3])?;
                let data = self.mem_load_i64(ex, hdr)?;
                for o in 0..(to - from) {
                    let a = self.mem_load(ex, data + from + o)?;
                    let b = self.mem_load(ex, data + at + o)?;
                    self.mem_store(ex, data + from + o, b)?;
                    self.mem_store(ex, data + at + o, a)?;
                }
                Ok(None)
            }
            "rt_seq_copy" => {
                let hdr = self.resolve(ex, args[0])?;
                let (data, len, _) = self.seq_parts(ex, hdr)?;
                let out = self.seq_new(ex, len)?;
                let odata = self.mem_load_i64(ex, out)?;
                for i in 0..len {
                    let v = self.mem_load(ex, data + i)?;
                    self.mem_store(ex, odata + i, v)?;
                }
                Ok(Some(self.pool.konst(out)))
            }
            "rt_seq_copy_range" => {
                let hdr = self.resolve(ex, args[0])?;
                let from = self.resolve(ex, args[1])?;
                let to = self.resolve(ex, args[2])?;
                let data = self.mem_load_i64(ex, hdr)?;
                let out = self.seq_new(ex, to - from)?;
                let odata = self.mem_load_i64(ex, out)?;
                for i in 0..(to - from) {
                    let v = self.mem_load(ex, data + from + i)?;
                    self.mem_store(ex, odata + i, v)?;
                }
                Ok(Some(self.pool.konst(out)))
            }
            "rt_seq_swap2" => {
                let ha = self.resolve(ex, args[0])?;
                let from = self.resolve(ex, args[1])?;
                let to = self.resolve(ex, args[2])?;
                let hb = self.resolve(ex, args[3])?;
                let at = self.resolve(ex, args[4])?;
                let da = self.mem_load_i64(ex, ha)?;
                let db = self.mem_load_i64(ex, hb)?;
                for o in 0..(to - from) {
                    let x = self.mem_load(ex, da + from + o)?;
                    let y = self.mem_load(ex, db + at + o)?;
                    self.mem_store(ex, da + from + o, y)?;
                    self.mem_store(ex, db + at + o, x)?;
                }
                Ok(None)
            }
            "rt_obj_new" => {
                let words = self.resolve(ex, args[0])?.max(1);
                let base = self.alloc_words(ex, words as usize);
                Ok(Some(self.pool.konst(base)))
            }
            "rt_obj_delete" => Ok(None),
            _ => Err(Stop::Trap), // UnknownRt
        }
    }

    /// Processes the φ-head of `target` as a parallel copy from `pred`,
    /// then positions the frame past the φs.
    fn enter_block(&self, f: &Function, frame: &mut Frame, pred: Blk, target: Blk) -> R<()> {
        let insts = &f.blocks[target.0 as usize].insts;
        let mut updates = Vec::new();
        let mut at = 0;
        for &ins in insts.iter() {
            let inst = &f.insts[ins.0 as usize];
            if let Op::Phi(incs) = &inst.op {
                let (_, v) = incs.iter().find(|(b, _)| *b == pred).ok_or(Stop::Trap)?; // phi missing incoming
                let x = *frame.env.get(v).ok_or(Stop::Trap)?;
                updates.push((inst.results[0], x));
                at += 1;
            } else {
                break;
            }
        }
        for (r, v) in updates {
            frame.env.insert(r, v);
        }
        frame.block = target;
        frame.at = at;
        Ok(())
    }

    fn step(&mut self, ex: &mut Exec) -> Result<StepOut, SymError> {
        match self.step_inner(ex) {
            Ok(out) => Ok(out),
            Err(Stop::Trap) => Ok(StepOut::End(PathEnd::Trap)),
            Err(Stop::Fork(t, vals)) => {
                self.fork_values(ex, t, &vals);
                Ok(StepOut::Forked)
            }
            Err(Stop::BoolFork(t)) => {
                self.fork_bool(ex, t);
                Ok(StepOut::Forked)
            }
            Err(Stop::Unsupported(what)) => Err(SymError::Unsupported(what)),
        }
    }

    /// Executes one instruction of the top frame. All fork-capable
    /// resolution happens before memory/assoc mutation or result binding
    /// (forked children re-execute the instruction from a clone of `ex`).
    fn step_inner(&mut self, ex: &mut Exec) -> R<StepOut> {
        let m = self.module;
        let frame = ex.frames.last().ok_or(Stop::Trap)?;
        let f: &Function = m.funcs.get(frame.fun.0 as usize).ok_or(Stop::Trap)?;
        let ins = *f.blocks[frame.block.0 as usize]
            .insts
            .get(frame.at)
            .ok_or(Stop::Trap)?; // fell off block: malformed
        let inst = f.insts[ins.0 as usize].clone();
        let results = inst.results.clone();
        let getv = |env: &HashMap<Val, TermId>, v: Val| -> R<TermId> {
            env.get(&v).copied().ok_or(Stop::Trap) // unbound value
        };
        macro_rules! next {
            ($vals:expr) => {{
                let vals: Vec<TermId> = $vals;
                let fr = ex.frames.last_mut().unwrap();
                for (r, v) in results.iter().zip(vals) {
                    fr.env.insert(*r, v);
                }
                fr.at += 1;
                return Ok(StepOut::Continue);
            }};
        }
        match inst.op {
            Op::Const(c) => {
                let t = self.pool.konst(c);
                next!(vec![t]);
            }
            Op::Bin(op, a, b) => {
                let x = getv(&frame.env, a)?;
                let y = getv(&frame.env, b)?;
                let op = lower_binop(op);
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    let zero = self.pool.konst(0);
                    let eqz = self.pool.cmp(CmpOp::Eq, false, y, zero);
                    if self.resolve_cond(ex, eqz)? {
                        return Err(Stop::Trap); // DivByZero
                    }
                }
                let t = self.pool.bin(op, x, y).map_err(|_| Stop::Trap)?;
                next!(vec![t]);
            }
            Op::Cmp(op, a, b) => {
                let x = getv(&frame.env, a)?;
                let y = getv(&frame.env, b)?;
                // lir comparisons are always signed.
                let t = self.pool.cmp(lower_cmpop(op), false, x, y);
                next!(vec![t]);
            }
            Op::Phi(_) => Err(Stop::Trap), // phi outside block head
            Op::Alloca(n) => {
                let base = self.alloc_words(ex, n as usize);
                let t = self.pool.konst(base);
                next!(vec![t]);
            }
            Op::Malloc(n) => {
                let nt = getv(&frame.env, n)?;
                let words = self.resolve(ex, nt)?.max(0) as usize;
                let base = self.alloc_words(ex, words);
                let t = self.pool.konst(base);
                next!(vec![t]);
            }
            Op::Free(_) => next!(vec![]),
            Op::Load(a) => {
                let at = getv(&frame.env, a)?;
                let addr = self.resolve(ex, at)?;
                let t = self.mem_load(ex, addr)?;
                next!(vec![t]);
            }
            Op::Store { addr, value } => {
                let at = getv(&frame.env, addr)?;
                let v = getv(&frame.env, value)?;
                let a = self.resolve(ex, at)?;
                self.mem_store(ex, a, v)?;
                next!(vec![]);
            }
            Op::Gep { base, offset } => {
                let b = getv(&frame.env, base)?;
                let o = getv(&frame.env, offset)?;
                // `Add` folds with the same wrapping as the machine.
                let t = self.pool.bin(BinOp::Add, b, o).map_err(|_| Stop::Trap)?;
                next!(vec![t]);
            }
            Op::Call { func, ref args } => {
                let argv: Vec<TermId> = args
                    .iter()
                    .map(|&a| getv(&frame.env, a))
                    .collect::<R<_>>()?;
                let callee: &Function = m.funcs.get(func.0 as usize).ok_or(Stop::Trap)?;
                let mut env = HashMap::new();
                for (i, &t) in argv.iter().enumerate() {
                    env.insert(Val(i as u32), t);
                }
                ex.frames.push(Frame {
                    fun: func,
                    block: callee.entry,
                    at: 0,
                    env,
                });
                Ok(StepOut::Continue)
            }
            Op::CallRt {
                ref name, ref args, ..
            } => {
                let argv: Vec<TermId> = args
                    .iter()
                    .map(|&a| getv(&frame.env, a))
                    .collect::<R<_>>()?;
                let name = name.clone();
                let out = self.call_rt(ex, &name, &argv)?;
                let fr = ex.frames.last_mut().unwrap();
                if let (Some(&r), Some(v)) = (results.first(), out) {
                    fr.env.insert(r, v);
                }
                fr.at += 1;
                Ok(StepOut::Continue)
            }
            Op::Jmp(b) => {
                let pred = frame.block;
                let mut fr = ex.frames.last().unwrap().clone();
                self.enter_block(f, &mut fr, pred, b)?;
                *ex.frames.last_mut().unwrap() = fr;
                Ok(StepOut::Continue)
            }
            Op::Br {
                cond,
                then_b,
                else_b,
            } => {
                let c = getv(&frame.env, cond)?;
                let taken = if self.resolve_cond(ex, c)? {
                    then_b
                } else {
                    else_b
                };
                let pred = frame.block;
                let mut fr = ex.frames.last().unwrap().clone();
                self.enter_block(f, &mut fr, pred, taken)?;
                *ex.frames.last_mut().unwrap() = fr;
                Ok(StepOut::Continue)
            }
            Op::Ret(ref vs) => {
                let terms: Vec<TermId> =
                    vs.iter().map(|&v| getv(&frame.env, v)).collect::<R<_>>()?;
                if ex.frames.len() == 1 {
                    return Ok(StepOut::End(PathEnd::Ret(terms)));
                }
                ex.frames.pop();
                let fr = ex.frames.last_mut().unwrap();
                let cf = &m.funcs[fr.fun.0 as usize];
                let call_ins = cf.blocks[fr.block.0 as usize].insts[fr.at];
                let call_results = cf.insts[call_ins.0 as usize].results.clone();
                for (r, v) in call_results.iter().zip(terms) {
                    fr.env.insert(*r, v);
                }
                fr.at += 1;
                Ok(StepOut::Continue)
            }
        }
    }
}
